//! Sparse spanners from a decomposition — the [DMP+05] application cited in
//! the paper's introduction. Builds the cluster spanner (per-cluster BFS
//! trees + one edge per adjacent cluster pair) and measures its size and
//! stretch against the guarantee.
//!
//! ```text
//! cargo run --release --example spanner_demo
//! ```

use netdecomp::apps::spanner;
use netdecomp::core::{basic, params::DecompositionParams};
use netdecomp::graph::generators;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 800;
    let mut rng = StdRng::seed_from_u64(6);
    // A dense-ish graph so sparsification is visible.
    let graph = generators::gnp(n, 20.0 / n as f64, &mut rng)?;
    println!(
        "graph: n = {}, m = {}",
        graph.vertex_count(),
        graph.edge_count()
    );

    for k in [2usize, 3, 5] {
        let params = DecompositionParams::new(k, 4.0)?;
        let outcome = basic::decompose(&graph, &params, 1)?;
        let result = spanner::build(&graph, outcome.decomposition())?;
        let stretch =
            spanner::measured_stretch(&graph, &result.spanner).expect("spanner spans every edge");
        println!(
            "k = {k}: spanner has {} edges ({:.1}% of G) = {} tree + {} crossing; \
             stretch measured {} <= bound {}",
            result.spanner.edge_count(),
            100.0 * result.spanner.edge_count() as f64 / graph.edge_count() as f64,
            result.tree_edges,
            result.crossing_edges,
            stretch,
            result.stretch_bound,
        );
    }
    println!(
        "\nlarger k => coarser clusters => fewer crossing edges but weaker stretch: \
         the same (D, chi) tradeoff surfacing in a derived structure."
    );
    Ok(())
}

//! The application pipeline of the paper's introduction: decompose once,
//! then solve MIS, (Δ+1)-coloring and maximal matching by sweeping the
//! color classes in O(D·χ) rounds — compared against Luby's direct MIS.
//!
//! ```text
//! cargo run --example mis_pipeline
//! ```

use netdecomp::apps::{coloring, luby, matching, mis, verify};
use netdecomp::core::{basic, params::DecompositionParams};
use netdecomp::graph::generators;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 1000;
    let mut rng = StdRng::seed_from_u64(3);
    let graph = generators::gnp(n, 8.0 / n as f64, &mut rng)?;
    println!(
        "graph: n = {}, m = {}, Delta = {}",
        graph.vertex_count(),
        graph.edge_count(),
        graph.max_degree()
    );

    // One decomposition drives all three applications.
    let params = DecompositionParams::new(3, 4.0)?;
    let outcome = basic::decompose(&graph, &params, 11)?;
    let d = outcome.decomposition();
    println!(
        "decomposition: chi = {} colors, diameter bound {} (k = {})\n",
        d.block_count(),
        params.diameter_bound(),
        params.k()
    );

    let m = mis::solve(&graph, d)?;
    assert!(verify::is_maximal_independent_set(&graph, &m.in_mis));
    println!(
        "MIS:      {:>5} members, {:>5} sweep rounds (O(D*chi) = {})",
        m.in_mis.iter().filter(|&&b| b).count(),
        m.cost.rounds,
        (2 * (params.k() - 1) + 1) * d.block_count(),
    );

    let c = coloring::solve(&graph, d)?;
    assert!(verify::is_proper_coloring(
        &graph,
        &c.colors,
        graph.max_degree() + 1
    ));
    let used = c.colors.iter().copied().max().unwrap_or(0) + 1;
    println!(
        "coloring: {:>5} colors (palette {}), {:>5} sweep rounds",
        used,
        graph.max_degree() + 1,
        c.cost.rounds,
    );

    let mm = matching::solve(&graph, d)?;
    assert!(verify::is_maximal_matching(&graph, &mm.mate));
    println!(
        "matching: {:>5} edges, {:>5} sweep rounds",
        mm.mate.iter().filter(|m| m.is_some()).count() / 2,
        mm.cost.rounds,
    );

    let l = luby::solve(&graph, 11);
    assert!(verify::is_maximal_independent_set(&graph, &l.in_mis));
    println!(
        "\nLuby MIS (direct):   {:>5} members in {:>3} rounds",
        l.in_mis.iter().filter(|&&b| b).count(),
        l.rounds,
    );
    println!(
        "note: Luby wins on rounds for a single MIS; the decomposition is computed once \
         and amortizes across all three problems (and any further sweeps)."
    );
    Ok(())
}

//! Quickstart: compute a strong (O(log n), O(log n)) network decomposition
//! of a random graph and verify every guarantee of Theorem 1.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use netdecomp::core::{basic, params::DecompositionParams, verify};
use netdecomp::graph::generators;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A sparse Erdos-Renyi graph on 2000 vertices.
    let n = 2000;
    let mut rng = StdRng::seed_from_u64(42);
    let graph = generators::gnp(n, 6.0 / n as f64, &mut rng)?;
    println!(
        "graph: n = {}, m = {}, max degree = {}",
        graph.vertex_count(),
        graph.edge_count(),
        graph.max_degree()
    );

    // Headline parameters: k = ceil(ln n), c = 4.
    let params = DecompositionParams::for_graph_size(n);
    println!(
        "parameters: k = {}, c = {} => diameter bound {}, color bound {}, phase budget {}",
        params.k(),
        params.c(),
        params.diameter_bound(),
        params.color_bound(n),
        params.phase_budget(n),
    );

    // Run the Elkin-Neiman algorithm (centralized simulation; identical
    // output to the message-passing execution, see the congest_trace
    // example).
    let outcome = basic::decompose(&graph, &params, 7)?;
    println!(
        "run: {} phases used (budget {}), truncation events: {}",
        outcome.phases_used(),
        outcome.phase_budget(),
        outcome.events().truncation_events,
    );

    // Verify everything the theorem promises.
    let report = verify::verify(&graph, outcome.decomposition())?;
    println!(
        "decomposition: {} clusters in {} colors; max strong diameter {:?}; largest cluster {}",
        report.cluster_count,
        report.color_count,
        report.max_strong_diameter,
        report.max_cluster_size,
    );
    assert!(report.complete, "every vertex must be clustered");
    assert!(report.supergraph_properly_colored, "blocks must color G(P)");
    if outcome.events().clean() {
        assert!(
            report.is_valid_strong(params.diameter_bound()),
            "strong diameter bound must hold when no truncation occurred"
        );
        println!(
            "valid strong ({}, {}) network decomposition ✓",
            params.diameter_bound(),
            report.color_count
        );
    }
    Ok(())
}

//! The paper's headline contrast: Elkin-Neiman clusters are *connected*
//! with bounded strong diameter, while Linial-Saks only bounds the weak
//! diameter — its clusters can be disconnected in their induced subgraphs.
//!
//! This example hunts for a seed where Linial-Saks produces a disconnected
//! cluster and prints both decompositions' reports side by side.
//!
//! ```text
//! cargo run --example strong_vs_weak
//! ```

use netdecomp::baselines::linial_saks::{self, LinialSaksParams};
use netdecomp::core::{basic, params::DecompositionParams, verify};
use netdecomp::graph::generators;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let graph = generators::grid2d(12, 12);
    let n = graph.vertex_count();
    let k = 6usize;
    let en_params = DecompositionParams::new(k, 4.0)?;
    let ls_params = LinialSaksParams::new(k, 2.0)?;

    println!("graph: 12x12 grid (n = {n}), k = {k}\n");
    println!(
        "{:<6} {:>5} {:>9} {:>9} {:>6} {:>10}",
        "algo", "seed", "strong D", "weak D", "chi", "connected"
    );

    let mut shown_gap = false;
    for seed in 0..200u64 {
        let ls = linial_saks::decompose(&graph, &ls_params, seed)?;
        let ls_report = verify::verify(&graph, &ls.decomposition)?;
        if ls_report.clusters_connected {
            continue; // keep hunting for the interesting seed
        }
        let en = basic::decompose(&graph, &en_params, seed)?;
        let en_report = verify::verify(&graph, en.decomposition())?;
        let fmt = |d: Option<usize>| d.map_or("inf".to_string(), |x| x.to_string());
        println!(
            "{:<6} {:>5} {:>9} {:>9} {:>6} {:>10}",
            "EN16",
            seed,
            fmt(en_report.max_strong_diameter),
            fmt(en_report.max_weak_diameter),
            en_report.color_count,
            en_report.clusters_connected,
        );
        println!(
            "{:<6} {:>5} {:>9} {:>9} {:>6} {:>10}",
            "LS93",
            seed,
            fmt(ls_report.max_strong_diameter),
            fmt(ls_report.max_weak_diameter),
            ls_report.color_count,
            ls_report.clusters_connected,
        );
        println!();
        println!(
            "seed {seed}: LS93 produced a cluster that is disconnected in its induced \
             subgraph (strong diameter = inf) while its weak diameter stays <= {}.",
            ls_params.weak_diameter_bound()
        );
        println!(
            "EN16 on the same graph keeps every cluster connected with strong diameter <= {}.",
            en_params.diameter_bound()
        );
        shown_gap = true;
        break;
    }
    if !shown_gap {
        println!(
            "no disconnected LS93 cluster in 200 seeds (they are random events); \
             re-run with a different k or larger graph"
        );
    }
    Ok(())
}

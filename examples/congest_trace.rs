//! Faithful CONGEST execution: run the algorithm by actual message passing
//! with the paper's top-two pruning, enforce the per-edge byte budget, and
//! print the communication bill — then check the result is bit-identical
//! to the centralized simulation *and* to a run on the parallel
//! (verified-determinism) engine.
//!
//! ```text
//! cargo run --example congest_trace
//! ```

use netdecomp::core::distributed::{decompose_distributed, DistributedConfig, Forwarding};
use netdecomp::core::{basic, params::DecompositionParams};
use netdecomp::graph::generators;
use netdecomp::sim::{CongestLimit, Determinism, Engine};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 256;
    let mut rng = StdRng::seed_from_u64(1);
    let graph = generators::gnp(n, 6.0 / n as f64, &mut rng)?;
    // Headline k: radii large enough that broadcasts overlap and pruning
    // actually matters.
    let params = DecompositionParams::for_graph_size(n);
    let seed = 5;

    println!(
        "graph: G(n,p) with n = {n}, m = {}; k = {}\n",
        graph.edge_count(),
        params.k()
    );

    // CONGEST run: messages are (origin: u32, r: f64, dist: u16) = 14 bytes;
    // top-two pruning means at most two of them per edge per round.
    let congest = decompose_distributed(
        &graph,
        &params,
        seed,
        &DistributedConfig {
            forwarding: Forwarding::TopTwo,
            congest_limit: CongestLimit::PerEdgeBytes(28),
            ..DistributedConfig::default()
        },
    )?;
    println!("top-two pruning (CONGEST, 28 B/edge/round enforced):");
    println!("  rounds executed:   {}", congest.comm.rounds);
    println!("  messages:          {}", congest.comm.total_messages);
    println!("  payload bytes:     {}", congest.comm.total_bytes);
    println!("  max edge B/round:  {}", congest.comm.max_edge_bytes);
    println!(
        "  phases: {} (budget {}), colors: {}",
        congest.outcome.phases_used(),
        congest.outcome.phase_budget(),
        congest.outcome.decomposition().block_count()
    );

    // LOCAL-style full forwarding for contrast (no budget enforced).
    let full = decompose_distributed(
        &graph,
        &params,
        seed,
        &DistributedConfig {
            forwarding: Forwarding::Full,
            ..DistributedConfig::default()
        },
    )?;
    println!("\nfull forwarding (LOCAL):");
    println!("  messages:          {}", full.comm.total_messages);
    println!("  max edge B/round:  {}", full.comm.max_edge_bytes);
    println!(
        "  message blow-up:   {:.2}x",
        full.comm.total_messages as f64 / congest.comm.total_messages as f64
    );

    // The same CONGEST run on the sharded parallel engine, with every
    // round — compute and delivery — cross-checked against a sequential
    // reference.
    let parallel = decompose_distributed(
        &graph,
        &params,
        seed,
        &DistributedConfig {
            forwarding: Forwarding::TopTwo,
            congest_limit: CongestLimit::PerEdgeBytes(28),
            engine: Engine::Parallel {
                threads: 0,
                shards: 0,
            },
            determinism: Determinism::Verify,
            ..DistributedConfig::default()
        },
    )?;
    println!("\nparallel engine (verified determinism, all cores):");
    println!("  messages:          {}", parallel.comm.total_messages);
    println!("  max edge B/round:  {}", parallel.comm.max_edge_bytes);

    // All runs must agree with each other and with the centralized
    // simulation.
    let central = basic::decompose(&graph, &params, seed)?;
    assert_eq!(
        congest.outcome.decomposition(),
        full.outcome.decomposition()
    );
    assert_eq!(congest.outcome.decomposition(), central.decomposition());
    assert_eq!(congest.outcome, parallel.outcome);
    assert_eq!(congest.comm, parallel.comm);
    println!("\nall four executions produced bit-identical decompositions ✓");
    Ok(())
}

//! Sweep the paper's parameter tradeoff on one graph: Theorem 1/2 over k
//! (diameter up, colors down), Theorem 3 over lambda (colors pinned), and
//! print the measured frontier.
//!
//! ```text
//! cargo run --release --example tradeoff_sweep
//! ```

use netdecomp::core::{basic, high_radius, params, staged, verify};
use netdecomp::graph::generators;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 512;
    let mut rng = StdRng::seed_from_u64(1);
    let graph = generators::gnp(n, 6.0 / n as f64, &mut rng)?;
    let seed = 9;
    let fmt = |d: Option<usize>| d.map_or("inf".to_string(), |x| x.to_string());

    println!("graph: G(n,p), n = {n}, m = {}\n", graph.edge_count());
    println!(
        "{:<8} {:>10} {:>9} {:>9} {:>6}",
        "variant", "param", "D bound", "D meas", "chi"
    );

    let ln_n = (n as f64).ln().ceil() as usize;
    for k in 2..=ln_n {
        let p = params::DecompositionParams::new(k, 4.0)?;
        let o = basic::decompose(&graph, &p, seed)?;
        let r = verify::verify(&graph, o.decomposition())?;
        println!(
            "{:<8} {:>10} {:>9} {:>9} {:>6}",
            "T1",
            format!("k={k}"),
            p.diameter_bound(),
            fmt(r.max_strong_diameter),
            r.color_count
        );
    }
    for k in 2..=ln_n {
        let p = params::StagedParams::new(k, 6.0)?;
        let o = staged::decompose(&graph, &p, seed)?;
        let r = verify::verify(&graph, o.decomposition())?;
        println!(
            "{:<8} {:>10} {:>9} {:>9} {:>6}",
            "T2",
            format!("k={k}"),
            p.diameter_bound(),
            fmt(r.max_strong_diameter),
            r.color_count
        );
    }
    for lambda in 1..=4usize {
        let p = params::HighRadiusParams::new(lambda, 4.0)?;
        let o = high_radius::decompose(&graph, &p, seed)?;
        let r = verify::verify(&graph, o.decomposition())?;
        println!(
            "{:<8} {:>10} {:>9} {:>9} {:>6}",
            "T3",
            format!("lam={lambda}"),
            p.diameter_bound(n),
            fmt(r.max_strong_diameter),
            r.color_count
        );
    }
    println!(
        "\nreading: T1/T2 trade diameter (2k-2) against colors; T2 needs fewer colors \
         at equal k; T3 pins chi = lambda and pays in diameter."
    );
    Ok(())
}

//! Sparse neighborhood covers from a power-graph decomposition — the
//! Awerbuch–Peleg connection the paper's introduction mentions (routing
//! and synchronization both consume covers).
//!
//! For radius r: decompose G^{2r+1}; expanding each cluster by r in G gives
//! clusters such that (a) every r-ball lies inside some cluster, (b) no
//! vertex is in more than χ clusters, (c) cluster diameters stay bounded.
//!
//! ```text
//! cargo run --release --example neighborhood_cover
//! ```

use netdecomp::apps::cover;
use netdecomp::core::params::DecompositionParams;
use netdecomp::graph::generators;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let graph = generators::grid2d(12, 12);
    let n = graph.vertex_count();
    println!("graph: 12x12 grid (n = {n})\n");
    println!(
        "{:>2} {:>9} {:>8} {:>7} {:>12} {:>8}",
        "r", "clusters", "overlap", "chi", "weak D", "bound"
    );
    for r in 1..=3usize {
        let params = DecompositionParams::new(3, 4.0)?;
        let c = cover::build(&graph, r, &params, 7)?;
        let rep = cover::report(&graph, &c);
        assert!(rep.covers_all_balls, "every {r}-ball must be covered");
        assert!(rep.max_overlap <= rep.color_count, "overlap must be <= chi");
        println!(
            "{:>2} {:>9} {:>8} {:>7} {:>12} {:>8}",
            r,
            c.clusters.len(),
            rep.max_overlap,
            rep.color_count,
            rep.max_weak_diameter
                .map_or("inf".to_string(), |d| d.to_string()),
            c.diameter_bound,
        );
    }
    println!(
        "\nevery r-ball is inside its home cluster; no vertex belongs to more than chi \
         clusters — the sparse-cover guarantee derived from the strong decomposition."
    );
    Ok(())
}

//! Symmetry-breaking applications on top of network decompositions.
//!
//! The original motivation of network decomposition (Awerbuch–Goldberg–
//! Luby–Plotkin 1989, recounted in the paper's introduction): given a
//! `(D, χ)` decomposition plus a `χ`-coloring of its supergraph, problems
//! like maximal independent set, `(Δ+1)`-coloring and maximal matching are
//! solved in `O(D·χ)` distributed time by sweeping the color classes —
//! same-color clusters are non-adjacent, so each class is solved in
//! parallel by collecting every cluster to its leader.
//!
//! - [`schedule`] — the class-sweep engine with `O(D·χ)` round accounting.
//! - [`mis`] — maximal independent set via the sweep; [`luby`] — Luby's
//!   direct randomized MIS as the comparison baseline.
//! - [`coloring`] — `(Δ+1)`-vertex-coloring via the sweep.
//! - [`matching`] — maximal matching via the sweep (internal greedy plus
//!   proposal rounds across class boundaries).
//! - [`cover`] — sparse neighborhood covers via power-graph decomposition
//!   (the Awerbuch–Peleg connection noted in §1.1).
//! - [`spanner`] — sparse spanners from a decomposition (the \[DMP+05]
//!   application cited in §1.1).
//! - [`verify`] — validity checkers for all three symmetry-breaking
//!   problems.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod coloring;
pub mod cover;
pub mod luby;
pub mod matching;
pub mod mis;
pub mod schedule;
pub mod spanner;
pub mod verify;

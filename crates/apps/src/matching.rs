//! Maximal matching via the decomposition class sweep.
//!
//! Within a class, each cluster first matches greedily over its *internal*
//! edges. Boundary edges to already-processed vertices are then resolved by
//! proposal rounds: every still-unmatched vertex of the current class
//! proposes to its smallest-id unmatched processed neighbor; every
//! proposed-to vertex accepts its smallest-id proposer. Proposal rounds
//! repeat until stable, which keeps concurrent same-class clusters from
//! racing over a shared earlier-class neighbor — the same-class clusters
//! are non-adjacent, so their proposals can only collide *at* the earlier
//! vertex, which picks exactly one.

use netdecomp_core::{DecompError, NetworkDecomposition};
use netdecomp_graph::{Graph, VertexId};

use crate::schedule::{self, ScheduleCost};

/// Result of the decomposition-based maximal matching.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MatchingResult {
    /// `mate[v]` is `v`'s partner, `None` if unmatched.
    pub mate: Vec<Option<VertexId>>,
    /// Distributed-round accounting of the sweep (proposal rounds included).
    pub cost: ScheduleCost,
}

/// Computes a maximal matching of `graph` by sweeping `decomposition`'s
/// color classes.
///
/// # Errors
///
/// [`DecompError::GraphMismatch`] if sizes differ;
/// [`DecompError::InvalidParameter`] for incomplete decompositions.
///
/// # Example
///
/// ```
/// use netdecomp_apps::{matching, verify};
/// use netdecomp_core::{basic, params::DecompositionParams};
/// use netdecomp_graph::generators;
///
/// let g = generators::grid2d(5, 5);
/// let params = DecompositionParams::new(2, 4.0)?;
/// let outcome = basic::decompose(&g, &params, 6)?;
/// let result = matching::solve(&g, outcome.decomposition())?;
/// assert!(verify::is_maximal_matching(&g, &result.mate));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn solve(
    graph: &Graph,
    decomposition: &NetworkDecomposition,
) -> Result<MatchingResult, DecompError> {
    if !decomposition.partition().is_complete() {
        return Err(DecompError::InvalidParameter {
            name: "decomposition",
            reason: "must cover every vertex to drive applications".into(),
        });
    }
    let n = graph.vertex_count();
    let mut mate: Vec<Option<VertexId>> = vec![None; n];
    let mut processed = vec![false; n];
    let partition = decomposition.partition();

    // Collect members per class up front: proposal rounds operate on whole
    // classes, not single clusters.
    let clusters = partition.clusters();
    let blocks = decomposition.blocks();
    let mut extra_rounds = 0usize;

    let cost = {
        let mut class_members: Vec<Vec<VertexId>> = vec![Vec::new(); blocks.len()];
        for (block, cluster_ids) in blocks.iter().enumerate() {
            for &c in cluster_ids {
                class_members[block].extend(clusters[c].iter().copied());
            }
        }
        // Internal greedy per cluster through the sweep (accounts 2D+1
        // rounds per class), then proposal rounds per class.
        let mut current_block = usize::MAX;
        let base_cost = schedule::sweep(graph, decomposition, |block, c, members| {
            // Run the proposal rounds of the previous class once we move on.
            if block != current_block {
                if current_block != usize::MAX {
                    extra_rounds += proposal_rounds(
                        graph,
                        &class_members[current_block],
                        &mut mate,
                        &processed,
                    );
                    for &v in &class_members[current_block] {
                        processed[v] = true;
                    }
                }
                current_block = block;
            }
            let _ = c;
            // Internal greedy maximal matching on the cluster.
            for &v in members {
                if mate[v].is_some() {
                    continue;
                }
                let partner = graph.neighbors(v).iter().copied().find(|&u| {
                    mate[u].is_none() && partition.cluster_of(u) == partition.cluster_of(v)
                });
                if let Some(u) = partner {
                    mate[v] = Some(u);
                    mate[u] = Some(v);
                }
            }
        })?;
        // Flush the final class's proposals.
        if current_block != usize::MAX {
            extra_rounds +=
                proposal_rounds(graph, &class_members[current_block], &mut mate, &processed);
            for &v in &class_members[current_block] {
                processed[v] = true;
            }
        }
        base_cost
    };

    Ok(MatchingResult {
        mate,
        cost: ScheduleCost {
            classes: cost.classes,
            rounds: cost.rounds + extra_rounds,
        },
    })
}

/// Repeated proposal rounds between the class `members` and their processed
/// neighbors; returns the number of rounds run.
fn proposal_rounds(
    graph: &Graph,
    members: &[VertexId],
    mate: &mut [Option<VertexId>],
    processed: &[bool],
) -> usize {
    let mut rounds = 0usize;
    loop {
        rounds += 1;
        // Each unmatched member proposes to its smallest unmatched processed
        // neighbor.
        let mut proposals: Vec<(VertexId, VertexId)> = Vec::new(); // (target, proposer)
        for &v in members {
            if mate[v].is_some() {
                continue;
            }
            if let Some(u) = graph
                .neighbors(v)
                .iter()
                .copied()
                .find(|&u| processed[u] && mate[u].is_none())
            {
                proposals.push((u, v));
            }
        }
        if proposals.is_empty() {
            return rounds;
        }
        // Each target accepts its smallest proposer.
        proposals.sort_unstable();
        let mut progressed = false;
        let mut i = 0;
        while i < proposals.len() {
            let (target, proposer) = proposals[i];
            // Skip the rest of this target's proposals.
            let mut j = i + 1;
            while j < proposals.len() && proposals[j].0 == target {
                j += 1;
            }
            if mate[target].is_none() && mate[proposer].is_none() {
                mate[target] = Some(proposer);
                mate[proposer] = Some(target);
                progressed = true;
            }
            i = j;
        }
        if !progressed {
            return rounds;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify;
    use netdecomp_core::{basic, params::DecompositionParams};
    use netdecomp_graph::generators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn match_on(g: &Graph, seed: u64) -> MatchingResult {
        let params = DecompositionParams::new(3, 4.0).unwrap();
        let outcome = basic::decompose(g, &params, seed).unwrap();
        solve(g, outcome.decomposition()).unwrap()
    }

    #[test]
    fn matching_is_maximal_on_families() {
        let mut rng = StdRng::seed_from_u64(9);
        let graphs = [
            generators::path(20),
            generators::cycle(21),
            generators::grid2d(6, 6),
            generators::complete(9),
            generators::star(12),
            generators::gnp(70, 0.1, &mut rng).unwrap(),
            generators::caveman(4, 5).unwrap(),
        ];
        for (i, g) in graphs.iter().enumerate() {
            for seed in 0..3u64 {
                let r = match_on(g, seed);
                assert!(
                    verify::is_maximal_matching(g, &r.mate),
                    "graph {i} seed {seed}"
                );
            }
        }
    }

    #[test]
    fn path_matching_size() {
        // A maximal matching on a path of 2m vertices has >= m/2 edges; on
        // P4 any maximal matching has at least 1 edge, at most 2.
        let g = generators::path(4);
        let r = match_on(&g, 0);
        let matched = r.mate.iter().filter(|m| m.is_some()).count();
        assert!(matched == 2 || matched == 4);
    }

    #[test]
    fn edgeless_graph_has_empty_matching() {
        let g = Graph::empty(6);
        let r = match_on(&g, 1);
        assert!(r.mate.iter().all(Option::is_none));
        assert!(verify::is_maximal_matching(&g, &r.mate));
    }

    #[test]
    fn incomplete_decomposition_rejected() {
        use netdecomp_graph::Partition;
        let g = generators::path(3);
        let mut p = Partition::new(3);
        p.push_cluster(&[0, 1]);
        let d = netdecomp_core::NetworkDecomposition::from_parts(p, vec![0], vec![0]);
        assert!(solve(&g, &d).is_err());
    }

    #[test]
    fn star_matching_has_exactly_one_edge() {
        let g = generators::star(10);
        let r = match_on(&g, 3);
        let matched = r.mate.iter().filter(|m| m.is_some()).count();
        assert_eq!(matched, 2, "hub can match only one leaf");
        assert!(verify::is_maximal_matching(&g, &r.mate));
    }
}

//! Sparse spanners from a network decomposition.
//!
//! One of the applications the paper cites (Dubhashi et al. \[DMP+05] build
//! sparse spanners and linear-size skeletons from decompositions). The
//! classical cluster-spanner construction implemented here:
//!
//! 1. inside every cluster, keep a BFS tree rooted at the cluster center;
//! 2. between every pair of *adjacent* clusters, keep exactly one crossing
//!    edge.
//!
//! For a decomposition with cluster radius ≤ `ρ` this spans every original
//! edge within `4ρ + 1` hops, i.e. it is a multiplicative `(4ρ + 1)`-
//! spanner, with at most `n − #clusters + #superedges` edges. ([DMP+05]
//! refine step 2 to get linear size; one edge per adjacent cluster pair is
//! the textbook variant and keeps the guarantee measurable.)

use netdecomp_core::{DecompError, NetworkDecomposition};
use netdecomp_graph::{bfs, Graph, GraphBuilder, VertexId, VertexSet};

/// A spanner with its provenance.
#[derive(Debug, Clone)]
pub struct SpannerResult {
    /// The spanner as a standalone graph over the same vertex ids.
    pub spanner: Graph,
    /// The stretch bound `4ρ + 1` implied by the decomposition's measured
    /// maximum cluster radius `ρ`.
    pub stretch_bound: usize,
    /// Tree edges kept inside clusters.
    pub tree_edges: usize,
    /// Crossing edges kept between adjacent clusters.
    pub crossing_edges: usize,
}

/// Builds the cluster spanner of `graph` induced by `decomposition`.
///
/// # Errors
///
/// [`DecompError::GraphMismatch`] if sizes differ;
/// [`DecompError::InvalidParameter`] if the decomposition is incomplete or
/// has disconnected clusters (a strong-diameter decomposition never does).
pub fn build(
    graph: &Graph,
    decomposition: &NetworkDecomposition,
) -> Result<SpannerResult, DecompError> {
    if decomposition.vertex_count() != graph.vertex_count() {
        return Err(DecompError::GraphMismatch {
            decomposition_n: decomposition.vertex_count(),
            graph_n: graph.vertex_count(),
        });
    }
    if !decomposition.partition().is_complete() {
        return Err(DecompError::InvalidParameter {
            name: "decomposition",
            reason: "must cover every vertex".into(),
        });
    }
    let n = graph.vertex_count();
    let partition = decomposition.partition();
    let mut b = GraphBuilder::new(n);
    let mut tree_edges = 0usize;
    let mut max_radius = 0usize;

    // 1. BFS tree per cluster, rooted at the center.
    for c in 0..partition.cluster_count() {
        let members = partition.cluster_set(c);
        let center = decomposition.center_of_cluster(c);
        if !members.contains(center) || members.len() <= 1 {
            if members.len() > 1 {
                return Err(DecompError::InvalidParameter {
                    name: "decomposition",
                    reason: format!("cluster {c} does not contain its center"),
                });
            }
            continue;
        }
        let dist = bfs::distances_restricted(graph, center, &members);
        for v in members.iter() {
            match dist[v] {
                Some(0) => {}
                Some(d) => {
                    max_radius = max_radius.max(d);
                    let parent = graph
                        .neighbors(v)
                        .iter()
                        .copied()
                        .find(|&u| members.contains(u) && dist[u] == Some(d - 1))
                        .expect("BFS predecessor exists");
                    b.add_edge(v, parent).expect("in range");
                    tree_edges += 1;
                }
                None => {
                    return Err(DecompError::InvalidParameter {
                        name: "decomposition",
                        reason: format!(
                            "cluster {c} is disconnected; spanners need strong-diameter clusters"
                        ),
                    });
                }
            }
        }
    }

    // 2. One crossing edge per adjacent cluster pair.
    let mut chosen: std::collections::HashSet<(usize, usize)> = std::collections::HashSet::new();
    let mut crossing_edges = 0usize;
    for (u, v) in graph.edges() {
        let (cu, cv) = (
            partition.cluster_of(u).expect("complete"),
            partition.cluster_of(v).expect("complete"),
        );
        if cu == cv {
            continue;
        }
        let key = if cu < cv { (cu, cv) } else { (cv, cu) };
        if chosen.insert(key) {
            b.add_edge(u, v).expect("in range");
            crossing_edges += 1;
        }
    }

    Ok(SpannerResult {
        spanner: b.build(),
        stretch_bound: 4 * max_radius + 1,
        tree_edges,
        crossing_edges,
    })
}

/// Measures the actual stretch of `spanner` over every edge of `graph`:
/// `max d_spanner(u, v)` over `(u, v) ∈ E(G)`. Returns `None` if some edge's
/// endpoints are disconnected in the spanner (not a spanner at all).
#[must_use]
pub fn measured_stretch(graph: &Graph, spanner: &Graph) -> Option<usize> {
    let mut worst = 0usize;
    let full = VertexSet::full(spanner.vertex_count());
    // One BFS per distinct edge source suffices.
    let mut last_source: Option<(VertexId, Vec<Option<usize>>)> = None;
    for (u, v) in graph.edges() {
        let dist = match &last_source {
            Some((s, d)) if *s == u => d,
            _ => {
                let d = bfs::distances_restricted(spanner, u, &full);
                last_source = Some((u, d));
                &last_source.as_ref().expect("just set").1
            }
        };
        match dist[v] {
            Some(d) => worst = worst.max(d),
            None => return None,
        }
    }
    Some(worst)
}

#[cfg(test)]
mod tests {
    use super::*;
    use netdecomp_core::{basic, params::DecompositionParams};
    use netdecomp_graph::generators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn spanner_on(g: &Graph, k: usize, seed: u64) -> SpannerResult {
        let params = DecompositionParams::new(k, 4.0).unwrap();
        let outcome = basic::decompose(g, &params, seed).unwrap();
        build(g, outcome.decomposition()).unwrap()
    }

    #[test]
    fn spanner_is_sparse_subgraph_with_bounded_stretch() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = generators::gnp(120, 0.15, &mut rng).unwrap();
        let s = spanner_on(&g, 3, 2);
        // Subgraph.
        for (u, v) in s.spanner.edges() {
            assert!(g.has_edge(u, v), "non-edge {u}-{v} in spanner");
        }
        // Stretch within the bound.
        let stretch = measured_stretch(&g, &s.spanner).expect("spans all edges");
        assert!(
            stretch <= s.stretch_bound,
            "stretch {stretch} > bound {}",
            s.stretch_bound
        );
    }

    #[test]
    fn spanner_preserves_connectivity() {
        let g = generators::grid2d(8, 8);
        let s = spanner_on(&g, 3, 5);
        assert!(netdecomp_graph::components::is_connected(&s.spanner));
    }

    #[test]
    fn dense_graph_spanner_is_much_sparser() {
        let g = generators::complete(40);
        let s = spanner_on(&g, 3, 1);
        assert!(
            s.spanner.edge_count() * 2 < g.edge_count(),
            "spanner {} vs graph {}",
            s.spanner.edge_count(),
            g.edge_count()
        );
    }

    #[test]
    fn edge_budget_accounting_is_exact() {
        let g = generators::grid2d(6, 6);
        let s = spanner_on(&g, 3, 3);
        assert_eq!(s.spanner.edge_count(), s.tree_edges + s.crossing_edges);
    }

    #[test]
    fn stretch_across_families_and_seeds() {
        let graphs = [
            generators::cycle(40),
            generators::caveman(5, 6).unwrap(),
            generators::grid2d(7, 7),
        ];
        for (i, g) in graphs.iter().enumerate() {
            for seed in 0..3u64 {
                let s = spanner_on(g, 3, seed);
                let stretch = measured_stretch(g, &s.spanner).expect("spans");
                assert!(
                    stretch <= s.stretch_bound,
                    "graph {i} seed {seed}: {stretch} > {}",
                    s.stretch_bound
                );
            }
        }
    }

    #[test]
    fn incomplete_decomposition_rejected() {
        use netdecomp_graph::Partition;
        let g = generators::path(3);
        let mut p = Partition::new(3);
        p.push_cluster(&[0]);
        let d = netdecomp_core::NetworkDecomposition::from_parts(p, vec![0], vec![0]);
        assert!(build(&g, &d).is_err());
    }

    #[test]
    fn disconnected_cluster_rejected() {
        use netdecomp_graph::Partition;
        let g = generators::path(3); // 0-1-2
        let mut p = Partition::new(3);
        p.push_cluster(&[0, 2]); // disconnected
        p.push_cluster(&[1]);
        let d = netdecomp_core::NetworkDecomposition::from_parts(p, vec![0, 1], vec![0, 1]);
        let err = build(&g, &d).unwrap_err();
        assert!(err.to_string().contains("disconnected"));
    }
}

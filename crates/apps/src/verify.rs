//! Validity checkers for the symmetry-breaking problems.

use netdecomp_graph::{Graph, VertexId};

/// Is `in_mis` an independent set of `g`?
#[must_use]
pub fn is_independent_set(g: &Graph, in_mis: &[bool]) -> bool {
    g.edges().all(|(u, v)| !(in_mis[u] && in_mis[v]))
}

/// Is `in_mis` a *maximal* independent set of `g`? (Independent, and every
/// vertex outside has a neighbor inside.)
#[must_use]
pub fn is_maximal_independent_set(g: &Graph, in_mis: &[bool]) -> bool {
    if !is_independent_set(g, in_mis) {
        return false;
    }
    g.vertices()
        .all(|v| in_mis[v] || g.neighbors(v).iter().any(|&u| in_mis[u]))
}

/// Is `colors` a proper coloring of `g` using at most `max_colors` colors?
#[must_use]
pub fn is_proper_coloring(g: &Graph, colors: &[usize], max_colors: usize) -> bool {
    colors.iter().all(|&c| c < max_colors) && g.edges().all(|(u, v)| colors[u] != colors[v])
}

/// Is `mate` a matching of `g`? (`mate[v] = Some(u)` must be symmetric, over
/// real edges, and nobody is matched twice by construction of the encoding.)
#[must_use]
pub fn is_matching(g: &Graph, mate: &[Option<VertexId>]) -> bool {
    mate.iter().enumerate().all(|(v, m)| match m {
        None => true,
        Some(u) => *u != v && *u < mate.len() && mate[*u] == Some(v) && g.has_edge(v, *u),
    })
}

/// Is `mate` a *maximal* matching? (A matching with no edge both of whose
/// endpoints are unmatched.)
#[must_use]
pub fn is_maximal_matching(g: &Graph, mate: &[Option<VertexId>]) -> bool {
    if !is_matching(g, mate) {
        return false;
    }
    g.edges()
        .all(|(u, v)| mate[u].is_some() || mate[v].is_some())
}

#[cfg(test)]
mod tests {
    use super::*;
    use netdecomp_graph::generators;

    #[test]
    fn independent_set_checks() {
        let g = generators::path(4); // 0-1-2-3
        assert!(is_independent_set(&g, &[true, false, true, false]));
        assert!(!is_independent_set(&g, &[true, true, false, false]));
        assert!(is_maximal_independent_set(&g, &[true, false, true, false]));
        // {0} is independent but not maximal (2-3 uncovered).
        assert!(!is_maximal_independent_set(
            &g,
            &[true, false, false, false]
        ));
        // {0, 3} is independent but 1,2 are covered? 1 adj 0 yes, 2 adj 3 yes.
        assert!(is_maximal_independent_set(&g, &[true, false, false, true]));
    }

    #[test]
    fn coloring_checks() {
        let g = generators::cycle(4);
        assert!(is_proper_coloring(&g, &[0, 1, 0, 1], 2));
        assert!(!is_proper_coloring(&g, &[0, 1, 0, 0], 2));
        assert!(!is_proper_coloring(&g, &[0, 1, 0, 5], 2)); // out of palette
    }

    #[test]
    fn matching_checks() {
        let g = generators::path(4);
        let m: Vec<Option<usize>> = vec![Some(1), Some(0), Some(3), Some(2)];
        assert!(is_matching(&g, &m));
        assert!(is_maximal_matching(&g, &m));
        // Asymmetric is invalid.
        let bad: Vec<Option<usize>> = vec![Some(1), None, None, None];
        assert!(!is_matching(&g, &bad));
        // Non-edge is invalid.
        let nonedge: Vec<Option<usize>> = vec![Some(2), None, Some(0), None];
        assert!(!is_matching(&g, &nonedge));
        // Self-match is invalid.
        let selfm: Vec<Option<usize>> = vec![Some(0), None, None, None];
        assert!(!is_matching(&g, &selfm));
        // Empty matching on a graph with edges is not maximal.
        assert!(!is_maximal_matching(&g, &[None, None, None, None]));
        // Middle edge only: {1-2} is maximal on the path 0-1-2-3.
        let mid: Vec<Option<usize>> = vec![None, Some(2), Some(1), None];
        assert!(is_maximal_matching(&g, &mid));
    }
}

//! `(Δ+1)`-vertex-coloring via the decomposition class sweep.

use netdecomp_core::{DecompError, NetworkDecomposition};
use netdecomp_graph::Graph;

use crate::schedule::{self, ScheduleCost};

/// Result of the decomposition-based coloring.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColoringResult {
    /// Color per vertex, each `< Δ + 1`.
    pub colors: Vec<usize>,
    /// Distributed-round accounting of the sweep.
    pub cost: ScheduleCost,
}

/// Computes a proper `(Δ+1)`-coloring of `graph` by sweeping
/// `decomposition`'s color classes: each cluster greedily extends the
/// partial coloring of all previously processed classes.
///
/// # Errors
///
/// [`DecompError::GraphMismatch`] if sizes differ;
/// [`DecompError::InvalidParameter`] for incomplete decompositions.
///
/// # Example
///
/// ```
/// use netdecomp_apps::{coloring, verify};
/// use netdecomp_core::{basic, params::DecompositionParams};
/// use netdecomp_graph::generators;
///
/// let g = generators::cycle(15);
/// let params = DecompositionParams::new(2, 4.0)?;
/// let outcome = basic::decompose(&g, &params, 9)?;
/// let result = coloring::solve(&g, outcome.decomposition())?;
/// assert!(verify::is_proper_coloring(&g, &result.colors, g.max_degree() + 1));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn solve(
    graph: &Graph,
    decomposition: &NetworkDecomposition,
) -> Result<ColoringResult, DecompError> {
    if !decomposition.partition().is_complete() {
        return Err(DecompError::InvalidParameter {
            name: "decomposition",
            reason: "must cover every vertex to drive applications".into(),
        });
    }
    let n = graph.vertex_count();
    let palette = graph.max_degree() + 1;
    let mut colors: Vec<Option<usize>> = vec![None; n];
    let cost = schedule::sweep(graph, decomposition, |_block, _c, members| {
        for &v in members {
            let mut used = vec![false; palette];
            for &u in graph.neighbors(v) {
                if let Some(cu) = colors[u] {
                    used[cu] = true;
                }
            }
            let c = used
                .iter()
                .position(|&b| !b)
                .expect("a free color always exists in a (Delta+1)-palette");
            colors[v] = Some(c);
        }
    })?;
    Ok(ColoringResult {
        colors: colors
            .into_iter()
            .map(|c| c.expect("all colored"))
            .collect(),
        cost,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify;
    use netdecomp_core::{basic, params::DecompositionParams};
    use netdecomp_graph::generators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn color_on(g: &Graph, seed: u64) -> ColoringResult {
        let params = DecompositionParams::new(3, 4.0).unwrap();
        let outcome = basic::decompose(g, &params, seed).unwrap();
        solve(g, outcome.decomposition()).unwrap()
    }

    #[test]
    fn coloring_is_proper_within_palette() {
        let mut rng = StdRng::seed_from_u64(3);
        let graphs = [
            generators::cycle(25),
            generators::complete(10),
            generators::grid2d(5, 9),
            generators::gnp(90, 0.07, &mut rng).unwrap(),
            generators::star(15),
        ];
        for (i, g) in graphs.iter().enumerate() {
            for seed in 0..3u64 {
                let r = color_on(g, seed);
                assert!(
                    verify::is_proper_coloring(g, &r.colors, g.max_degree() + 1),
                    "graph {i} seed {seed}"
                );
            }
        }
    }

    #[test]
    fn complete_graph_uses_exactly_n_colors() {
        let g = generators::complete(8);
        let r = color_on(&g, 1);
        let mut seen: Vec<usize> = r.colors.clone();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), 8);
    }

    #[test]
    fn edgeless_graph_uses_one_color() {
        let g = Graph::empty(5);
        let r = color_on(&g, 1);
        assert!(r.colors.iter().all(|&c| c == 0));
    }

    #[test]
    fn incomplete_decomposition_rejected() {
        use netdecomp_graph::Partition;
        let g = generators::path(3);
        let mut p = Partition::new(3);
        p.push_cluster(&[2]);
        let d = netdecomp_core::NetworkDecomposition::from_parts(p, vec![0], vec![2]);
        assert!(solve(&g, &d).is_err());
    }
}

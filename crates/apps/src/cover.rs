//! Sparse neighborhood covers from a decomposition of a graph power.
//!
//! The paper's introduction notes that network decompositions are "closely
//! related to neighborhood covers, which are used extensively for routing
//! and synchronization" (Awerbuch–Peleg; the relationship is explored in
//! ABCP92). The classical reduction implemented here: to cover every
//! `r`-ball, decompose the power graph `H = G^{2r+1}` and expand each
//! cluster `C` to `Ĉ = B_G(C, r)`. Then
//!
//! - **coverage**: every ball `B_G(v, r)` is contained in `Ĉ(v)` for `v`'s
//!   own cluster `C(v)` (trivially, since `v ∈ C(v)`);
//! - **overlap ≤ χ**: two same-color clusters of `H` are non-adjacent in
//!   `H`, i.e. more than `2r + 1` apart in `G`, so their `r`-expansions are
//!   disjoint — a vertex lies in at most one expanded cluster per color;
//! - **diameter**: `Ĉ` has weak `G`-diameter at most
//!   `(2k − 2)(2r + 1) + 2r` when the decomposition's strong diameter in
//!   `H` is `2k − 2`.
//!
//! All three are verified by [`CoverReport`], not assumed.

use netdecomp_core::{basic, params::DecompositionParams, DecompError, NetworkDecomposition};
use netdecomp_graph::{bfs, diameter, power, Graph, VertexId, VertexSet};

/// A sparse `r`-neighborhood cover.
#[derive(Debug, Clone)]
pub struct NeighborhoodCover {
    /// Cover radius `r`.
    pub radius: usize,
    /// Expanded clusters, indexed by the underlying decomposition's cluster
    /// ids; each is sorted.
    pub clusters: Vec<Vec<VertexId>>,
    /// Color (block) of each cover cluster, inherited from the
    /// decomposition of `G^{2r+1}`.
    pub colors: Vec<usize>,
    /// For each vertex, the cover cluster guaranteed to contain its
    /// `r`-ball (= its own cluster in the decomposition).
    pub home: Vec<usize>,
    /// The weak-diameter bound `(2k − 2)(2r + 1) + 2r` implied by the
    /// decomposition parameters.
    pub diameter_bound: usize,
}

/// Measured properties of a cover.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoverReport {
    /// `true` if every vertex's `r`-ball is contained in its home cluster.
    pub covers_all_balls: bool,
    /// Largest number of cover clusters any vertex belongs to.
    pub max_overlap: usize,
    /// Number of colors (upper-bounds the overlap by construction).
    pub color_count: usize,
    /// Largest measured weak `G`-diameter over cover clusters (`None` if
    /// some pair is disconnected in `G`).
    pub max_weak_diameter: Option<usize>,
}

/// Builds an `r`-neighborhood cover of `graph` by decomposing `G^{2r+1}`
/// with Theorem 1 at the given parameters.
///
/// # Errors
///
/// Propagates parameter/graph errors from the power construction and the
/// decomposition; [`DecompError::InvalidParameter`] if `r == 0` or the
/// decomposition left vertices unassigned.
pub fn build(
    graph: &Graph,
    r: usize,
    params: &DecompositionParams,
    seed: u64,
) -> Result<NeighborhoodCover, DecompError> {
    if r == 0 {
        return Err(DecompError::InvalidParameter {
            name: "r",
            reason: "cover radius must be at least 1".into(),
        });
    }
    let h = power::power(graph, 2 * r + 1).map_err(|e| DecompError::InvalidParameter {
        name: "power",
        reason: e.to_string(),
    })?;
    let outcome = basic::decompose(&h, params, seed)?;
    let decomposition: NetworkDecomposition = outcome.into_decomposition();
    if !decomposition.partition().is_complete() {
        return Err(DecompError::InvalidParameter {
            name: "decomposition",
            reason: "power-graph decomposition left vertices unassigned".into(),
        });
    }

    let n = graph.vertex_count();
    let partition = decomposition.partition();
    let mut clusters = Vec::with_capacity(partition.cluster_count());
    let mut colors = Vec::with_capacity(partition.cluster_count());
    for c in 0..partition.cluster_count() {
        let members = partition.cluster_set(c);
        // Expand by r in G: multi-source BFS truncated at depth r.
        let sources: Vec<VertexId> = members.iter().collect();
        let dist = bfs::multi_source_distances(graph, &sources);
        let expanded: Vec<VertexId> = (0..n)
            .filter(|&v| dist[v].is_some_and(|(d, _)| d <= r))
            .collect();
        clusters.push(expanded);
        colors.push(decomposition.block_of_cluster(c));
    }
    let home = (0..n)
        .map(|v| partition.cluster_of(v).expect("complete"))
        .collect();
    Ok(NeighborhoodCover {
        radius: r,
        clusters,
        colors,
        home,
        diameter_bound: params.diameter_bound() * (2 * r + 1) + 2 * r,
    })
}

/// Measures the cover's guarantees on `graph`.
#[must_use]
pub fn report(graph: &Graph, cover: &NeighborhoodCover) -> CoverReport {
    let n = graph.vertex_count();
    // Membership bitmap per cluster for coverage and overlap checks.
    let sets: Vec<VertexSet> = cover
        .clusters
        .iter()
        .map(|members| {
            let mut s = VertexSet::new(n);
            for &v in members {
                s.insert(v);
            }
            s
        })
        .collect();

    let mut covers_all = true;
    for v in 0..n {
        let home = &sets[cover.home[v]];
        let dist = bfs::distances(graph, v);
        for (u, du) in dist.iter().enumerate() {
            if du.is_some_and(|d| d <= cover.radius) && !home.contains(u) {
                covers_all = false;
            }
        }
    }

    let mut overlap = vec![0usize; n];
    for s in &sets {
        for v in s.iter() {
            overlap[v] += 1;
        }
    }

    let mut max_weak: Option<usize> = Some(0);
    for s in &sets {
        match (max_weak, diameter::weak_diameter(graph, s)) {
            (Some(best), Some(d)) => max_weak = Some(best.max(d)),
            _ => max_weak = None,
        }
    }

    CoverReport {
        covers_all_balls: covers_all,
        max_overlap: overlap.iter().copied().max().unwrap_or(0),
        color_count: cover.colors.iter().map(|&c| c + 1).max().unwrap_or(0),
        max_weak_diameter: max_weak,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netdecomp_graph::generators;

    fn check(g: &Graph, r: usize, k: usize, seed: u64) -> (NeighborhoodCover, CoverReport) {
        let params = DecompositionParams::new(k, 4.0).unwrap();
        let cover = build(g, r, &params, seed).unwrap();
        let rep = report(g, &cover);
        (cover, rep)
    }

    #[test]
    fn balls_are_covered_on_families() {
        let graphs = [
            generators::cycle(40),
            generators::grid2d(7, 7),
            generators::caveman(5, 5).unwrap(),
        ];
        for (i, g) in graphs.iter().enumerate() {
            let (_, rep) = check(g, 2, 3, i as u64);
            assert!(rep.covers_all_balls, "graph {i}: some ball uncovered");
        }
    }

    #[test]
    fn overlap_is_bounded_by_colors() {
        let g = generators::grid2d(8, 8);
        for seed in 0..3u64 {
            let (_, rep) = check(&g, 1, 3, seed);
            assert!(
                rep.max_overlap <= rep.color_count,
                "seed {seed}: overlap {} > chi {}",
                rep.max_overlap,
                rep.color_count
            );
        }
    }

    #[test]
    fn weak_diameter_respects_bound_when_clean() {
        let g = generators::cycle(48);
        let params = DecompositionParams::new(3, 8.0).unwrap();
        // Re-run until a clean (no-truncation) run; seeds are cheap.
        for seed in 0..10u64 {
            let h = power::power(&g, 5).unwrap();
            let o = basic::decompose(&h, &params, seed).unwrap();
            if !o.events().clean() {
                continue;
            }
            let cover = build(&g, 2, &params, seed).unwrap();
            let rep = report(&g, &cover);
            assert!(
                rep.max_weak_diameter
                    .is_some_and(|d| d <= cover.diameter_bound),
                "seed {seed}: {rep:?} vs bound {}",
                cover.diameter_bound
            );
            return;
        }
        panic!("no clean run in 10 seeds");
    }

    #[test]
    fn home_cluster_contains_vertex() {
        let g = generators::grid2d(6, 6);
        let (cover, _) = check(&g, 1, 3, 5);
        for v in 0..36 {
            assert!(
                cover.clusters[cover.home[v]].contains(&v),
                "vertex {v} missing from home cluster"
            );
        }
    }

    #[test]
    fn zero_radius_rejected() {
        let g = generators::path(4);
        let params = DecompositionParams::new(2, 4.0).unwrap();
        assert!(build(&g, 0, &params, 1).is_err());
    }
}

//! Maximal independent set via the decomposition class sweep.

use netdecomp_core::{DecompError, NetworkDecomposition};
use netdecomp_graph::Graph;

use crate::schedule::{self, ScheduleCost};

/// Result of the decomposition-based MIS.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MisResult {
    /// Membership flags, indexed by vertex.
    pub in_mis: Vec<bool>,
    /// Distributed-round accounting of the sweep.
    pub cost: ScheduleCost,
}

/// Computes a maximal independent set of `graph` by sweeping
/// `decomposition`'s color classes (AGLP89; the paper's §1.1): clusters of
/// one class are solved greedily in parallel, respecting all earlier
/// decisions.
///
/// # Errors
///
/// [`DecompError::GraphMismatch`] if sizes differ;
/// [`DecompError::InvalidParameter`] if the decomposition does not cover
/// every vertex (a failed decomposition run cannot drive applications).
///
/// # Example
///
/// ```
/// use netdecomp_apps::{mis, verify};
/// use netdecomp_core::{basic, params::DecompositionParams};
/// use netdecomp_graph::generators;
///
/// let g = generators::grid2d(6, 6);
/// let params = DecompositionParams::new(3, 4.0)?;
/// let outcome = basic::decompose(&g, &params, 3)?;
/// let result = mis::solve(&g, outcome.decomposition())?;
/// assert!(verify::is_maximal_independent_set(&g, &result.in_mis));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn solve(
    graph: &Graph,
    decomposition: &NetworkDecomposition,
) -> Result<MisResult, DecompError> {
    if !decomposition.partition().is_complete() {
        return Err(DecompError::InvalidParameter {
            name: "decomposition",
            reason: "must cover every vertex to drive applications".into(),
        });
    }
    let mut decided = vec![false; graph.vertex_count()];
    let mut in_mis = vec![false; graph.vertex_count()];
    let cost = schedule::sweep(graph, decomposition, |_block, _c, members| {
        // The cluster leader solves greedily over the collected topology,
        // respecting decisions of earlier classes visible on the boundary.
        for &v in members {
            let blocked = graph.neighbors(v).iter().any(|&u| decided[u] && in_mis[u]);
            in_mis[v] = !blocked;
            decided[v] = true;
        }
    })?;
    Ok(MisResult { in_mis, cost })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify;
    use netdecomp_core::{basic, params::DecompositionParams};
    use netdecomp_graph::generators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn mis_on(g: &Graph, seed: u64) -> MisResult {
        let params = DecompositionParams::new(3, 4.0).unwrap();
        let outcome = basic::decompose(g, &params, seed).unwrap();
        solve(g, outcome.decomposition()).unwrap()
    }

    #[test]
    fn mis_is_maximal_on_families() {
        let mut rng = StdRng::seed_from_u64(1);
        let graphs = [
            generators::path(30),
            generators::cycle(31),
            generators::grid2d(6, 7),
            generators::star(20),
            generators::complete(12),
            generators::gnp(80, 0.08, &mut rng).unwrap(),
        ];
        for (i, g) in graphs.iter().enumerate() {
            for seed in 0..3u64 {
                let r = mis_on(g, seed);
                assert!(
                    verify::is_maximal_independent_set(g, &r.in_mis),
                    "graph {i} seed {seed}"
                );
            }
        }
    }

    #[test]
    fn complete_graph_mis_has_one_vertex() {
        let g = generators::complete(9);
        let r = mis_on(&g, 4);
        assert_eq!(r.in_mis.iter().filter(|&&b| b).count(), 1);
    }

    #[test]
    fn edgeless_graph_mis_is_everything() {
        let g = Graph::empty(7);
        let r = mis_on(&g, 2);
        assert!(r.in_mis.iter().all(|&b| b));
    }

    #[test]
    fn cost_reflects_decomposition_shape() {
        let g = generators::grid2d(8, 8);
        let params = DecompositionParams::new(3, 4.0).unwrap();
        let outcome = basic::decompose(&g, &params, 5).unwrap();
        let d = outcome.decomposition();
        let r = solve(&g, d).unwrap();
        assert_eq!(r.cost.classes, d.block_count());
        // O(D * chi): rounds <= (2*(k-1)+1) * classes with D = 2k-2.
        let k = params.k();
        assert!(r.cost.rounds <= (2 * (k - 1) + 1) * r.cost.classes);
    }

    #[test]
    fn incomplete_decomposition_rejected() {
        use netdecomp_graph::Partition;
        let g = generators::path(3);
        let mut p = Partition::new(3);
        p.push_cluster(&[0]);
        let d = netdecomp_core::NetworkDecomposition::from_parts(p, vec![0], vec![0]);
        assert!(solve(&g, &d).is_err());
    }
}

//! The color-class sweep: the `O(D·χ)` schedule of \[AGLP89].
//!
//! Clusters of the same block (supergraph color) are pairwise non-adjacent,
//! so they can be solved simultaneously; blocks are processed sequentially
//! so every cluster sees the final decisions of all earlier blocks. The
//! naive per-cluster algorithm — collect the cluster's topology at a leader,
//! solve centrally, disseminate — costs `O(D)` rounds per block, hence
//! `O(D·χ)` in total, which [`ScheduleCost`] accounts per run.

use netdecomp_core::{DecompError, NetworkDecomposition};
use netdecomp_graph::{bfs, Graph, VertexId};

/// Distributed-round accounting of a class sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ScheduleCost {
    /// Number of blocks (color classes) processed.
    pub classes: usize,
    /// Total rounds: per class, one gather + one disseminate along each
    /// cluster's BFS tree (`2 × max cluster radius`) plus one round of
    /// boundary exchange.
    pub rounds: usize,
}

/// Sweeps the decomposition's blocks in order, invoking `solve` once per
/// cluster with `(block, cluster_id, members)`; members are sorted.
///
/// Round accounting: for each block, `2·max_radius + 1` rounds, where a
/// cluster's radius is the eccentricity of its center inside the cluster
/// (falling back to distances in `G` for clusters that are disconnected in
/// their induced subgraph, as produced by weak-diameter baselines).
///
/// # Errors
///
/// [`DecompError::GraphMismatch`] if sizes differ. Unassigned vertices are
/// allowed (they are simply never visited) so failed runs can still be
/// swept.
pub fn sweep<F>(
    graph: &Graph,
    decomposition: &NetworkDecomposition,
    mut solve: F,
) -> Result<ScheduleCost, DecompError>
where
    F: FnMut(usize, usize, &[VertexId]),
{
    if decomposition.vertex_count() != graph.vertex_count() {
        return Err(DecompError::GraphMismatch {
            decomposition_n: decomposition.vertex_count(),
            graph_n: graph.vertex_count(),
        });
    }
    let partition = decomposition.partition();
    let clusters = partition.clusters();
    let mut cost = ScheduleCost::default();
    for (block, cluster_ids) in decomposition.blocks().into_iter().enumerate() {
        let mut max_radius = 0usize;
        for &c in &cluster_ids {
            let members = &clusters[c];
            max_radius = max_radius.max(cluster_radius(
                graph,
                decomposition.center_of_cluster(c),
                members,
            ));
            solve(block, c, members);
        }
        cost.classes += 1;
        cost.rounds += 2 * max_radius + 1;
    }
    Ok(cost)
}

/// Radius of a cluster around its center: eccentricity within the induced
/// subgraph when connected, otherwise through the whole graph (weak
/// radius).
fn cluster_radius(graph: &Graph, center: VertexId, members: &[VertexId]) -> usize {
    let mut set = netdecomp_graph::VertexSet::new(graph.vertex_count());
    for &v in members {
        set.insert(v);
    }
    if !set.contains(center) {
        // Defensive: a foreign center (cannot happen for core algorithms)
        // falls back to weak distances.
        let dist = bfs::distances(graph, center);
        return members
            .iter()
            .map(|&v| dist[v].unwrap_or(0))
            .max()
            .unwrap_or(0);
    }
    let dist = bfs::distances_restricted(graph, center, &set);
    if members.iter().all(|&v| dist[v].is_some()) {
        members
            .iter()
            .map(|&v| dist[v].expect("checked"))
            .max()
            .unwrap_or(0)
    } else {
        let dist = bfs::distances(graph, center);
        members
            .iter()
            .map(|&v| dist[v].unwrap_or(0))
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netdecomp_core::{basic, params::DecompositionParams};
    use netdecomp_graph::{generators, Partition};

    #[test]
    fn sweep_visits_every_cluster_once_in_block_order() {
        let g = generators::grid2d(6, 6);
        let params = DecompositionParams::new(3, 4.0).unwrap();
        let outcome = basic::decompose(&g, &params, 8).unwrap();
        let d = outcome.decomposition();
        let mut seen_clusters = Vec::new();
        let mut last_block = 0usize;
        let cost = sweep(&g, d, |block, c, members| {
            assert!(block >= last_block, "blocks must be non-decreasing");
            last_block = block;
            assert!(!members.is_empty());
            seen_clusters.push(c);
        })
        .unwrap();
        seen_clusters.sort_unstable();
        assert_eq!(seen_clusters, (0..d.cluster_count()).collect::<Vec<_>>());
        assert_eq!(cost.classes, d.block_count());
        assert!(cost.rounds >= cost.classes);
    }

    #[test]
    fn cost_is_linear_in_classes_for_singletons() {
        // Singleton clusters: radius 0, so each class costs exactly 1 round.
        let g = generators::complete(5);
        let d = netdecomp_baselines::trivial::singletons(&g);
        let cost = sweep(&g, &d, |_, _, _| {}).unwrap();
        assert_eq!(cost.classes, 5);
        assert_eq!(cost.rounds, 5);
    }

    #[test]
    fn mismatch_is_rejected() {
        let g = generators::path(3);
        let p = Partition::singletons(4);
        let d =
            netdecomp_core::NetworkDecomposition::from_parts(p, vec![0, 1, 2, 3], vec![0, 1, 2, 3]);
        assert!(matches!(
            sweep(&g, &d, |_, _, _| {}),
            Err(DecompError::GraphMismatch { .. })
        ));
    }

    #[test]
    fn radius_of_disconnected_cluster_uses_weak_distances() {
        // Star: cluster {1, 2} with center 1 is disconnected; weak radius 2.
        let g = generators::star(4);
        assert_eq!(cluster_radius(&g, 1, &[1, 2]), 2);
        // Connected cluster {0, 1}: radius 1.
        assert_eq!(cluster_radius(&g, 0, &[0, 1]), 1);
    }
}

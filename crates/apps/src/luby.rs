//! Luby's randomized maximal independent set — the direct distributed
//! algorithm the decomposition-based route is compared against.
//!
//! Each round every undecided vertex draws a random priority; a vertex
//! whose priority strictly exceeds all undecided neighbors' joins the MIS,
//! and its neighbors leave as non-members. Terminates in `O(log n)` rounds
//! with high probability.

use netdecomp_core::shift::uniform;
use netdecomp_graph::Graph;

/// Result of a Luby run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LubyResult {
    /// Membership flags, indexed by vertex.
    pub in_mis: Vec<bool>,
    /// Synchronous rounds until every vertex was decided.
    pub rounds: usize,
}

/// Runs Luby's algorithm on `graph` with deterministic per-round
/// randomness derived from `seed`.
///
/// # Example
///
/// ```
/// use netdecomp_apps::{luby, verify};
/// use netdecomp_graph::generators;
///
/// let g = generators::cycle(20);
/// let result = luby::solve(&g, 4);
/// assert!(verify::is_maximal_independent_set(&g, &result.in_mis));
/// ```
#[must_use]
pub fn solve(graph: &Graph, seed: u64) -> LubyResult {
    let n = graph.vertex_count();
    let mut decided = vec![false; n];
    let mut in_mis = vec![false; n];
    let mut rounds = 0usize;
    let mut undecided = n;

    while undecided > 0 {
        let round_tag = rounds as u64;
        rounds += 1;
        // Priorities for undecided vertices; ties broken by id (uniform
        // f64 collisions are measure zero but ids make it airtight).
        let priority =
            |v: usize| -> (f64, usize) { (uniform(seed ^ 0x4C55_4259, round_tag, v), v) };
        let mut joining: Vec<usize> = Vec::new();
        for v in 0..n {
            if decided[v] {
                continue;
            }
            let pv = priority(v);
            let is_local_max = graph
                .neighbors(v)
                .iter()
                .filter(|&&u| !decided[u])
                .all(|&u| priority(u) < pv);
            if is_local_max {
                joining.push(v);
            }
        }
        for &v in &joining {
            in_mis[v] = true;
            decided[v] = true;
            undecided -= 1;
            for &u in graph.neighbors(v) {
                if !decided[u] {
                    decided[u] = true;
                    undecided -= 1;
                }
            }
        }
    }
    LubyResult { in_mis, rounds }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify;
    use netdecomp_graph::generators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn luby_mis_is_maximal_on_families() {
        let mut rng = StdRng::seed_from_u64(5);
        let graphs = [
            generators::path(25),
            generators::cycle(26),
            generators::grid2d(7, 7),
            generators::complete(11),
            generators::gnp(100, 0.06, &mut rng).unwrap(),
        ];
        for (i, g) in graphs.iter().enumerate() {
            for seed in 0..3u64 {
                let r = solve(g, seed);
                assert!(
                    verify::is_maximal_independent_set(g, &r.in_mis),
                    "graph {i} seed {seed}"
                );
            }
        }
    }

    #[test]
    fn rounds_grow_slowly() {
        // O(log n) w.h.p.: allow a generous constant.
        let mut rng = StdRng::seed_from_u64(8);
        let g = generators::gnp(500, 0.02, &mut rng).unwrap();
        let r = solve(&g, 1);
        assert!(
            r.rounds <= 8 * (500f64).ln().ceil() as usize,
            "rounds = {}",
            r.rounds
        );
    }

    #[test]
    fn empty_graph_takes_one_round() {
        let g = Graph::empty(4);
        let r = solve(&g, 0);
        assert!(r.in_mis.iter().all(|&b| b));
        assert_eq!(r.rounds, 1);
    }

    #[test]
    fn zero_vertices() {
        let g = Graph::empty(0);
        let r = solve(&g, 0);
        assert_eq!(r.rounds, 0);
        assert!(r.in_mis.is_empty());
    }

    #[test]
    fn deterministic_under_seed() {
        let g = generators::grid2d(5, 5);
        assert_eq!(solve(&g, 7), solve(&g, 7));
    }
}

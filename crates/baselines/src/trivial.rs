//! Degenerate baselines anchoring the ends of the (D, χ) tradeoff.

use netdecomp_core::NetworkDecomposition;
use netdecomp_graph::{coloring, components, Graph, Partition};

/// The `(0, χ_greedy)` decomposition: every vertex its own cluster, colored
/// by a greedy proper coloring of `G` itself (at most `Δ + 1` colors).
///
/// This is the "network decomposition generalizes vertex coloring" end of
/// the spectrum from the paper's introduction.
#[must_use]
pub fn singletons(graph: &Graph) -> NetworkDecomposition {
    let n = graph.vertex_count();
    let partition = Partition::singletons(n);
    let colors = coloring::greedy(graph);
    let blocks = colors.colors().to_vec();
    let centers = (0..n).collect();
    NetworkDecomposition::from_parts(partition, blocks, centers)
}

/// The `(diam(G), 1)` decomposition: one cluster per connected component,
/// all in a single block.
#[must_use]
pub fn whole_components(graph: &Graph) -> NetworkDecomposition {
    let comps = components::components(graph);
    let mut partition = Partition::new(graph.vertex_count());
    let mut centers = Vec::new();
    for group in comps.groups() {
        let center = group[0];
        partition.push_cluster(&group);
        centers.push(center);
    }
    let blocks = vec![0; partition.cluster_count()];
    NetworkDecomposition::from_parts(partition, blocks, centers)
}

#[cfg(test)]
mod tests {
    use super::*;
    use netdecomp_core::verify;
    use netdecomp_graph::generators;

    #[test]
    fn singletons_is_valid_zero_diameter() {
        let g = generators::cycle(7);
        let d = singletons(&g);
        let r = verify::verify(&g, &d).unwrap();
        assert!(r.is_valid_strong(0));
        assert!(r.color_count <= g.max_degree() + 1);
        assert_eq!(r.cluster_count, 7);
    }

    #[test]
    fn whole_components_is_one_color() {
        let g = generators::grid2d(4, 4);
        let d = whole_components(&g);
        let r = verify::verify(&g, &d).unwrap();
        assert_eq!(r.color_count, 1);
        assert_eq!(r.cluster_count, 1);
        assert_eq!(
            r.max_strong_diameter,
            netdecomp_graph::diameter::diameter(&g)
        );
        assert!(r.supergraph_properly_colored);
    }

    #[test]
    fn whole_components_on_disconnected_graph() {
        let g = Graph::from_edges(5, &[(0, 1), (2, 3)]).unwrap();
        let d = whole_components(&g);
        let r = verify::verify(&g, &d).unwrap();
        assert_eq!(r.cluster_count, 3);
        assert_eq!(r.color_count, 1);
        // Components are non-adjacent, so one block is proper.
        assert!(r.supergraph_properly_colored);
        assert!(r.clusters_connected);
    }
}

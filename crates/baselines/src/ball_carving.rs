//! Deterministic sequential ball carving (region growing).
//!
//! The textbook low-diameter decomposition: repeatedly pick the
//! smallest-id alive vertex and grow a BFS ball around it until the next
//! ring would grow the ball by less than a factor `1 + ε`; carve the ball
//! as a cluster. Every cluster has strong radius `O(log n / ln(1 + ε))` and
//! at most an `ε/(1+ε)` fraction of edges leave clusters (amortized).
//!
//! Useful as a deterministic, non-distributed reference point for the
//! (diameter, colors) tradeoff plots.

use netdecomp_core::DecompError;
use netdecomp_graph::{bfs, Graph, Partition, VertexId, VertexSet};

/// Result of ball carving.
#[derive(Debug, Clone, PartialEq)]
pub struct BallCarvingOutcome {
    /// The complete partition into carved balls.
    pub partition: Partition,
    /// The ball centers, indexed by cluster id.
    pub centers: Vec<VertexId>,
    /// The largest ball radius used.
    pub max_radius: usize,
}

/// Carves `graph` into low-diameter balls with growth parameter `epsilon`.
///
/// # Errors
///
/// [`DecompError::InvalidParameter`] unless `epsilon` is finite and
/// positive.
pub fn carve(graph: &Graph, epsilon: f64) -> Result<BallCarvingOutcome, DecompError> {
    if !epsilon.is_finite() || epsilon <= 0.0 {
        return Err(DecompError::InvalidParameter {
            name: "epsilon",
            reason: format!("growth parameter must be finite and positive, got {epsilon}"),
        });
    }
    let n = graph.vertex_count();
    let mut alive = VertexSet::full(n);
    let mut partition = Partition::new(n);
    let mut centers = Vec::new();
    let mut max_radius = 0usize;

    while let Some(center) = alive.iter().next() {
        // Grow the ball ring by ring until growth stalls.
        let dist = bfs::distances_restricted(graph, center, &alive);
        let mut ring_counts: Vec<usize> = Vec::new();
        for v in alive.iter() {
            if let Some(d) = dist[v] {
                if d >= ring_counts.len() {
                    ring_counts.resize(d + 1, 0);
                }
                ring_counts[d] += 1;
            }
        }
        let mut radius = 0usize;
        let mut inside = ring_counts[0];
        while radius + 1 < ring_counts.len() {
            let next_ring = ring_counts[radius + 1];
            if (next_ring as f64) < epsilon * inside as f64 {
                break;
            }
            radius += 1;
            inside += next_ring;
        }
        max_radius = max_radius.max(radius);
        let members: Vec<VertexId> = alive
            .iter()
            .filter(|&v| dist[v].is_some_and(|d| d <= radius))
            .collect();
        partition.push_cluster(&members);
        centers.push(center);
        for &v in &members {
            alive.remove(v);
        }
    }

    Ok(BallCarvingOutcome {
        partition,
        centers,
        max_radius,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use netdecomp_graph::{diameter, generators};

    #[test]
    fn carving_is_complete_and_connected() {
        let g = generators::grid2d(9, 9);
        let outcome = carve(&g, 0.5).unwrap();
        assert!(outcome.partition.is_complete());
        for c in 0..outcome.partition.cluster_count() {
            let members = outcome.partition.cluster_set(c);
            assert!(
                diameter::strong_diameter(&g, &members).is_some(),
                "ball {c} disconnected"
            );
        }
    }

    #[test]
    fn radius_bounds_diameter() {
        let g = generators::cycle(64);
        let outcome = carve(&g, 0.3).unwrap();
        for c in 0..outcome.partition.cluster_count() {
            let members = outcome.partition.cluster_set(c);
            let d = diameter::strong_diameter(&g, &members).unwrap();
            assert!(d <= 2 * outcome.max_radius, "cluster {c} diameter {d}");
        }
    }

    #[test]
    fn small_epsilon_gives_few_big_balls() {
        let g = generators::grid2d(10, 10);
        let few = carve(&g, 0.01).unwrap().partition.cluster_count();
        let many = carve(&g, 10.0).unwrap().partition.cluster_count();
        assert!(few < many, "few={few} many={many}");
        // epsilon huge: nothing ever grows, every ball is radius 0.
        assert_eq!(many, 100);
    }

    #[test]
    fn invalid_epsilon_rejected() {
        let g = generators::path(3);
        assert!(carve(&g, 0.0).is_err());
        assert!(carve(&g, f64::NAN).is_err());
    }

    #[test]
    fn disconnected_graph_handled() {
        let g = Graph::empty(4);
        let outcome = carve(&g, 0.5).unwrap();
        assert_eq!(outcome.partition.cluster_count(), 4);
        assert_eq!(outcome.max_radius, 0);
    }
}

//! Baseline decomposition and partition algorithms the paper compares
//! against or builds upon.
//!
//! - [`linial_saks`] — the classical randomized **weak**-diameter network
//!   decomposition of Linial & Saks (Combinatorica 1993). Its clusters can
//!   be disconnected in their induced subgraphs — the very gap the
//!   Elkin–Neiman algorithm in `netdecomp-core` closes.
//! - [`mpx`] — the Miller–Peng–Xu (SPAA 2013) one-shot padded partition
//!   from random exponential shifts: strong diameter `O(log n / β)`, cut
//!   fraction `O(β)`. The paper's "shifted shortest path" technique comes
//!   from here.
//! - [`ball_carving`] — deterministic sequential region-growing, the
//!   textbook low-diameter decomposition, as a non-randomized reference.
//! - [`trivial`] — degenerate baselines (singleton clusters, one cluster
//!   per component) anchoring the two ends of the (D, χ) tradeoff.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod ball_carving;
pub mod linial_saks;
pub mod mpx;
pub mod trivial;

use netdecomp_core::NetworkDecomposition;
use netdecomp_graph::{coloring, contraction, Graph, Partition, VertexId};

/// Wraps a complete partition as a [`NetworkDecomposition`] by greedily
/// coloring its supergraph (blocks = greedy colors).
///
/// This gives partition-producing baselines (MPX, ball carving) a uniform
/// decomposition interface so `netdecomp_core::verify` applies to them.
///
/// # Panics
///
/// Panics if `partition` does not cover every vertex of `g` (baselines
/// always produce complete partitions).
#[must_use]
pub fn decomposition_via_greedy_coloring(
    g: &Graph,
    partition: Partition,
    centers: Vec<VertexId>,
) -> NetworkDecomposition {
    partition
        .require_complete()
        .expect("baseline partitions are complete");
    let contraction = contraction::contract(g, &partition).expect("partition matches graph");
    let colors = coloring::greedy(contraction.supergraph());
    let blocks: Vec<usize> = (0..partition.cluster_count())
        .map(|c| colors.color(c))
        .collect();
    NetworkDecomposition::from_parts(partition, blocks, centers)
}

#[cfg(test)]
mod tests {
    use super::*;
    use netdecomp_graph::generators;

    #[test]
    fn greedy_wrapping_produces_proper_decomposition() {
        let g = generators::cycle(6);
        let mut p = Partition::new(6);
        p.push_cluster(&[0, 1]);
        p.push_cluster(&[2, 3]);
        p.push_cluster(&[4, 5]);
        let d = decomposition_via_greedy_coloring(&g, p, vec![0, 2, 4]);
        let report = netdecomp_core::verify::verify(&g, &d).unwrap();
        assert!(report.complete);
        assert!(report.supergraph_properly_colored);
        assert!(report.clusters_connected);
        // Supergraph is a triangle of clusters -> 3 colors.
        assert_eq!(report.color_count, 3);
    }

    #[test]
    #[should_panic(expected = "complete")]
    fn incomplete_partition_panics() {
        let g = generators::path(3);
        let mut p = Partition::new(3);
        p.push_cluster(&[0]);
        let _ = decomposition_via_greedy_coloring(&g, p, vec![0]);
    }
}

//! The Linial–Saks weak-diameter network decomposition (Combinatorica '93).
//!
//! Per phase, every alive vertex `v` draws a radius `r_v` from a truncated
//! geometric distribution and broadcasts `(ID_v, r_v)` to its
//! `r_v`-neighborhood in the current graph. Every vertex elects as its
//! candidate center the **smallest-ID** vertex whose broadcast covers it; it
//! joins the phase's block iff it is *strictly interior* to that center's
//! ball (`d < r_v`), otherwise it stays for later phases. Per-center sets
//! form the clusters; same-phase clusters are non-adjacent, so the phase
//! index properly colors the supergraph.
//!
//! The guarantee is only a **weak** diameter `≤ 2(k − 1)`: a cluster's
//! vertices are all within `k − 1` of its center *through the whole current
//! graph*, but the cluster's induced subgraph may be disconnected (its
//! connecting paths may elect a smaller-ID center). Quantifying how often
//! that happens — and that Elkin–Neiman never lets it happen — is experiment
//! E4 of this reproduction.

use bytes::Bytes;
use netdecomp_core::shift::uniform;
use netdecomp_core::{DecompError, NetworkDecomposition};
use netdecomp_graph::{bfs, Graph, Partition, VertexId, VertexSet};
use netdecomp_sim::wire::{WireReader, WireWriter};
use netdecomp_sim::{
    Codec, CongestLimit, Ctx, Engine, RunStats, Simulator, Snapshot, TransportFactory, Typed,
    TypedOutbox, TypedProtocol,
};
use serde::Serialize;

/// Parameters of the Linial–Saks algorithm.
///
/// `k` is the radius budget (weak diameter `≤ 2(k−1)`); `c > 1` scales the
/// phase budget like in the Elkin–Neiman theorems so the two algorithms are
/// compared at equal confidence.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct LinialSaksParams {
    k: usize,
    c: f64,
}

impl LinialSaksParams {
    /// Creates parameters.
    ///
    /// # Errors
    ///
    /// [`DecompError::InvalidParameter`] if `k < 2` (with radii truncated at
    /// `k − 1 = 0` no vertex is ever strictly interior, so the algorithm
    /// cannot make progress) or `c ≤ 1` or not finite.
    pub fn new(k: usize, c: f64) -> Result<Self, DecompError> {
        if k < 2 {
            return Err(DecompError::InvalidParameter {
                name: "k",
                reason: "must be at least 2 (k = 1 radii are always 0)".into(),
            });
        }
        if !c.is_finite() || c <= 1.0 {
            return Err(DecompError::InvalidParameter {
                name: "c",
                reason: format!("must be a finite value > 1, got {c}"),
            });
        }
        Ok(LinialSaksParams { k, c })
    }

    /// Headline configuration (`k = ⌈ln n⌉`, `c = 4`): the weak
    /// `(O(log n), O(log n))` decomposition in `O(log² n)` time.
    #[must_use]
    pub fn for_graph_size(n: usize) -> Self {
        let k = ((n.max(2) as f64).ln().ceil() as usize).max(1);
        LinialSaksParams { k, c: 4.0 }
    }

    /// The radius budget `k`.
    #[must_use]
    pub fn k(&self) -> usize {
        self.k
    }

    /// The confidence scale `c`.
    #[must_use]
    pub fn c(&self) -> f64 {
        self.c
    }

    /// Geometric success parameter `p = (cn)^{−1/k}`.
    #[must_use]
    pub fn p(&self, n: usize) -> f64 {
        (self.c * n.max(1) as f64).powf(-1.0 / self.k as f64)
    }

    /// Phase budget `⌈(cn)^{1/k}·ln(cn)⌉` — the color bound.
    #[must_use]
    pub fn phase_budget(&self, n: usize) -> usize {
        let cn = self.c * n.max(1) as f64;
        (cn.powf(1.0 / self.k as f64) * cn.ln()).ceil() as usize
    }

    /// The weak-diameter bound `2(k − 1)`.
    #[must_use]
    pub fn weak_diameter_bound(&self) -> usize {
        2 * (self.k - 1)
    }

    /// Rounds per phase in the distributed model: `O(k)` (broadcast out and
    /// decisions back).
    #[must_use]
    pub fn rounds_per_phase(&self) -> usize {
        self.k
    }

    /// Samples the truncated geometric radius for `(seed, phase, vertex)`:
    /// `Pr[r = j] = (1−p)·pʲ` for `j < k−1`, all remaining mass on `k−1`.
    #[must_use]
    pub fn radius(&self, n: usize, seed: u64, phase: u64, v: VertexId) -> usize {
        let p = self.p(n);
        let u = uniform(seed ^ 0x4C53_3933, phase, v); // distinct stream tag "LS93"
                                                       // r = floor(ln(1-u)/ln p) has Pr[r >= j] = p^j.
        let r = ((1.0 - u).ln() / p.ln()).floor();
        (r as usize).min(self.k - 1)
    }
}

/// Result of a Linial–Saks run.
#[derive(Debug, Clone, PartialEq)]
pub struct LinialSaksOutcome {
    /// The decomposition (blocks = phases). Clusters may be *disconnected*;
    /// only their weak diameter is bounded.
    pub decomposition: NetworkDecomposition,
    /// Phases executed until exhaustion.
    pub phases_used: usize,
    /// The budget the parameters promise.
    pub phase_budget: usize,
}

impl LinialSaksOutcome {
    /// `true` if the run finished within its phase budget.
    #[must_use]
    pub fn exhausted_within_budget(&self) -> bool {
        self.phases_used <= self.phase_budget
    }
}

/// Runs the Linial–Saks algorithm to completion.
///
/// # Errors
///
/// Currently infallible for validated parameters; returns `Result` for
/// signature uniformity with the core algorithms.
pub fn decompose(
    graph: &Graph,
    params: &LinialSaksParams,
    seed: u64,
) -> Result<LinialSaksOutcome, DecompError> {
    let n = graph.vertex_count();
    let mut alive = VertexSet::full(n);
    let mut partition = Partition::new(n);
    let mut blocks: Vec<usize> = Vec::new();
    let mut centers: Vec<VertexId> = Vec::new();
    let budget = params.phase_budget(n);
    let hard_max = budget.saturating_mul(64).saturating_add(1024);

    let mut phase = 0usize;
    while !alive.is_empty() && phase < hard_max {
        // Sample radii for alive vertices.
        let mut radii = vec![0usize; n];
        for v in alive.iter() {
            radii[v] = params.radius(n, seed, phase as u64, v);
        }
        // Min-ID election: process centers in increasing id; claim unclaimed
        // vertices in their ball.
        let mut elected: Vec<Option<(VertexId, usize)>> = vec![None; n]; // (center, dist)
        for v in alive.iter() {
            // v's ball claims every unclaimed alive vertex within radii[v].
            for (x, d) in bfs::ball_restricted(graph, v, radii[v], &alive) {
                if elected[x].is_none() {
                    elected[x] = Some((v, d));
                }
            }
        }
        // Interior vertices join the block, grouped by center.
        let mut members_of: std::collections::BTreeMap<VertexId, Vec<VertexId>> =
            std::collections::BTreeMap::new();
        for x in alive.iter() {
            if let Some((center, d)) = elected[x] {
                if d < radii[center] {
                    members_of.entry(center).or_default().push(x);
                }
            }
        }
        for (center, members) in members_of {
            partition.push_cluster(&members);
            blocks.push(phase);
            centers.push(center);
            for &x in &members {
                alive.remove(x);
            }
        }
        phase += 1;
    }

    let decomposition = NetworkDecomposition::from_parts(partition, blocks, centers);
    Ok(LinialSaksOutcome {
        decomposition,
        phases_used: phase,
        phase_budget: budget,
    })
}

/// One broadcast entry in the distributed protocol: `(id, r, dist)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct LsLabel {
    id: VertexId,
    r: usize,
    dist: usize,
}

impl LsLabel {
    fn remaining(&self) -> usize {
        self.r.saturating_sub(self.dist)
    }

    /// `self` makes `other` useless at and below the holder: smaller (or
    /// equal) id with at least the remaining range.
    fn dominates(&self, other: &LsLabel) -> bool {
        self.id <= other.id && self.remaining() >= other.remaining()
    }
}

/// Per-vertex protocol state for one Linial–Saks phase.
#[derive(Debug)]
struct LsNode {
    alive: bool,
    radius: usize,
    /// Pareto frontier of known labels: for each remaining-range value the
    /// smallest id (at most `k` entries).
    known: Vec<LsLabel>,
}

impl LsNode {
    fn offer(&mut self, label: LsLabel) -> bool {
        if self.known.iter().any(|k| k.dominates(&label)) {
            return false;
        }
        self.known.retain(|k| !label.dominates(k));
        self.known.push(label);
        true
    }

    /// The elected (minimum-id) coverer and whether this vertex is interior
    /// to it.
    fn election(&self) -> Option<(VertexId, bool)> {
        self.known
            .iter()
            .min_by_key(|l| l.id)
            .map(|l| (l.id, l.dist < l.r))
    }
}

/// Wire format of an [`LsLabel`]: `(id: u32, r: u16, dist: u16)` — 8 bytes,
/// one CONGEST word. The sender pre-increments `dist` for the receiver.
#[derive(Debug, Clone, Copy)]
struct LsCodec;

impl Codec for LsCodec {
    type Msg = LsLabel;

    fn encode(label: &LsLabel) -> Bytes {
        WireWriter::new()
            .u32(label.id as u32)
            .u16(label.r as u16)
            .u16((label.dist + 1) as u16)
            .finish()
    }

    fn decode(payload: &[u8]) -> Option<LsLabel> {
        let mut r = WireReader::new(payload);
        let id = r.u32()? as VertexId;
        let radius = r.u16()? as usize;
        let dist = r.u16()? as usize;
        r.is_exhausted().then_some(LsLabel {
            id,
            r: radius,
            dist,
        })
    }
}

/// Round-boundary serialization for checkpoint/restore: `alive` and the
/// label frontier (in kept order — `offer`'s retain/push order is part
/// of the state); `radius` is construction-time configuration a seeded
/// rebuild re-derives bit-identically.
impl Snapshot for LsNode {
    fn save_state(&self) -> Bytes {
        let mut w = WireWriter::new()
            .u16(u16::from(self.alive))
            .u32(self.known.len() as u32);
        for label in &self.known {
            w = w
                .u32(label.id as u32)
                .u16(label.r as u16)
                .u16(label.dist as u16);
        }
        w.finish()
    }

    fn load_state(&mut self, bytes: &[u8]) -> bool {
        let mut r = WireReader::new(bytes);
        let Some(alive) = r.u16() else {
            return false;
        };
        let Some(count) = r.u32() else {
            return false;
        };
        // Each label consumes 8 bytes; an absurd count can't be genuine.
        if count as usize > bytes.len() / 8 {
            return false;
        }
        let mut known = Vec::with_capacity(count as usize);
        for _ in 0..count {
            let (Some(id), Some(radius), Some(dist)) = (r.u32(), r.u16(), r.u16()) else {
                return false;
            };
            known.push(LsLabel {
                id: id as VertexId,
                r: radius as usize,
                dist: dist as usize,
            });
        }
        if !r.is_exhausted() {
            return false;
        }
        self.alive = alive != 0;
        self.known = known;
        true
    }
}

impl TypedProtocol for LsNode {
    type Codec = LsCodec;

    fn start(&mut self, ctx: &Ctx<'_>, out: &mut TypedOutbox<'_, LsCodec>) {
        if !self.alive {
            return;
        }
        let own = LsLabel {
            id: ctx.id,
            r: self.radius,
            dist: 0,
        };
        self.offer(own);
        if own.dist < own.r {
            out.broadcast(&own);
        }
    }

    fn round(
        &mut self,
        _ctx: &Ctx<'_>,
        incoming: &[(VertexId, LsLabel)],
        out: &mut TypedOutbox<'_, LsCodec>,
    ) {
        if !self.alive {
            return;
        }
        for &(_, label) in incoming {
            if self.offer(label) && label.dist < label.r {
                out.broadcast(&label);
            }
        }
    }

    fn is_halted(&self) -> bool {
        true
    }
}

/// Runs Linial–Saks by actual message passing, returning the outcome and
/// the communication bill. Bit-identical to [`decompose`] under equal
/// seeds (the election and interior tests coincide; tested below).
///
/// Messages are `(id u32, r u16, dist u16)` = 8 bytes; a vertex relays a
/// label only if no known label has both a smaller id and at least its
/// remaining range, so at most `k` labels survive per vertex.
///
/// `engine` selects the simulator's round scheduler; like the
/// Elkin–Neiman driver, the outcome is bit-identical across every
/// `(threads, shards)` configuration.
///
/// # Errors
///
/// [`DecompError::Simulation`] if `limit` is violated.
pub fn decompose_distributed(
    graph: &Graph,
    params: &LinialSaksParams,
    seed: u64,
    limit: CongestLimit,
    engine: Engine,
) -> Result<(LinialSaksOutcome, RunStats), DecompError> {
    decompose_distributed_with_transport(graph, params, seed, limit, engine, None)
}

/// [`decompose_distributed`] with a custom delivery transport: when
/// `transport` is set and `engine` is [`Engine::Framed`], every phase's
/// simulator ships its frames through `factory.build(shard_count)` —
/// the hook that runs the baseline over sockets or a fault-injecting
/// fabric. Ignored for non-framed engines (nothing would be routed
/// through it). Outcomes stay bit-identical to the in-process backends
/// for any transport that delivers faithfully.
///
/// # Errors
///
/// [`DecompError::Simulation`] if `limit` is violated or the transport
/// fails (timeout, disconnect, corruption — a typed
/// [`netdecomp_sim::SimError`], never a hang).
pub fn decompose_distributed_with_transport(
    graph: &Graph,
    params: &LinialSaksParams,
    seed: u64,
    limit: CongestLimit,
    engine: Engine,
    transport: Option<&TransportFactory>,
) -> Result<(LinialSaksOutcome, RunStats), DecompError> {
    let n = graph.vertex_count();
    let mut alive = VertexSet::full(n);
    let mut partition = Partition::new(n);
    let mut blocks: Vec<usize> = Vec::new();
    let mut centers: Vec<VertexId> = Vec::new();
    let budget = params.phase_budget(n);
    let hard_max = budget.saturating_mul(64).saturating_add(1024);
    let mut comm = RunStats::default();

    let mut phase = 0usize;
    while !alive.is_empty() && phase < hard_max {
        let mut radii = vec![0usize; n];
        for v in alive.iter() {
            radii[v] = params.radius(n, seed, phase as u64, v);
        }
        let mut sim = Simulator::new(graph, |id, _| {
            Typed::new(LsNode {
                alive: alive.contains(id),
                radius: radii[id],
                known: Vec::new(),
            })
        })
        .with_limit(limit)
        .with_engine(engine);
        if let Some(factory) = transport {
            if matches!(engine, Engine::Framed { .. }) {
                let shards = sim.shard_plan().count();
                sim = sim.with_transport(factory.build(shards));
            }
        }
        // Radii are at most k-1, so k engine steps deliver everything.
        comm.merge(&sim.run_rounds(params.k())?);

        let mut members_of: std::collections::BTreeMap<VertexId, Vec<VertexId>> =
            std::collections::BTreeMap::new();
        for y in alive.iter() {
            if let Some((center, interior)) = sim.nodes()[y].inner.election() {
                if interior {
                    members_of.entry(center).or_default().push(y);
                }
            }
        }
        for (center, members) in members_of {
            partition.push_cluster(&members);
            blocks.push(phase);
            centers.push(center);
            for &x in &members {
                alive.remove(x);
            }
        }
        phase += 1;
    }

    let decomposition = NetworkDecomposition::from_parts(partition, blocks, centers);
    Ok((
        LinialSaksOutcome {
            decomposition,
            phases_used: phase,
            phase_budget: budget,
        },
        comm,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use netdecomp_core::verify;
    use netdecomp_graph::generators;

    #[test]
    fn params_validate() {
        assert!(LinialSaksParams::new(0, 4.0).is_err());
        assert!(LinialSaksParams::new(1, 4.0).is_err());
        assert!(LinialSaksParams::new(3, 1.0).is_err());
        assert!(LinialSaksParams::new(3, f64::NAN).is_err());
        assert!(LinialSaksParams::new(3, 2.0).is_ok());
    }

    #[test]
    fn radius_is_truncated_and_deterministic() {
        let p = LinialSaksParams::new(4, 4.0).unwrap();
        for v in 0..500 {
            let r = p.radius(1000, 7, 3, v);
            assert!(r <= 3, "radius {r} exceeds k-1");
            assert_eq!(r, p.radius(1000, 7, 3, v));
        }
    }

    #[test]
    fn radius_distribution_is_geometric() {
        // Pr[r >= 1] = p = (cn)^{-1/k}.
        let params = LinialSaksParams::new(3, 4.0).unwrap();
        let n = 100;
        let p = params.p(n);
        let trials = 60_000;
        let hits = (0..trials)
            .filter(|&t| params.radius(n, 11, t as u64, 0) >= 1)
            .count() as f64
            / trials as f64;
        assert!((hits - p).abs() < 0.01, "Pr[r>=1] = {hits}, expected {p}");
    }

    #[test]
    fn produces_complete_weak_decomposition() {
        let g = generators::grid2d(8, 8);
        let params = LinialSaksParams::new(3, 4.0).unwrap();
        let outcome = decompose(&g, &params, 5).unwrap();
        let report = verify::verify(&g, &outcome.decomposition).unwrap();
        assert!(report.complete);
        assert!(report.supergraph_properly_colored);
        assert!(report
            .max_weak_diameter
            .is_some_and(|d| d <= params.weak_diameter_bound()));
    }

    #[test]
    fn weak_bound_holds_across_families_and_seeds() {
        let graphs = [
            generators::cycle(40),
            generators::caveman(4, 6).unwrap(),
            generators::star(30),
        ];
        for (i, g) in graphs.iter().enumerate() {
            for seed in 0..3u64 {
                let params = LinialSaksParams::new(3, 4.0).unwrap();
                let outcome = decompose(g, &params, seed).unwrap();
                let report = verify::verify(g, &outcome.decomposition).unwrap();
                assert!(report.complete, "graph {i} seed {seed}");
                assert!(
                    report.is_valid_weak(params.weak_diameter_bound()),
                    "graph {i} seed {seed}: {report:?}"
                );
            }
        }
    }

    #[test]
    fn clusters_can_be_disconnected() {
        // The motivating gap: over enough seeds, some LS cluster is
        // disconnected in its induced subgraph (strong diameter infinite).
        // Interior members at distance >= 2 require radius >= 3, so use a
        // generous k and a graph with many overlapping balls.
        let mut saw_disconnected = false;
        let g = generators::grid2d(8, 8);
        for seed in 0..200u64 {
            let params = LinialSaksParams::new(6, 2.0).unwrap();
            let outcome = decompose(&g, &params, seed).unwrap();
            let report = verify::verify(&g, &outcome.decomposition).unwrap();
            if !report.clusters_connected {
                saw_disconnected = true;
                break;
            }
        }
        assert!(
            saw_disconnected,
            "LS93 never produced a disconnected cluster in 200 runs"
        );
    }

    #[test]
    fn k_equals_two_gives_stars() {
        // k = 2: radii in {0, 1}; interior members are at distance 0 or...
        // < r <= 1, so every cluster is a star around its center: weak
        // diameter <= 2 and clusters are connected.
        let g = generators::cycle(10);
        let params = LinialSaksParams::new(2, 4.0).unwrap();
        let outcome = decompose(&g, &params, 2).unwrap();
        let report = verify::verify(&g, &outcome.decomposition).unwrap();
        assert!(report.complete);
        assert!(report.clusters_connected);
        assert!(report.max_weak_diameter.is_some_and(|d| d <= 2));
    }

    #[test]
    fn deterministic_under_seed() {
        let g = generators::grid2d(5, 5);
        let params = LinialSaksParams::new(2, 4.0).unwrap();
        let a = decompose(&g, &params, 9).unwrap();
        let b = decompose(&g, &params, 9).unwrap();
        assert_eq!(a.decomposition, b.decomposition);
    }

    #[test]
    fn empty_graph() {
        let g = Graph::empty(0);
        let params = LinialSaksParams::new(2, 4.0).unwrap();
        let outcome = decompose(&g, &params, 1).unwrap();
        assert_eq!(outcome.phases_used, 0);
        assert_eq!(outcome.decomposition.cluster_count(), 0);
    }

    #[test]
    fn distributed_equals_centralized() {
        let graphs = [
            generators::grid2d(6, 6),
            generators::cycle(30),
            generators::caveman(5, 5).unwrap(),
        ];
        for (i, g) in graphs.iter().enumerate() {
            for seed in 0..3u64 {
                let params = LinialSaksParams::new(4, 4.0).unwrap();
                let central = decompose(g, &params, seed).unwrap();
                for engine in [
                    Engine::Sequential,
                    Engine::Parallel {
                        threads: 2,
                        shards: 4,
                    },
                    Engine::Framed {
                        threads: 2,
                        shards: 4,
                        transport: netdecomp_sim::FrameTransport::Loopback,
                    },
                    Engine::Framed {
                        threads: 1,
                        shards: 3,
                        transport: netdecomp_sim::FrameTransport::Channel,
                    },
                ] {
                    let (dist, comm) =
                        decompose_distributed(g, &params, seed, CongestLimit::Unlimited, engine)
                            .unwrap();
                    assert_eq!(
                        central.decomposition, dist.decomposition,
                        "graph {i} seed {seed} engine {engine:?}"
                    );
                    assert_eq!(central.phases_used, dist.phases_used);
                    assert!(comm.total_messages > 0);
                }
            }
        }
    }

    #[test]
    fn distributed_label_frontier_is_small() {
        // Messages are 8 bytes and at most k survive per vertex; per edge
        // per round at most k labels = 8k bytes.
        let g = generators::grid2d(7, 7);
        let params = LinialSaksParams::new(4, 4.0).unwrap();
        let (_, comm) = decompose_distributed(
            &g,
            &params,
            2,
            CongestLimit::PerEdgeBytes(8 * 4),
            Engine::Sequential,
        )
        .unwrap();
        assert!(comm.max_edge_bytes <= 32);
    }

    #[test]
    fn ls_label_domination_rules() {
        let a = LsLabel {
            id: 1,
            r: 3,
            dist: 0,
        }; // remaining 3
        let b = LsLabel {
            id: 5,
            r: 4,
            dist: 2,
        }; // remaining 2
        assert!(a.dominates(&b));
        assert!(!b.dominates(&a));
        // Larger remaining range with larger id: incomparable.
        let c = LsLabel {
            id: 9,
            r: 9,
            dist: 0,
        };
        assert!(!a.dominates(&c));
        assert!(!c.dominates(&a));
        let mut node = LsNode {
            alive: true,
            radius: 0,
            known: Vec::new(),
        };
        assert!(node.offer(b));
        assert!(node.offer(a)); // evicts b
        assert_eq!(node.known.len(), 1);
        assert!(node.offer(c)); // incomparable, coexists
        assert_eq!(node.known.len(), 2);
        assert!(!node.offer(b)); // dominated by a
    }
}

//! The Miller–Peng–Xu padded partition (SPAA 2013) from exponential shifts.
//!
//! Every vertex `u` draws `δ_u ~ EXP(β)`; every vertex `x` joins the cluster
//! of the vertex maximizing `δ_u − d(x, u)`. One shot, no phases: this is a
//! *partition* (every vertex assigned), not yet a decomposition. Guarantees:
//! clusters are connected with strong diameter `O(log n / β)` w.h.p., and
//! each edge is cut with probability `O(β)`.
//!
//! The Elkin–Neiman algorithm adapts exactly this shifted-shortest-path
//! rule, adding the `m₁ − m₂ > 1` margin to carve *blocks* usable as
//! supergraph colors. Reproducing MPX's own guarantees is experiment E10.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use netdecomp_core::shift::ShiftSource;
use netdecomp_core::DecompError;
use netdecomp_graph::{Graph, Partition, VertexId};
use serde::Serialize;

/// A padded partition with its shifts' rate.
#[derive(Debug, Clone, PartialEq)]
pub struct PaddedPartition {
    /// The partition (complete: every vertex belongs to a cluster).
    pub partition: Partition,
    /// Center of each cluster, indexed by cluster id.
    pub centers: Vec<VertexId>,
    /// The rate β the shifts were drawn with.
    pub beta: f64,
}

/// Measured properties of a padded partition (experiment E10's columns).
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct PaddedReport {
    /// Number of clusters.
    pub cluster_count: usize,
    /// Fraction of edges whose endpoints lie in different clusters.
    pub cut_fraction: f64,
    /// Maximum strong diameter over clusters (`None` if some cluster is
    /// disconnected — must not happen for MPX).
    pub max_strong_diameter: Option<usize>,
}

/// Builds the padded partition of `graph` with rate `beta`.
///
/// # Errors
///
/// [`DecompError::InvalidParameter`] unless `beta` is finite and positive.
pub fn padded_partition(
    graph: &Graph,
    beta: f64,
    seed: u64,
) -> Result<PaddedPartition, DecompError> {
    let n = graph.vertex_count();
    let source = ShiftSource::new(seed ^ 0x4D50_5831, beta)?; // stream tag "MPX1"
    let shifts: Vec<f64> = (0..n).map(|v| source.shift(0, v)).collect();

    // Single-label multi-source Dijkstra on keys delta_u - d, ties toward
    // the smaller origin id (a fixed consistent tie-break keeps clusters
    // connected).
    #[derive(Debug, Clone, Copy, PartialEq)]
    struct Label {
        value: f64,
        origin: VertexId,
        vertex: VertexId,
    }
    impl Eq for Label {}
    impl Ord for Label {
        fn cmp(&self, other: &Self) -> Ordering {
            self.value
                .total_cmp(&other.value)
                .then_with(|| other.origin.cmp(&self.origin))
                .then_with(|| other.vertex.cmp(&self.vertex))
        }
    }
    impl PartialOrd for Label {
        fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
            Some(self.cmp(other))
        }
    }

    let mut heap: BinaryHeap<Label> = BinaryHeap::new();
    let mut assigned: Vec<Option<VertexId>> = vec![None; n];
    for (v, &shift) in shifts.iter().enumerate() {
        heap.push(Label {
            value: shift,
            origin: v,
            vertex: v,
        });
    }
    while let Some(label) = heap.pop() {
        if assigned[label.vertex].is_some() {
            continue;
        }
        assigned[label.vertex] = Some(label.origin);
        for &z in graph.neighbors(label.vertex) {
            if assigned[z].is_none() {
                heap.push(Label {
                    value: label.value - 1.0,
                    origin: label.origin,
                    vertex: z,
                });
            }
        }
    }

    // Group by origin; origins become clusters in first-appearance order.
    let mut cluster_of_origin: std::collections::HashMap<VertexId, usize> =
        std::collections::HashMap::new();
    let mut raw = vec![None; n];
    let mut centers = Vec::new();
    for v in 0..n {
        let origin = assigned[v].expect("every vertex assigned");
        let next = cluster_of_origin.len();
        let c = *cluster_of_origin.entry(origin).or_insert(next);
        if c == centers.len() {
            centers.push(origin);
        }
        raw[v] = Some(c);
    }
    Ok(PaddedPartition {
        partition: Partition::from_assignment(raw),
        centers,
        beta,
    })
}

/// Measures the padded partition's guarantees on `graph`.
#[must_use]
pub fn report(graph: &Graph, padded: &PaddedPartition) -> PaddedReport {
    let partition = &padded.partition;
    let mut cut = 0usize;
    let mut total = 0usize;
    for (u, v) in graph.edges() {
        total += 1;
        if partition.cluster_of(u) != partition.cluster_of(v) {
            cut += 1;
        }
    }
    let mut max_diam: Option<usize> = Some(0);
    for c in 0..partition.cluster_count() {
        let members = partition.cluster_set(c);
        match (
            max_diam,
            netdecomp_graph::diameter::strong_diameter(graph, &members),
        ) {
            (Some(best), Some(d)) => max_diam = Some(best.max(d)),
            _ => max_diam = None,
        }
    }
    PaddedReport {
        cluster_count: partition.cluster_count(),
        cut_fraction: if total == 0 {
            0.0
        } else {
            cut as f64 / total as f64
        },
        max_strong_diameter: max_diam,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netdecomp_graph::generators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn partition_is_complete_and_connected() {
        let mut rng = StdRng::seed_from_u64(2);
        let g = generators::gnp(150, 0.05, &mut rng).unwrap();
        let padded = padded_partition(&g, 0.4, 7).unwrap();
        assert!(padded.partition.is_complete());
        let r = report(&g, &padded);
        assert!(
            r.max_strong_diameter.is_some(),
            "MPX clusters must be connected"
        );
    }

    #[test]
    fn clusters_connected_across_families_and_seeds() {
        let graphs = [
            generators::grid2d(8, 8),
            generators::cycle(50),
            generators::caveman(5, 6).unwrap(),
        ];
        for (i, g) in graphs.iter().enumerate() {
            for seed in 0..5u64 {
                let padded = padded_partition(g, 0.5, seed).unwrap();
                let r = report(g, &padded);
                assert!(
                    r.max_strong_diameter.is_some(),
                    "disconnected MPX cluster: graph {i} seed {seed}"
                );
            }
        }
    }

    #[test]
    fn higher_beta_cuts_more_edges() {
        // Cut fraction grows with beta (more, smaller clusters). Average
        // over seeds for stability.
        let g = generators::grid2d(12, 12);
        let avg_cut = |beta: f64| -> f64 {
            (0..8u64)
                .map(|s| report(&g, &padded_partition(&g, beta, s).unwrap()).cut_fraction)
                .sum::<f64>()
                / 8.0
        };
        let low = avg_cut(0.05);
        let high = avg_cut(0.8);
        assert!(
            low < high,
            "cut fraction did not grow with beta: {low} vs {high}"
        );
    }

    #[test]
    fn diameter_shrinks_with_beta() {
        let g = generators::cycle(200);
        let diam = |beta: f64| -> usize {
            (0..5u64)
                .map(|s| {
                    report(&g, &padded_partition(&g, beta, s).unwrap())
                        .max_strong_diameter
                        .unwrap()
                })
                .max()
                .unwrap()
        };
        let coarse = diam(0.02);
        let fine = diam(1.0);
        assert!(
            fine < coarse,
            "diameter did not shrink: beta=1.0 gives {fine}, beta=0.02 gives {coarse}"
        );
    }

    #[test]
    fn beta_validation() {
        let g = generators::path(3);
        assert!(padded_partition(&g, 0.0, 1).is_err());
        assert!(padded_partition(&g, -2.0, 1).is_err());
    }

    #[test]
    fn single_vertex_graph() {
        let g = Graph::empty(1);
        let padded = padded_partition(&g, 0.5, 1).unwrap();
        assert_eq!(padded.partition.cluster_count(), 1);
        let r = report(&g, &padded);
        assert_eq!(r.cut_fraction, 0.0);
        assert_eq!(r.max_strong_diameter, Some(0));
    }

    #[test]
    fn deterministic_under_seed() {
        let g = generators::grid2d(6, 6);
        let a = padded_partition(&g, 0.3, 11).unwrap();
        let b = padded_partition(&g, 0.3, 11).unwrap();
        assert_eq!(a.partition, b.partition);
    }
}

//! Property-based tests for the baseline algorithms on arbitrary graphs.

use proptest::prelude::*;

use netdecomp_baselines::{ball_carving, linial_saks, mpx};
use netdecomp_core::verify;
use netdecomp_graph::{diameter, Graph, GraphBuilder};

fn arb_graph(max_n: usize) -> impl Strategy<Value = Graph> {
    (4usize..=max_n).prop_flat_map(|n| {
        proptest::collection::vec((0..n, 0..n), 0..(2 * n)).prop_map(move |pairs| {
            let mut b = GraphBuilder::new(n);
            for (u, v) in pairs {
                if u != v {
                    b.add_edge(u, v).expect("in range");
                }
            }
            b.build()
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn linial_saks_is_complete_weak_and_proper(
        g in arb_graph(40),
        k in 2usize..5,
        seed in 0u64..500,
    ) {
        let p = linial_saks::LinialSaksParams::new(k, 4.0).expect("valid");
        let o = linial_saks::decompose(&g, &p, seed).expect("runs");
        let r = verify::verify(&g, &o.decomposition).expect("same graph");
        prop_assert!(r.complete);
        prop_assert!(r.supergraph_properly_colored);
        prop_assert!(r.is_valid_weak(p.weak_diameter_bound()), "{r:?}");
    }

    #[test]
    fn linial_saks_distributed_matches_centralized(
        g in arb_graph(24),
        seed in 0u64..100,
    ) {
        let p = linial_saks::LinialSaksParams::new(3, 4.0).expect("valid");
        let central = linial_saks::decompose(&g, &p, seed).expect("runs");
        let (dist, _) = linial_saks::decompose_distributed(
            &g,
            &p,
            seed,
            netdecomp_sim::CongestLimit::Unlimited,
            // shards: 0 resolves from NETDECOMP_SHARDS (set by a CI matrix
            // entry) and falls back to the thread count.
            netdecomp_sim::Engine::Parallel {
                threads: 2,
                shards: 0,
            },
        )
        .expect("runs");
        prop_assert_eq!(central.decomposition, dist.decomposition);
    }

    #[test]
    fn mpx_partition_is_complete_and_connected(
        g in arb_graph(40),
        beta in 0.05f64..1.5,
        seed in 0u64..500,
    ) {
        let padded = mpx::padded_partition(&g, beta, seed).expect("valid beta");
        prop_assert!(padded.partition.is_complete());
        for c in 0..padded.partition.cluster_count() {
            let members = padded.partition.cluster_set(c);
            prop_assert!(
                diameter::strong_diameter(&g, &members).is_some(),
                "cluster {} disconnected", c
            );
        }
    }

    #[test]
    fn mpx_centers_belong_to_their_clusters(
        g in arb_graph(30),
        seed in 0u64..200,
    ) {
        let padded = mpx::padded_partition(&g, 0.4, seed).expect("valid beta");
        for (c, &center) in padded.centers.iter().enumerate() {
            prop_assert_eq!(
                padded.partition.cluster_of(center),
                Some(c),
                "center {} not in cluster {}", center, c
            );
        }
    }

    #[test]
    fn ball_carving_covers_with_bounded_radius(
        g in arb_graph(40),
        eps in 0.05f64..2.0,
    ) {
        let outcome = ball_carving::carve(&g, eps).expect("valid eps");
        prop_assert!(outcome.partition.is_complete());
        for c in 0..outcome.partition.cluster_count() {
            let members = outcome.partition.cluster_set(c);
            let d = diameter::strong_diameter(&g, &members);
            prop_assert!(d.is_some(), "ball {} disconnected", c);
            prop_assert!(d.expect("checked") <= 2 * outcome.max_radius);
        }
    }
}

//! The network-decomposition data structure.

use netdecomp_graph::{Partition, VertexId};

/// A `(D, χ)` network decomposition: a partition of the vertices into
/// clusters, each cluster tagged with the *block* (phase) that carved it.
///
/// Clusters carved in the same block are pairwise non-adjacent (they are
/// distinct connected components of the block's induced subgraph), so the
/// block index is a proper coloring of the supergraph `G(P)`: the number of
/// blocks is the decomposition's `χ`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NetworkDecomposition {
    partition: Partition,
    /// Block (= supergraph color) of each cluster, indexed by cluster id.
    cluster_blocks: Vec<usize>,
    /// The center vertex each cluster formed around.
    cluster_centers: Vec<VertexId>,
    /// Total number of blocks (phases that carved at least one vertex are
    /// compacted to a dense range `0..block_count`).
    block_count: usize,
}

impl NetworkDecomposition {
    /// Assembles a decomposition from a partition and per-cluster block
    /// tags/centers. Block tags are compacted to dense indices preserving
    /// order.
    ///
    /// # Panics
    ///
    /// Panics if the vectors' lengths differ from the partition's cluster
    /// count.
    #[must_use]
    pub fn from_parts(
        partition: Partition,
        cluster_blocks: Vec<usize>,
        cluster_centers: Vec<VertexId>,
    ) -> Self {
        assert_eq!(
            partition.cluster_count(),
            cluster_blocks.len(),
            "one block tag per cluster"
        );
        assert_eq!(
            partition.cluster_count(),
            cluster_centers.len(),
            "one center per cluster"
        );
        // Compact block tags.
        let mut sorted: Vec<usize> = cluster_blocks.clone();
        sorted.sort_unstable();
        sorted.dedup();
        let dense: Vec<usize> = cluster_blocks
            .iter()
            .map(|b| sorted.binary_search(b).expect("tag present"))
            .collect();
        NetworkDecomposition {
            partition,
            cluster_blocks: dense,
            cluster_centers,
            block_count: sorted.len(),
        }
    }

    /// The underlying partition.
    #[must_use]
    pub fn partition(&self) -> &Partition {
        &self.partition
    }

    /// Number of vertices.
    #[must_use]
    pub fn vertex_count(&self) -> usize {
        self.partition.vertex_count()
    }

    /// Number of clusters.
    #[must_use]
    pub fn cluster_count(&self) -> usize {
        self.partition.cluster_count()
    }

    /// Number of blocks — the decomposition's color count `χ`.
    #[must_use]
    pub fn block_count(&self) -> usize {
        self.block_count
    }

    /// Block (supergraph color) of cluster `c`.
    ///
    /// # Panics
    ///
    /// Panics if `c` is out of range.
    #[must_use]
    pub fn block_of_cluster(&self, c: usize) -> usize {
        self.cluster_blocks[c]
    }

    /// Center vertex of cluster `c`.
    ///
    /// # Panics
    ///
    /// Panics if `c` is out of range.
    #[must_use]
    pub fn center_of_cluster(&self, c: usize) -> VertexId {
        self.cluster_centers[c]
    }

    /// Cluster of vertex `v` (`None` if the algorithm left it unassigned,
    /// which is the theorem's low-probability failure mode).
    #[must_use]
    pub fn cluster_of(&self, v: VertexId) -> Option<usize> {
        self.partition.cluster_of(v)
    }

    /// Block (color) of vertex `v`.
    #[must_use]
    pub fn block_of(&self, v: VertexId) -> Option<usize> {
        self.cluster_of(v).map(|c| self.cluster_blocks[c])
    }

    /// Cluster ids grouped by block, indexed by block.
    #[must_use]
    pub fn blocks(&self) -> Vec<Vec<usize>> {
        let mut out = vec![Vec::new(); self.block_count];
        for (c, &b) in self.cluster_blocks.iter().enumerate() {
            out[b].push(c);
        }
        out
    }

    /// Per-cluster block tags, indexed by cluster id.
    #[must_use]
    pub fn cluster_blocks(&self) -> &[usize] {
        &self.cluster_blocks
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> NetworkDecomposition {
        // 6 vertices; clusters {0,1} (block 0), {2} (block 2), {3,4,5} (block 2).
        let mut p = Partition::new(6);
        p.push_cluster(&[0, 1]);
        p.push_cluster(&[2]);
        p.push_cluster(&[3, 4, 5]);
        NetworkDecomposition::from_parts(p, vec![0, 2, 2], vec![0, 2, 4])
    }

    #[test]
    fn block_compaction() {
        let d = sample();
        assert_eq!(d.block_count(), 2); // tags {0, 2} -> dense {0, 1}
        assert_eq!(d.block_of_cluster(0), 0);
        assert_eq!(d.block_of_cluster(1), 1);
        assert_eq!(d.block_of_cluster(2), 1);
    }

    #[test]
    fn vertex_lookups() {
        let d = sample();
        assert_eq!(d.cluster_of(4), Some(2));
        assert_eq!(d.block_of(4), Some(1));
        assert_eq!(d.block_of(0), Some(0));
        assert_eq!(d.center_of_cluster(2), 4);
        assert_eq!(d.cluster_count(), 3);
        assert_eq!(d.vertex_count(), 6);
    }

    #[test]
    fn blocks_grouping() {
        let d = sample();
        assert_eq!(d.blocks(), vec![vec![0], vec![1, 2]]);
    }

    #[test]
    fn incomplete_partition_reports_none() {
        let mut p = Partition::new(3);
        p.push_cluster(&[0]);
        let d = NetworkDecomposition::from_parts(p, vec![5], vec![0]);
        assert_eq!(d.cluster_of(1), None);
        assert_eq!(d.block_of(1), None);
        assert_eq!(d.block_count(), 1);
    }

    #[test]
    #[should_panic(expected = "one block tag per cluster")]
    fn mismatched_blocks_panics() {
        let mut p = Partition::new(2);
        p.push_cluster(&[0, 1]);
        let _ = NetworkDecomposition::from_parts(p, vec![], vec![0]);
    }
}

//! Error type of the decomposition library.

use std::error::Error;
use std::fmt;

/// Errors surfaced by decomposition construction and verification.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum DecompError {
    /// A numeric parameter violated the constraints of the theorems.
    InvalidParameter {
        /// Name of the parameter (`k`, `c`, `beta`, `lambda`, …).
        name: &'static str,
        /// Description of the violated constraint.
        reason: String,
    },
    /// A decomposition and a graph do not belong together.
    GraphMismatch {
        /// Vertices in the decomposition.
        decomposition_n: usize,
        /// Vertices in the graph.
        graph_n: usize,
    },
    /// The underlying simulator failed (distributed execution path).
    Simulation {
        /// Stringified simulator error.
        reason: String,
    },
}

impl fmt::Display for DecompError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecompError::InvalidParameter { name, reason } => {
                write!(f, "invalid parameter {name}: {reason}")
            }
            DecompError::GraphMismatch {
                decomposition_n,
                graph_n,
            } => write!(
                f,
                "decomposition over {decomposition_n} vertices does not match graph with {graph_n}"
            ),
            DecompError::Simulation { reason } => write!(f, "simulation failed: {reason}"),
        }
    }
}

impl Error for DecompError {}

impl From<netdecomp_sim::SimError> for DecompError {
    fn from(e: netdecomp_sim::SimError) -> Self {
        DecompError::Simulation {
            reason: e.to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = DecompError::InvalidParameter {
            name: "k",
            reason: "must be at least 1".into(),
        };
        assert_eq!(e.to_string(), "invalid parameter k: must be at least 1");
        let e = DecompError::GraphMismatch {
            decomposition_n: 3,
            graph_n: 5,
        };
        assert!(e.to_string().contains("3"));
        assert!(e.to_string().contains("5"));
    }

    #[test]
    fn sim_error_converts() {
        let e: DecompError = netdecomp_sim::SimError::RoundLimitExceeded { limit: 9 }.into();
        assert!(matches!(e, DecompError::Simulation { .. }));
        assert!(e.to_string().contains("9 rounds"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<DecompError>();
    }
}

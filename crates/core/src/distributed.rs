//! The faithful distributed (CONGEST) execution of the algorithm.
//!
//! Each phase, every alive vertex broadcasts `(origin, r_v)` to its
//! `⌊r_v⌋`-neighborhood by per-round relaying. With
//! [`Forwarding::TopTwo`], a vertex relays only entries currently among its
//! two best — the paper's CONGEST implementation, where every message is
//! `O(1)` words; with [`Forwarding::Full`] it relays every improvement (the
//! naive LOCAL flood) for comparison. Both produce the same clustering
//! decisions (and the same decisions as the centralized simulation in
//! [`crate::basic`]); the difference — measured by the returned
//! [`RunStats`] — is communication volume.
//!
//! Messages are typed ([`Entry`]) and cross the wire through an
//! [`EntryCodec`]: encoded once per send, decoded once per receipt. Rounds
//! can run on the simulator's sharded parallel engine — compute *and*
//! delivery ([`DistributedConfig::engine`]); decisions are bit-identical
//! across every `(threads, shards)` configuration, and
//! [`DistributedConfig::determinism`] can make the simulator verify that
//! per round.

use bytes::Bytes;
use netdecomp_graph::{Graph, VertexId, VertexSet};
use netdecomp_sim::wire::{WireReader, WireWriter};
use netdecomp_sim::{
    Codec, CongestLimit, Ctx, Determinism, Engine, RunStats, Simulator, Snapshot, TransportFactory,
    Typed, TypedOutbox, TypedProtocol,
};

use crate::carve::{CarveDecision, PhaseResult};
use crate::driver::{run_phases_with_carver, BudgetPolicy, PhasePlan};
use crate::outcome::DecompositionOutcome;
use crate::params::{DecompositionParams, HighRadiusParams, StagedParams};
use crate::DecompError;

/// Relaying discipline of the per-phase broadcast.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Forwarding {
    /// Relay only entries currently among the vertex's two best — the
    /// paper's CONGEST-compatible rule (§2, final paragraph).
    #[default]
    TopTwo,
    /// Relay every improved entry (LOCAL-model flood); exponentially more
    /// messages, identical decisions.
    Full,
}

/// Configuration of a distributed run.
#[derive(Debug, Clone, Default)]
pub struct DistributedConfig {
    /// Relaying discipline.
    pub forwarding: Forwarding,
    /// Per-edge byte budget enforced by the simulator (`Unlimited` measures
    /// without enforcing).
    pub congest_limit: CongestLimit,
    /// Budget policy, as in the centralized driver.
    pub policy: BudgetPolicy,
    /// Round scheduler (worker threads × delivery shards) for the
    /// underlying simulator.
    pub engine: Engine,
    /// Whether the simulator cross-checks parallel rounds against a
    /// sequential reference ([`Determinism::Verify`]).
    pub determinism: Determinism,
    /// Custom delivery transport for framed engines — the hook that runs
    /// the decomposition over sockets or a fault-injecting fabric. When
    /// set and `engine` is [`Engine::Framed`], every phase's simulator
    /// routes its frames through `factory.build(shard_count)` instead of
    /// the engine's built-in backend; ignored for non-framed engines
    /// (nothing would be routed through it).
    pub transport: Option<TransportFactory>,
}

/// A decomposition produced by message passing, with its communication bill.
#[derive(Debug, Clone, PartialEq)]
pub struct DistributedRun {
    /// The algorithm outcome (identical in distribution — in fact, for equal
    /// seeds identical bit-for-bit — to [`crate::basic::decompose`]).
    pub outcome: DecompositionOutcome,
    /// Aggregated communication statistics over all phases.
    pub comm: RunStats,
}

/// One known broadcast entry at a vertex.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Entry {
    /// Origin vertex of the broadcast.
    origin: VertexId,
    /// The origin's sampled shift `r`.
    r: f64,
    /// Hop distance at which this vertex heard the origin (current best).
    dist: usize,
}

impl Entry {
    fn value(&self) -> f64 {
        self.r - self.dist as f64
    }

    /// Ordering used everywhere: larger value first, ties toward the
    /// smaller origin id (matches the centralized heap's tie-break).
    fn beats(&self, other: &Entry) -> bool {
        match self.value().total_cmp(&other.value()) {
            std::cmp::Ordering::Greater => true,
            std::cmp::Ordering::Less => false,
            std::cmp::Ordering::Equal => self.origin < other.origin,
        }
    }
}

/// Wire format of an [`Entry`]: `(origin: u32, r: f64, dist: u16)` —
/// 14 bytes, under two CONGEST words.
///
/// The sender pre-increments `dist`, so the wire carries the distance *at
/// the receiver* and relaying needs no rewrite before decode.
#[derive(Debug, Clone, Copy)]
struct EntryCodec;

impl Codec for EntryCodec {
    type Msg = Entry;

    fn encode(entry: &Entry) -> Bytes {
        WireWriter::new()
            .u32(entry.origin as u32)
            .f64(entry.r)
            .u16((entry.dist + 1) as u16)
            .finish()
    }

    fn decode(payload: &[u8]) -> Option<Entry> {
        let mut r = WireReader::new(payload);
        let origin = r.u32()? as VertexId;
        let shift = r.f64()?;
        let dist = r.u16()? as usize;
        r.is_exhausted().then_some(Entry {
            origin,
            r: shift,
            dist,
        })
    }
}

/// Per-vertex protocol state for one phase.
#[derive(Debug, Clone)]
struct CarveNode {
    alive: bool,
    r: f64,
    cap: usize,
    mode: Forwarding,
    /// Known entries: all origins (Full) or at most two (TopTwo), kept
    /// sorted best-first.
    known: Vec<Entry>,
}

impl CarveNode {
    fn new(alive: bool, r: f64, cap: usize, mode: Forwarding) -> Self {
        CarveNode {
            alive,
            r,
            cap,
            mode,
            known: Vec::new(),
        }
    }

    /// Records an entry; returns `true` if the knowledge improved (new
    /// origin accepted or a better distance for a known origin).
    fn offer(&mut self, entry: Entry) -> bool {
        if let Some(existing) = self.known.iter_mut().find(|e| e.origin == entry.origin) {
            if entry.value() > existing.value() {
                *existing = entry;
                self.known.sort_by(|a, b| {
                    if a.beats(b) {
                        std::cmp::Ordering::Less
                    } else {
                        std::cmp::Ordering::Greater
                    }
                });
                return true;
            }
            return false;
        }
        match self.mode {
            Forwarding::Full => {
                self.known.push(entry);
            }
            Forwarding::TopTwo => {
                if self.known.len() >= 2 {
                    // Replace the current runner-up if the newcomer beats it.
                    let worst = self.known.len() - 1;
                    if entry.beats(&self.known[worst]) {
                        self.known[worst] = entry;
                    } else {
                        return false;
                    }
                } else {
                    self.known.push(entry);
                }
            }
        }
        self.known.sort_by(|a, b| {
            if a.beats(b) {
                std::cmp::Ordering::Less
            } else {
                std::cmp::Ordering::Greater
            }
        });
        true
    }

    /// Should `entry` be relayed one hop further?
    fn should_forward(&self, entry: &Entry) -> bool {
        let radius = (entry.r.floor() as usize).min(self.cap);
        if entry.dist + 1 > radius {
            return false;
        }
        match self.mode {
            Forwarding::Full => true,
            Forwarding::TopTwo => self.known.iter().take(2).any(|e| e.origin == entry.origin),
        }
    }

    /// The best two entries as a carve decision (driver reads this after
    /// the phase's rounds complete).
    fn decision(&self) -> CarveDecision {
        let best = self.known[0];
        let m2 = self.known.get(1).map_or(0.0, Entry::value);
        CarveDecision {
            m1: best.value(),
            center: best.origin,
            m2,
            joined: best.value() - m2 > 1.0,
        }
    }
}

/// Round-boundary serialization for checkpoint/restore: only the
/// mutable phase state travels (`alive` and the known-entry list, in
/// kept order); `r`, `cap`, and `mode` are construction-time
/// configuration a seeded rebuild re-derives bit-identically.
impl Snapshot for CarveNode {
    fn save_state(&self) -> Bytes {
        let mut w = WireWriter::new()
            .u16(u16::from(self.alive))
            .u32(self.known.len() as u32);
        for entry in &self.known {
            w = w
                .u32(entry.origin as u32)
                .f64(entry.r)
                .u16(entry.dist as u16);
        }
        w.finish()
    }

    fn load_state(&mut self, bytes: &[u8]) -> bool {
        let mut r = WireReader::new(bytes);
        let Some(alive) = r.u16() else {
            return false;
        };
        let Some(count) = r.u32() else {
            return false;
        };
        // Each entry consumes 14 bytes; an absurd count can't be genuine.
        if count as usize > bytes.len() / 14 {
            return false;
        }
        let mut known = Vec::with_capacity(count as usize);
        for _ in 0..count {
            let (Some(origin), Some(shift), Some(dist)) = (r.u32(), r.f64(), r.u16()) else {
                return false;
            };
            known.push(Entry {
                origin: origin as VertexId,
                r: shift,
                dist: dist as usize,
            });
        }
        if !r.is_exhausted() {
            return false;
        }
        self.alive = alive != 0;
        self.known = known;
        true
    }
}

impl TypedProtocol for CarveNode {
    type Codec = EntryCodec;

    fn start(&mut self, ctx: &Ctx<'_>, out: &mut TypedOutbox<'_, EntryCodec>) {
        if !self.alive {
            return;
        }
        let own = Entry {
            origin: ctx.id,
            r: self.r,
            dist: 0,
        };
        self.offer(own);
        if self.should_forward(&own) {
            out.broadcast(&own);
        }
    }

    fn round(
        &mut self,
        _ctx: &Ctx<'_>,
        incoming: &[(VertexId, Entry)],
        out: &mut TypedOutbox<'_, EntryCodec>,
    ) {
        if !self.alive {
            return;
        }
        let mut improved: Vec<Entry> = Vec::new();
        for &(_, entry) in incoming {
            if self.offer(entry) {
                // Deduplicate by origin, keeping the better copy.
                if let Some(slot) = improved.iter_mut().find(|e| e.origin == entry.origin) {
                    if entry.value() > slot.value() {
                        *slot = entry;
                    }
                } else {
                    improved.push(entry);
                }
            }
        }
        for entry in improved {
            if self.should_forward(&entry) {
                out.broadcast(&entry);
            }
        }
    }

    fn is_halted(&self) -> bool {
        true
    }
}

/// Runs Theorem 1's algorithm by actual message passing on the simulator.
///
/// With the same `seed` and `params`, the returned decomposition is
/// bit-identical to [`crate::basic::decompose`]'s (the integration suite
/// asserts this) — for every [`Engine`]; additionally the communication
/// totals are returned.
///
/// # Errors
///
/// [`DecompError::Simulation`] if the configured CONGEST limit is violated
/// (only possible with [`Forwarding::Full`] or a very small limit);
/// [`DecompError::InvalidParameter`] for degenerate rates.
pub fn decompose_distributed(
    graph: &Graph,
    params: &DecompositionParams,
    seed: u64,
    config: &DistributedConfig,
) -> Result<DistributedRun, DecompError> {
    let n = graph.vertex_count();
    let beta = params.beta(n);
    let cap = params.radius_cap();
    run_distributed(graph, seed, params.phase_budget(n), config, move |_| {
        PhasePlan { beta, cap }
    })
}

/// Theorem 2's staged algorithm by actual message passing; the per-stage
/// rate schedule matches [`crate::staged::decompose`] exactly (equal seeds
/// give bit-identical decompositions).
///
/// # Errors
///
/// As [`decompose_distributed`].
pub fn decompose_distributed_staged(
    graph: &Graph,
    params: &StagedParams,
    seed: u64,
    config: &DistributedConfig,
) -> Result<DistributedRun, DecompError> {
    let n = graph.vertex_count();
    let cap = params.radius_cap();
    let budget: usize = (0..params.stage_count(n))
        .map(|i| params.stage_phases(n, i))
        .sum();
    let p = *params;
    run_distributed(graph, seed, budget, config, move |phase| {
        // Same stage lookup as the centralized path.
        let stages = p.stage_count(n);
        let mut cursor = 0usize;
        let mut stage = stages.saturating_sub(1);
        for i in 0..stages {
            cursor += p.stage_phases(n, i);
            if phase < cursor {
                stage = i;
                break;
            }
        }
        PhasePlan {
            beta: p.stage_beta(n, stage),
            cap,
        }
    })
}

/// Theorem 3's high-radius algorithm by actual message passing.
///
/// # Errors
///
/// As [`decompose_distributed`].
pub fn decompose_distributed_high_radius(
    graph: &Graph,
    params: &HighRadiusParams,
    seed: u64,
    config: &DistributedConfig,
) -> Result<DistributedRun, DecompError> {
    let n = graph.vertex_count();
    let beta = params.beta(n);
    let cap = params.radius_cap(n);
    run_distributed(graph, seed, params.phase_budget(), config, move |_| {
        PhasePlan { beta, cap }
    })
}

fn run_distributed<F>(
    graph: &Graph,
    seed: u64,
    budget: usize,
    config: &DistributedConfig,
    plan_for_phase: F,
) -> Result<DistributedRun, DecompError>
where
    F: Fn(usize) -> PhasePlan,
{
    let mut comm = RunStats::default();
    let outcome = run_phases_with_carver(
        graph,
        seed,
        budget,
        config.policy,
        plan_for_phase,
        |graph, alive, shifts, cap| {
            let (result, stats) = run_one_phase(graph, alive, shifts, cap, config)?;
            comm.merge(&stats);
            Ok(result)
        },
    )?;
    Ok(DistributedRun { outcome, comm })
}

/// Executes a single phase (`cap + 1` simulator steps) and extracts each
/// alive vertex's decision.
fn run_one_phase(
    graph: &Graph,
    alive: &VertexSet,
    shifts: &[f64],
    cap: usize,
    config: &DistributedConfig,
) -> Result<(PhaseResult, RunStats), DecompError> {
    let mut truncated = 0usize;
    let mut max_shift = 0.0f64;
    for v in alive.iter() {
        max_shift = max_shift.max(shifts[v]);
        if (shifts[v].floor() as usize) > cap {
            truncated += 1;
        }
    }
    let mut sim = Simulator::new(graph, |id, _| {
        Typed::new(CarveNode::new(
            alive.contains(id),
            shifts[id],
            cap,
            config.forwarding,
        ))
    })
    .with_limit(config.congest_limit)
    .with_engine(config.engine);
    if let Some(factory) = &config.transport {
        if matches!(config.engine, Engine::Framed { .. }) {
            let shards = sim.shard_plan().count();
            sim = sim.with_transport(factory.build(shards));
        }
    }
    let stats = sim.run_rounds_with(cap + 1, config.determinism)?;
    let decisions = sim
        .nodes()
        .iter()
        .enumerate()
        .map(|(v, node)| alive.contains(v).then(|| node.inner.decision()))
        .collect();
    Ok((
        PhaseResult {
            decisions,
            truncated,
            max_shift,
        },
        stats,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shift::ShiftSource;
    use netdecomp_graph::generators;

    fn one_phase_decisions(g: &Graph, shifts: &[f64], cap: usize, mode: Forwarding) -> PhaseResult {
        let alive = VertexSet::full(g.vertex_count());
        let config = DistributedConfig {
            forwarding: mode,
            ..DistributedConfig::default()
        };
        run_one_phase(g, &alive, shifts, cap, &config).unwrap().0
    }

    #[test]
    fn distributed_phase_matches_centralized_carve() {
        for seed in 0..4u64 {
            let g = generators::grid2d(5, 6);
            let n = g.vertex_count();
            let src = ShiftSource::new(seed, 0.8).unwrap();
            let shifts: Vec<f64> = (0..n).map(|v| src.shift(0, v)).collect();
            let cap = 4;
            let central = crate::carve::carve_phase(&g, &VertexSet::full(n), &shifts, cap);
            for mode in [Forwarding::TopTwo, Forwarding::Full] {
                let dist = one_phase_decisions(&g, &shifts, cap, mode);
                assert_eq!(
                    central.decisions, dist.decisions,
                    "mode {mode:?} seed {seed}"
                );
            }
        }
    }

    #[test]
    fn top_two_and_full_forwarding_agree() {
        for seed in 10..14u64 {
            let g = generators::cycle(24);
            let src = ShiftSource::new(seed, 0.5).unwrap();
            let shifts: Vec<f64> = (0..24).map(|v| src.shift(3, v)).collect();
            let a = one_phase_decisions(&g, &shifts, 5, Forwarding::TopTwo);
            let b = one_phase_decisions(&g, &shifts, 5, Forwarding::Full);
            assert_eq!(a.decisions, b.decisions, "seed {seed}");
        }
    }

    #[test]
    fn full_forwarding_sends_at_least_as_much() {
        let g = generators::grid2d(6, 6);
        let n = g.vertex_count();
        let src = ShiftSource::new(5, 0.4).unwrap();
        let shifts: Vec<f64> = (0..n).map(|v| src.shift(0, v)).collect();
        let alive = VertexSet::full(n);
        let cfg_top = DistributedConfig::default();
        let cfg_full = DistributedConfig {
            forwarding: Forwarding::Full,
            ..DistributedConfig::default()
        };
        let (_, stats_top) = run_one_phase(&g, &alive, &shifts, 6, &cfg_top).unwrap();
        let (_, stats_full) = run_one_phase(&g, &alive, &shifts, 6, &cfg_full).unwrap();
        assert!(stats_full.total_messages >= stats_top.total_messages);
    }

    #[test]
    fn end_to_end_distributed_decomposition_is_valid() {
        let g = generators::grid2d(6, 6);
        let params = DecompositionParams::new(3, 4.0).unwrap();
        let run = decompose_distributed(&g, &params, 21, &DistributedConfig::default()).unwrap();
        let report = crate::verify::verify(&g, run.outcome.decomposition()).unwrap();
        assert!(report.complete);
        assert!(report.supergraph_properly_colored);
        if run.outcome.events().clean() {
            assert!(report.is_valid_strong(params.diameter_bound()));
        }
        assert!(run.comm.total_messages > 0);
    }

    #[test]
    fn distributed_equals_centralized_end_to_end() {
        let g = generators::cycle(30);
        let params = DecompositionParams::new(2, 4.0).unwrap();
        for seed in [0u64, 1, 2] {
            let central = crate::basic::decompose(&g, &params, seed).unwrap();
            let dist =
                decompose_distributed(&g, &params, seed, &DistributedConfig::default()).unwrap();
            assert_eq!(
                central.decomposition(),
                dist.outcome.decomposition(),
                "seed {seed}"
            );
            assert_eq!(central.phases_used(), dist.outcome.phases_used());
        }
    }

    #[test]
    fn parallel_verified_engine_equals_sequential_distributed() {
        let g = generators::grid2d(6, 6);
        let params = DecompositionParams::new(3, 4.0).unwrap();
        for seed in [0u64, 7] {
            let seq =
                decompose_distributed(&g, &params, seed, &DistributedConfig::default()).unwrap();
            let par = decompose_distributed(
                &g,
                &params,
                seed,
                &DistributedConfig {
                    engine: Engine::Parallel {
                        threads: 4,
                        shards: 3,
                    },
                    determinism: Determinism::Verify,
                    ..DistributedConfig::default()
                },
            )
            .unwrap();
            assert_eq!(seq.outcome, par.outcome, "seed {seed}");
            assert_eq!(seq.comm, par.comm, "seed {seed}");
        }
    }

    #[test]
    fn top_two_respects_congest_budget() {
        // Two 14-byte entries per edge per round fit in 28 bytes.
        let g = generators::grid2d(5, 5);
        let params = DecompositionParams::new(3, 4.0).unwrap();
        let config = DistributedConfig {
            congest_limit: CongestLimit::PerEdgeBytes(28),
            ..DistributedConfig::default()
        };
        let run = decompose_distributed(&g, &params, 3, &config).unwrap();
        assert!(run.comm.max_edge_bytes <= 28);
    }

    #[test]
    fn staged_distributed_equals_centralized() {
        let g = generators::grid2d(5, 5);
        let params = crate::params::StagedParams::new(3, 6.0).unwrap();
        for seed in [0u64, 1] {
            let central = crate::staged::decompose(&g, &params, seed).unwrap();
            let dist =
                decompose_distributed_staged(&g, &params, seed, &DistributedConfig::default())
                    .unwrap();
            assert_eq!(
                central.decomposition(),
                dist.outcome.decomposition(),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn high_radius_distributed_equals_centralized() {
        let g = generators::cycle(24);
        let params = crate::params::HighRadiusParams::new(2, 4.0).unwrap();
        for seed in [0u64, 1] {
            let central = crate::high_radius::decompose(&g, &params, seed).unwrap();
            let dist =
                decompose_distributed_high_radius(&g, &params, seed, &DistributedConfig::default())
                    .unwrap();
            assert_eq!(
                central.decomposition(),
                dist.outcome.decomposition(),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn dead_vertices_stay_silent() {
        let g = generators::path(4);
        let mut alive = VertexSet::full(4);
        alive.remove(1);
        let shifts = [9.0, 9.0, 0.2, 0.1];
        let cfg = DistributedConfig::default();
        let (result, _) = run_one_phase(&g, &alive, &shifts, 4, &cfg).unwrap();
        assert!(result.decisions[1].is_none());
        // 0's broadcast is blocked by the dead vertex 1.
        let d2 = result.decisions[2].unwrap();
        assert_eq!(d2.center, 2);
    }
}

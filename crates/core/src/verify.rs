//! Exhaustive verification of decomposition properties.
//!
//! The theorems promise four things: every vertex is clustered, every
//! cluster is connected with strong diameter `≤ D`, and the block tags
//! properly color the supergraph `G(P)`. [`verify`] measures all of them
//! (plus the weak diameters, for baseline comparisons) and returns a
//! [`DecompositionReport`] that experiments print as *measured* columns.

use serde::Serialize;

use netdecomp_graph::{components, contraction, diameter, Graph};

use crate::{DecompError, NetworkDecomposition};

/// Everything measurable about a decomposition on a concrete graph.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct DecompositionReport {
    /// Vertices in the graph.
    pub vertex_count: usize,
    /// Clusters in the decomposition.
    pub cluster_count: usize,
    /// Blocks = colors `χ`.
    pub color_count: usize,
    /// `true` if every vertex is assigned.
    pub complete: bool,
    /// `true` if every cluster induces a connected subgraph.
    pub clusters_connected: bool,
    /// Maximum strong diameter over clusters (`None` = some cluster is
    /// disconnected, i.e. infinite strong diameter).
    pub max_strong_diameter: Option<usize>,
    /// Maximum weak diameter over clusters (`None` = some pair of
    /// same-cluster vertices is disconnected even in `G`).
    pub max_weak_diameter: Option<usize>,
    /// Size of the largest cluster.
    pub max_cluster_size: usize,
    /// Mean cluster size.
    pub mean_cluster_size: f64,
    /// `true` if block tags properly color the supergraph `G(P)`.
    pub supergraph_properly_colored: bool,
}

impl DecompositionReport {
    /// Is this a valid **strong** `(bound, ·)` decomposition?
    #[must_use]
    pub fn is_valid_strong(&self, diameter_bound: usize) -> bool {
        self.complete
            && self.clusters_connected
            && self.supergraph_properly_colored
            && self
                .max_strong_diameter
                .is_some_and(|d| d <= diameter_bound)
    }

    /// Is this a valid **weak** `(bound, ·)` decomposition? (Clusters may be
    /// disconnected; only the weak diameter is constrained.)
    #[must_use]
    pub fn is_valid_weak(&self, diameter_bound: usize) -> bool {
        self.complete
            && self.supergraph_properly_colored
            && self.max_weak_diameter.is_some_and(|d| d <= diameter_bound)
    }
}

/// Measures every property of `decomposition` on `graph`.
///
/// # Errors
///
/// [`DecompError::GraphMismatch`] if the vertex counts differ.
///
/// # Example
///
/// ```
/// use netdecomp_core::{basic, params::DecompositionParams, verify};
/// use netdecomp_graph::generators;
///
/// let g = generators::cycle(16);
/// let params = DecompositionParams::new(2, 4.0)?;
/// let outcome = basic::decompose(&g, &params, 42)?;
/// let report = verify::verify(&g, outcome.decomposition())?;
/// assert!(report.complete);
/// assert!(report.clusters_connected);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn verify(
    graph: &Graph,
    decomposition: &NetworkDecomposition,
) -> Result<DecompositionReport, DecompError> {
    if decomposition.vertex_count() != graph.vertex_count() {
        return Err(DecompError::GraphMismatch {
            decomposition_n: decomposition.vertex_count(),
            graph_n: graph.vertex_count(),
        });
    }
    let partition = decomposition.partition();
    let complete = partition.is_complete();

    let mut clusters_connected = true;
    let mut max_strong: Option<usize> = Some(0);
    let mut max_weak: Option<usize> = Some(0);
    let mut max_size = 0usize;
    let cluster_count = partition.cluster_count();
    for c in 0..cluster_count {
        let members = partition.cluster_set(c);
        max_size = max_size.max(members.len());
        if components::components_restricted(graph, &members).count() > 1 {
            clusters_connected = false;
        }
        match (max_strong, diameter::strong_diameter(graph, &members)) {
            (Some(best), Some(d)) => max_strong = Some(best.max(d)),
            _ => max_strong = None,
        }
        match (max_weak, diameter::weak_diameter(graph, &members)) {
            (Some(best), Some(d)) => max_weak = Some(best.max(d)),
            _ => max_weak = None,
        }
    }

    // Proper coloring of the supergraph by block tags.
    let supergraph_properly_colored = match contraction::contract(graph, partition) {
        Ok(contraction) => contraction.supergraph().edges().all(|(cu, cv)| {
            decomposition.block_of_cluster(cu) != decomposition.block_of_cluster(cv)
        }),
        Err(_) => false,
    };

    let assigned = partition.assigned_count();
    Ok(DecompositionReport {
        vertex_count: graph.vertex_count(),
        cluster_count,
        color_count: decomposition.block_count(),
        complete,
        clusters_connected,
        max_strong_diameter: max_strong,
        max_weak_diameter: max_weak,
        max_cluster_size: max_size,
        mean_cluster_size: if cluster_count == 0 {
            0.0
        } else {
            assigned as f64 / cluster_count as f64
        },
        supergraph_properly_colored,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use netdecomp_graph::{generators, Partition};

    fn decomp(partition: Partition, blocks: Vec<usize>) -> NetworkDecomposition {
        let centers = (0..partition.cluster_count())
            .map(|c| partition.cluster_set(c).iter().next().unwrap_or(0))
            .collect();
        NetworkDecomposition::from_parts(partition, blocks, centers)
    }

    #[test]
    fn valid_decomposition_of_path() {
        // Path 0-1-2-3: clusters {0,1} and {2,3}, different blocks.
        let g = generators::path(4);
        let mut p = Partition::new(4);
        p.push_cluster(&[0, 1]);
        p.push_cluster(&[2, 3]);
        let d = decomp(p, vec![0, 1]);
        let r = verify(&g, &d).unwrap();
        assert!(r.complete);
        assert!(r.clusters_connected);
        assert_eq!(r.max_strong_diameter, Some(1));
        assert_eq!(r.max_weak_diameter, Some(1));
        assert!(r.supergraph_properly_colored);
        assert!(r.is_valid_strong(1));
        assert!(!r.is_valid_strong(0));
        assert_eq!(r.color_count, 2);
        assert!((r.mean_cluster_size - 2.0).abs() < 1e-12);
    }

    #[test]
    fn same_block_adjacent_clusters_fail_coloring() {
        let g = generators::path(4);
        let mut p = Partition::new(4);
        p.push_cluster(&[0, 1]);
        p.push_cluster(&[2, 3]);
        let d = decomp(p, vec![0, 0]); // adjacent clusters share a block
        let r = verify(&g, &d).unwrap();
        assert!(!r.supergraph_properly_colored);
        assert!(!r.is_valid_strong(10));
    }

    #[test]
    fn disconnected_cluster_detected() {
        // Path 0-1-2: cluster {0,2} is disconnected (1 is elsewhere).
        let g = generators::path(3);
        let mut p = Partition::new(3);
        p.push_cluster(&[0, 2]);
        p.push_cluster(&[1]);
        let d = decomp(p, vec![0, 1]);
        let r = verify(&g, &d).unwrap();
        assert!(!r.clusters_connected);
        assert_eq!(r.max_strong_diameter, None);
        assert_eq!(r.max_weak_diameter, Some(2));
        assert!(!r.is_valid_strong(100));
        assert!(r.is_valid_weak(2));
    }

    #[test]
    fn incomplete_partition_detected() {
        let g = generators::path(3);
        let mut p = Partition::new(3);
        p.push_cluster(&[0]);
        let d = decomp(p, vec![0]);
        let r = verify(&g, &d).unwrap();
        assert!(!r.complete);
        assert!(!r.is_valid_strong(10));
        assert!(!r.is_valid_weak(10));
    }

    #[test]
    fn graph_mismatch_errors() {
        let g = generators::path(3);
        let p = Partition::new(5);
        let d = decomp(p, vec![]);
        assert!(matches!(
            verify(&g, &d),
            Err(DecompError::GraphMismatch { .. })
        ));
    }

    #[test]
    fn singleton_decomposition_of_clique_needs_n_colors() {
        // Each vertex of K3 alone; every cluster in its own block -> proper.
        let g = generators::complete(3);
        let p = Partition::singletons(3);
        let d = decomp(p, vec![0, 1, 2]);
        let r = verify(&g, &d).unwrap();
        assert!(r.is_valid_strong(0));
        assert_eq!(r.color_count, 3);
        assert_eq!(r.max_strong_diameter, Some(0));

        // Same partition but only one block: improper.
        let p2 = Partition::singletons(3);
        let d2 = decomp(p2, vec![0, 0, 0]);
        assert!(!verify(&g, &d2).unwrap().supergraph_properly_colored);
    }
}

//! Exponentially distributed random shifts — the randomness of the paper.
//!
//! Every phase `t`, every alive vertex `v` samples `r_v ~ EXP(β)` with
//! density `β·e^{−βx}` and broadcasts it to its `⌊r_v⌋`-neighborhood. The
//! whole algorithm's behaviour is a deterministic function of these shifts,
//! so this module also provides [`ShiftSource`]: a *pure* map
//! `(seed, phase, vertex) → shift` that the centralized and distributed
//! implementations share, making them bit-for-bit comparable.
//!
//! [`top_two_within_margin`] exposes the order-statistics experiment of
//! Lemma 5 (\[MPX13]): for arbitrary shifts `d_j`, the top two values of
//! `δ_j − d_j` are within 1 of each other with probability at most
//! `1 − e^{−β}`.

use rand::Rng;

use netdecomp_graph::VertexId;

use crate::DecompError;

/// The exponential distribution `EXP(β)` with density `β·e^{−βx}` on
/// `x ≥ 0`, sampled by inversion.
///
/// # Example
///
/// ```
/// use netdecomp_core::shift::Exponential;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let exp = Exponential::new(0.5)?;
/// let mut rng = StdRng::seed_from_u64(1);
/// let x = exp.sample(&mut rng);
/// assert!(x >= 0.0);
/// # Ok::<(), netdecomp_core::DecompError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exponential {
    beta: f64,
}

impl Exponential {
    /// Creates the distribution.
    ///
    /// # Errors
    ///
    /// [`DecompError::InvalidParameter`] unless `β` is finite and positive.
    pub fn new(beta: f64) -> Result<Self, DecompError> {
        if !beta.is_finite() || beta <= 0.0 {
            return Err(DecompError::InvalidParameter {
                name: "beta",
                reason: format!("rate must be finite and positive, got {beta}"),
            });
        }
        Ok(Exponential { beta })
    }

    /// The rate `β`.
    #[must_use]
    pub fn beta(&self) -> f64 {
        self.beta
    }

    /// Draws one sample by inverse-CDF: `−ln(1 − U)/β`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let u: f64 = rng.gen_range(0.0..1.0);
        -(1.0 - u).ln() / self.beta
    }

    /// Converts a uniform value in `[0, 1)` into an `EXP(β)` sample.
    /// Deterministic companion of [`Exponential::sample`].
    #[must_use]
    pub fn from_uniform(&self, u: f64) -> f64 {
        debug_assert!((0.0..1.0).contains(&u));
        -(1.0 - u).ln() / self.beta
    }
}

/// SplitMix64 finalizer (same constants as `netdecomp_sim::stream_rng`'s
/// mixer, duplicated here to keep the shift path allocation-free and fast).
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Deterministic per-(phase, vertex) exponential shifts under a root seed.
///
/// Both the centralized simulation and the true distributed protocol draw
/// their randomness from a `ShiftSource` with the same seed, which is what
/// makes their outputs comparable bit-for-bit (tested in the workspace
/// integration suite).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShiftSource {
    seed: u64,
    exp: Exponential,
}

impl ShiftSource {
    /// Creates a source with rate `β` under `seed`.
    ///
    /// # Errors
    ///
    /// Propagates [`Exponential::new`] validation.
    pub fn new(seed: u64, beta: f64) -> Result<Self, DecompError> {
        Ok(ShiftSource {
            seed,
            exp: Exponential::new(beta)?,
        })
    }

    /// The rate `β`.
    #[must_use]
    pub fn beta(&self) -> f64 {
        self.exp.beta()
    }

    /// Replaces the rate, keeping the seed (used by the staged algorithm
    /// when β changes between stages).
    ///
    /// # Errors
    ///
    /// Propagates [`Exponential::new`] validation.
    pub fn with_beta(&self, beta: f64) -> Result<Self, DecompError> {
        ShiftSource::new(self.seed, beta)
    }

    /// The shift `r_v^{(t)}` of vertex `v` at phase `t`.
    ///
    /// Pure: equal arguments always yield equal results.
    #[must_use]
    pub fn shift(&self, phase: u64, v: VertexId) -> f64 {
        self.exp.from_uniform(uniform(self.seed, phase, v))
    }
}

/// A deterministic uniform value in `[0, 1)` for the stream
/// `(seed, phase, vertex)` — the raw randomness underlying [`ShiftSource`],
/// exposed for algorithms that need non-exponential radii (e.g. the
/// truncated-geometric radii of Linial–Saks in `netdecomp-baselines`).
#[must_use]
pub fn uniform(seed: u64, phase: u64, v: VertexId) -> f64 {
    let mixed = splitmix64(
        splitmix64(seed ^ 0xD6E8_FEB8_6659_FD93).wrapping_add(splitmix64(phase))
            ^ splitmix64((v as u64).wrapping_add(0x2545_F491_4F6C_DD1D)),
    );
    (mixed >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Checks Lemma 5's event on one sample: given shifts `d_j` and fresh
/// exponential values `δ_j ~ EXP(β)`, is the largest value of `δ_j − d_j`
/// within 1 (additively) of the second largest?
///
/// Lemma 5 (\[MPX13], as sharpened by the paper) bounds the probability of
/// this event by `1 − e^{−β}`. With `q = 1` the event never holds (the
/// second largest is taken as `−∞`).
pub fn top_two_within_margin<R: Rng + ?Sized>(
    shifts: &[f64],
    beta: f64,
    rng: &mut R,
) -> Result<bool, DecompError> {
    let exp = Exponential::new(beta)?;
    let mut best = f64::NEG_INFINITY;
    let mut second = f64::NEG_INFINITY;
    for &d in shifts {
        let val = exp.sample(rng) - d;
        if val > best {
            second = best;
            best = val;
        } else if val > second {
            second = val;
        }
    }
    Ok(best.is_finite() && second.is_finite() && best - second <= 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn exponential_rejects_bad_rates() {
        assert!(Exponential::new(0.0).is_err());
        assert!(Exponential::new(-1.0).is_err());
        assert!(Exponential::new(f64::INFINITY).is_err());
        assert!(Exponential::new(1.5).is_ok());
    }

    #[test]
    fn exponential_mean_matches_one_over_beta() {
        let beta = 0.8;
        let exp = Exponential::new(beta).unwrap();
        let mut rng = StdRng::seed_from_u64(99);
        let trials = 200_000;
        let sum: f64 = (0..trials).map(|_| exp.sample(&mut rng)).sum();
        let mean = sum / trials as f64;
        assert!(
            (mean - 1.0 / beta).abs() < 0.02,
            "mean {mean} far from {}",
            1.0 / beta
        );
    }

    #[test]
    fn exponential_cdf_at_known_points() {
        // P(X <= t) = 1 - e^{-beta t}.
        let beta = 1.3;
        let exp = Exponential::new(beta).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let trials = 100_000;
        for t in [0.25, 1.0, 2.5] {
            let hits =
                (0..trials).filter(|_| exp.sample(&mut rng) <= t).count() as f64 / trials as f64;
            let want = 1.0 - (-beta * t).exp();
            assert!(
                (hits - want).abs() < 0.01,
                "cdf at {t}: got {hits}, want {want}"
            );
        }
    }

    #[test]
    fn samples_are_nonnegative() {
        let exp = Exponential::new(2.0).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            assert!(exp.sample(&mut rng) >= 0.0);
        }
    }

    #[test]
    fn from_uniform_is_monotone() {
        let exp = Exponential::new(1.0).unwrap();
        assert!(exp.from_uniform(0.1) < exp.from_uniform(0.5));
        assert!(exp.from_uniform(0.5) < exp.from_uniform(0.99));
        assert_eq!(exp.from_uniform(0.0), 0.0);
    }

    #[test]
    fn shift_source_is_pure_and_varied() {
        let s = ShiftSource::new(7, 0.5).unwrap();
        assert_eq!(s.shift(3, 10), s.shift(3, 10));
        assert_ne!(s.shift(3, 10), s.shift(4, 10));
        assert_ne!(s.shift(3, 10), s.shift(3, 11));
        let other = ShiftSource::new(8, 0.5).unwrap();
        assert_ne!(s.shift(3, 10), other.shift(3, 10));
    }

    #[test]
    fn shift_source_beta_swap_keeps_seed() {
        let a = ShiftSource::new(7, 0.5).unwrap();
        let b = a.with_beta(0.25).unwrap();
        assert_eq!(b.beta(), 0.25);
        // Same underlying uniform: the shift doubles when beta halves.
        let ra = a.shift(0, 0);
        let rb = b.shift(0, 0);
        assert!((rb - 2.0 * ra).abs() < 1e-12);
    }

    #[test]
    fn shift_distribution_matches_exponential() {
        // Kolmogorov-style spot check of the deterministic stream.
        let beta = 1.0;
        let s = ShiftSource::new(123, beta).unwrap();
        let n = 50_000;
        let mut below_ln2 = 0usize;
        for v in 0..n {
            if s.shift(0, v) <= std::f64::consts::LN_2 {
                below_ln2 += 1;
            }
        }
        // P(X <= ln 2) = 1/2 for EXP(1).
        let frac = below_ln2 as f64 / n as f64;
        assert!((frac - 0.5).abs() < 0.01, "median check failed: {frac}");
    }

    #[test]
    fn lemma5_bound_holds_empirically() {
        let beta: f64 = 0.4;
        let mut rng = StdRng::seed_from_u64(17);
        let shifts: Vec<f64> = (0..30).map(|i| (i as f64) * 0.3).collect();
        let trials = 20_000;
        let hits = (0..trials)
            .filter(|_| top_two_within_margin(&shifts, beta, &mut rng).unwrap())
            .count() as f64
            / trials as f64;
        let bound = 1.0 - (-beta).exp();
        // Allow 3 sigma of sampling noise above the bound.
        let sigma = (bound * (1.0 - bound) / trials as f64).sqrt();
        assert!(
            hits <= bound + 3.0 * sigma,
            "Lemma 5 violated: {hits} > {bound}"
        );
    }

    #[test]
    fn uniform_stream_is_pure_and_in_range() {
        for v in 0..1000 {
            let u = uniform(3, 1, v);
            assert!((0.0..1.0).contains(&u));
            assert_eq!(u, uniform(3, 1, v));
        }
        assert_ne!(uniform(3, 1, 5), uniform(3, 2, 5));
        assert_ne!(uniform(3, 1, 5), uniform(4, 1, 5));
    }

    #[test]
    fn lemma5_single_element_never_within_margin() {
        let mut rng = StdRng::seed_from_u64(3);
        assert!(!top_two_within_margin(&[0.0], 0.5, &mut rng).unwrap());
        assert!(!top_two_within_margin(&[], 0.5, &mut rng).unwrap());
    }
}

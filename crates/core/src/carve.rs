//! One phase of block carving: the shifted-shortest-path propagation.
//!
//! Given the current graph `G_t` (the subgraph induced by the alive set) and
//! a shift `r_v` per alive vertex, every vertex `y` must learn the two
//! largest values of `m_v = r_v − d_{G_t}(y, v)` over all `v` whose
//! (truncated) broadcast reaches it, then join the block iff
//! `m₁ − m₂ > 1`, choosing `v₁` as its center.
//!
//! [`carve_phase`] computes this **exactly** — it is a centralized
//! simulation of the `k` communication rounds, implemented as a multi-source
//! best-two Dijkstra over the keys `r_v − d`. Only a vertex's two best
//! distinct-origin labels are ever expanded, which is sound for precisely
//! the reason the paper gives for its CONGEST implementation: if two
//! distinct origins dominate a label at `y`, they dominate it (and outlive
//! it, since `m_a > m_b` implies `⌊m_a⌋ ≥ ⌊m_b⌋`, so the dominators'
//! remaining broadcast ranges are no shorter) at every vertex reachable
//! through `y`.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use netdecomp_graph::{Graph, VertexId, VertexSet};

/// What one vertex decided in one phase.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CarveDecision {
    /// The best value `m₁ = r_{v₁} − d(y, v₁)`.
    pub m1: f64,
    /// The vertex achieving `m₁` (the would-be center).
    pub center: VertexId,
    /// The second best value `m₂` (0 when only one broadcast arrived, as the
    /// paper defines).
    pub m2: f64,
    /// `true` iff `m₁ − m₂ > 1`: the vertex joins the block this phase.
    pub joined: bool,
}

/// Result of one carving phase over the alive set.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseResult {
    /// Decision per vertex; `None` for vertices outside the alive set.
    pub decisions: Vec<Option<CarveDecision>>,
    /// Number of alive vertices whose `⌊r_v⌋` exceeded the cap (event `E_v`
    /// of Lemma 1); their broadcasts were truncated at the cap.
    pub truncated: usize,
    /// Largest shift sampled among alive vertices this phase.
    pub max_shift: f64,
}

impl PhaseResult {
    /// The vertices that joined the block this phase.
    #[must_use]
    pub fn joined(&self) -> Vec<VertexId> {
        self.decisions
            .iter()
            .enumerate()
            .filter_map(|(v, d)| match d {
                Some(d) if d.joined => Some(v),
                _ => None,
            })
            .collect()
    }
}

/// A propagation label in the heap: origin's broadcast as seen at `vertex`.
#[derive(Debug, Clone, Copy, PartialEq)]
struct HeapLabel {
    value: f64,
    origin: VertexId,
    vertex: VertexId,
    dist: usize,
}

impl Eq for HeapLabel {}

impl Ord for HeapLabel {
    fn cmp(&self, other: &Self) -> Ordering {
        // Max-heap on value; ties broken toward the smaller origin id, then
        // the smaller vertex id, so pop order is fully deterministic.
        self.value
            .total_cmp(&other.value)
            .then_with(|| other.origin.cmp(&self.origin))
            .then_with(|| other.vertex.cmp(&self.vertex))
            .then_with(|| other.dist.cmp(&self.dist))
    }
}

impl PartialOrd for HeapLabel {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Per-vertex record of the best two distinct-origin labels.
#[derive(Debug, Clone, Copy, Default)]
struct TopTwo {
    slots: [Option<(f64, VertexId)>; 2],
}

impl TopTwo {
    fn has_origin(&self, origin: VertexId) -> bool {
        self.slots.iter().flatten().any(|&(_, o)| o == origin)
    }

    fn is_full(&self) -> bool {
        self.slots.iter().all(Option::is_some)
    }

    /// Inserts keeping slot 0 as the better label (value desc, then origin
    /// asc). Caller guarantees the origin is new and a slot is free **or**
    /// the label belongs above an existing slot (push order guarantees
    /// values arrive non-increasing, so simple append-then-sort suffices).
    fn insert(&mut self, value: f64, origin: VertexId) {
        debug_assert!(!self.has_origin(origin));
        if self.slots[0].is_none() {
            self.slots[0] = Some((value, origin));
        } else {
            debug_assert!(self.slots[1].is_none());
            self.slots[1] = Some((value, origin));
        }
    }
}

/// Executes one carving phase with the paper's join margin of 1.
///
/// - `alive`: the vertex set of the current graph `G_t`.
/// - `shifts[v]`: the sampled `r_v` (only alive entries are read).
/// - `cap`: broadcast radius cap — the number of communication rounds the
///   phase is allotted (`k` for Theorems 1 and 2). Broadcasts whose `⌊r_v⌋`
///   exceeds it are truncated at `cap` hops and counted in
///   [`PhaseResult::truncated`].
///
/// # Panics
///
/// Panics if `alive`'s universe or `shifts`' length differ from the graph's
/// vertex count.
#[must_use]
pub fn carve_phase(g: &Graph, alive: &VertexSet, shifts: &[f64], cap: usize) -> PhaseResult {
    carve_phase_with_margin(g, alive, shifts, cap, 1.0)
}

/// [`carve_phase`] with an explicit join margin `θ` (join iff
/// `m₁ − m₂ > θ`).
///
/// The paper fixes `θ = 1`; this generalization exists for the ablation
/// experiment (E13): the proof of Lemma 4 uses `θ = 1` exactly — vertices
/// one hop apart see values differing by at most 1, so any `θ < 1` lets
/// adjacent vertices adopt different centers inside one connected block
/// (breaking the strong-diameter argument), while `θ > 1` only slows the
/// carving down (Lemma 5's per-phase join probability shrinks).
///
/// # Panics
///
/// Panics on mismatched sizes (as [`carve_phase`]) or a negative/NaN
/// margin.
#[must_use]
pub fn carve_phase_with_margin(
    g: &Graph,
    alive: &VertexSet,
    shifts: &[f64],
    cap: usize,
    margin: f64,
) -> PhaseResult {
    assert!(
        margin.is_finite() && margin >= 0.0,
        "margin must be finite and nonnegative"
    );
    let n = g.vertex_count();
    assert_eq!(alive.universe(), n, "alive universe must match graph");
    assert_eq!(shifts.len(), n, "one shift per vertex");

    let mut tops: Vec<TopTwo> = vec![TopTwo::default(); n];
    let mut heap: BinaryHeap<HeapLabel> = BinaryHeap::new();
    let mut truncated = 0usize;
    let mut max_shift = 0.0f64;

    for v in alive.iter() {
        let r = shifts[v];
        debug_assert!(r >= 0.0, "shifts are nonnegative");
        max_shift = max_shift.max(r);
        if (r.floor() as usize) > cap {
            truncated += 1;
        }
        heap.push(HeapLabel {
            value: r,
            origin: v,
            vertex: v,
            dist: 0,
        });
    }

    while let Some(label) = heap.pop() {
        let t = &mut tops[label.vertex];
        if t.has_origin(label.origin) || t.is_full() {
            // Stale (same origin arrived with a better value) or dominated
            // by two distinct origins: this label is irrelevant everywhere
            // downstream too.
            continue;
        }
        t.insert(label.value, label.origin);
        // Expand: the origin's broadcast travels one more hop if its radius
        // (and the phase's round budget) allow.
        let radius = (shifts[label.origin].floor() as usize).min(cap);
        let next_dist = label.dist + 1;
        if next_dist > radius {
            continue;
        }
        for &z in g.neighbors(label.vertex) {
            if alive.contains(z) && !tops[z].is_full() && !tops[z].has_origin(label.origin) {
                heap.push(HeapLabel {
                    value: label.value - 1.0,
                    origin: label.origin,
                    vertex: z,
                    dist: next_dist,
                });
            }
        }
    }

    let mut decisions: Vec<Option<CarveDecision>> = vec![None; n];
    for y in alive.iter() {
        let t = &tops[y];
        let (m1, center) = t.slots[0].expect("every alive vertex hears itself");
        let m2 = t.slots[1].map_or(0.0, |(v, _)| v);
        decisions[y] = Some(CarveDecision {
            m1,
            center,
            m2,
            joined: m1 - m2 > margin,
        });
    }
    PhaseResult {
        decisions,
        truncated,
        max_shift,
    }
}

#[cfg(test)]
#[allow(clippy::needless_range_loop)]
mod tests {
    use super::*;
    use netdecomp_graph::generators;

    fn full(n: usize) -> VertexSet {
        VertexSet::full(n)
    }

    #[test]
    fn isolated_vertex_joins_iff_shift_above_one() {
        let g = Graph::empty(2);
        let res = carve_phase(&g, &full(2), &[1.5, 0.5], 3);
        let d0 = res.decisions[0].unwrap();
        assert!(d0.joined); // m1 = 1.5, m2 = 0
        assert_eq!(d0.center, 0);
        let d1 = res.decisions[1].unwrap();
        assert!(!d1.joined); // m1 = 0.5 - 0 = 0.5 <= 1
    }

    #[test]
    fn single_dominant_center_captures_path() {
        // Vertex 0 has a huge shift; everyone within radius joins with
        // center 0.
        let g = generators::path(5);
        let shifts = [4.5, 0.0, 0.0, 0.0, 0.0];
        let res = carve_phase(&g, &full(5), &shifts, 10);
        for v in 0..5 {
            let d = res.decisions[v].unwrap();
            assert_eq!(d.center, 0, "vertex {v}");
            assert!((d.m1 - (4.5 - v as f64)).abs() < 1e-12);
        }
        // m2 = 0 everywhere (all other broadcasts have radius 0), so a
        // vertex joins iff 4.5 - d(0, v) > 1, i.e. d <= 3.
        for v in 0..4 {
            assert!(res.decisions[v].unwrap().joined, "vertex {v} should join");
        }
        assert!(!res.decisions[4].unwrap().joined, "4.5 - 4 = 0.5 <= 1");
        assert_eq!(res.joined().len(), 4);
    }

    #[test]
    fn radius_truncation_respects_cap() {
        // Same dominant center but cap 2: vertices 3, 4 never hear it.
        let g = generators::path(5);
        let shifts = [4.5, 0.0, 0.0, 0.0, 0.0];
        let res = carve_phase(&g, &full(5), &shifts, 2);
        assert_eq!(res.truncated, 1); // floor(4.5) = 4 > 2
        let d3 = res.decisions[3].unwrap();
        assert_ne!(d3.center, 0);
        let d2 = res.decisions[2].unwrap();
        assert_eq!(d2.center, 0); // distance 2 <= cap
    }

    #[test]
    fn competing_centers_split_a_path() {
        // Two strong centers at the ends; the middle hears both and the
        // difference there is small, so the midpoint stays out.
        let g = generators::path(7);
        let shifts = [5.2, 0.0, 0.0, 0.0, 0.0, 0.0, 5.2];
        let res = carve_phase(&g, &full(7), &shifts, 10);
        // Vertex 3 hears 5.2-3 = 2.2 from both ends: m1 - m2 = 0.
        let d3 = res.decisions[3].unwrap();
        assert!(!d3.joined);
        // Vertex 1 hears 4.2 from 0 and 5.2-5 = 0.2 from 6: joins 0.
        let d1 = res.decisions[1].unwrap();
        assert!(d1.joined);
        assert_eq!(d1.center, 0);
        // Vertex 5 symmetric.
        let d5 = res.decisions[5].unwrap();
        assert!(d5.joined);
        assert_eq!(d5.center, 6);
    }

    #[test]
    fn margin_exactly_one_does_not_join() {
        // Two vertices, shifts engineered so m1 - m2 == 1 exactly.
        let g = generators::path(2);
        let shifts = [3.0, 1.0]; // at vertex 1: m = [3.0 - 1, 1.0] = [2, 1]
        let res = carve_phase(&g, &full(2), &shifts, 5);
        let d1 = res.decisions[1].unwrap();
        assert!((d1.m1 - 2.0).abs() < 1e-12);
        assert!((d1.m2 - 1.0).abs() < 1e-12);
        assert!(!d1.joined, "strict inequality required");
    }

    #[test]
    fn dead_vertices_do_not_relay() {
        // Path 0-1-2 with vertex 1 dead: 0's broadcast cannot reach 2.
        let g = generators::path(3);
        let mut alive = VertexSet::full(3);
        alive.remove(1);
        let shifts = [9.0, 0.0, 0.1];
        let res = carve_phase(&g, &alive, &shifts, 10);
        assert!(res.decisions[1].is_none());
        let d2 = res.decisions[2].unwrap();
        assert_eq!(d2.center, 2, "vertex 2 only hears itself");
        assert!((d2.m1 - 0.1).abs() < 1e-12);
    }

    #[test]
    fn observation2_holds_for_joiners() {
        // Observation 2: a joiner y with center v has d(v,y) < r_v - 1.
        let g = generators::grid2d(6, 6);
        let alive = full(36);
        let shifts: Vec<f64> = (0..36)
            .map(|v| crate::shift::ShiftSource::new(11, 0.7).unwrap().shift(0, v))
            .collect();
        let res = carve_phase(&g, &alive, &shifts, 8);
        let dist_cache: Vec<Vec<Option<usize>>> = (0..36)
            .map(|v| netdecomp_graph::bfs::distances_restricted(&g, v, &alive))
            .collect();
        for y in 0..36 {
            let d = res.decisions[y].unwrap();
            if d.joined {
                let dist = dist_cache[d.center][y].expect("center reachable");
                assert!(
                    (dist as f64) < shifts[d.center] - 1.0,
                    "Observation 2 violated at {y}"
                );
            }
        }
    }

    #[test]
    fn every_alive_vertex_gets_a_decision() {
        let g = generators::cycle(12);
        let shifts: Vec<f64> = (0..12).map(|v| 0.3 * v as f64).collect();
        let res = carve_phase(&g, &full(12), &shifts, 4);
        assert!(res.decisions.iter().all(Option::is_some));
        assert!((res.max_shift - 3.3).abs() < 1e-12);
    }

    #[test]
    fn own_value_is_a_lower_bound_on_m1() {
        let g = generators::cycle(10);
        let shifts: Vec<f64> = (0..10).map(|v| (v as f64) * 0.17).collect();
        let res = carve_phase(&g, &full(10), &shifts, 5);
        for v in 0..10 {
            let d = res.decisions[v].unwrap();
            assert!(d.m1 >= shifts[v] - 1e-12, "m1 below own shift at {v}");
        }
    }

    #[test]
    fn zero_margin_joins_everyone() {
        // theta = 0: every vertex has m1 - m2 >= 0... strictly greater than
        // 0 whenever there is any asymmetry; with distinct shifts all
        // vertices join (MPX-style one-shot partition).
        let g = generators::path(6);
        let shifts: Vec<f64> = (0..6).map(|v| 2.0 + 0.1 * v as f64).collect();
        let res = carve_phase_with_margin(&g, &full(6), &shifts, 10, 0.0);
        assert_eq!(res.joined().len(), 6);
    }

    #[test]
    fn larger_margin_joins_fewer() {
        let g = generators::grid2d(6, 6);
        let src = crate::shift::ShiftSource::new(3, 0.6).unwrap();
        let shifts: Vec<f64> = (0..36).map(|v| src.shift(0, v)).collect();
        let low = carve_phase_with_margin(&g, &full(36), &shifts, 6, 0.5);
        let mid = carve_phase(&g, &full(36), &shifts, 6);
        let high = carve_phase_with_margin(&g, &full(36), &shifts, 6, 2.0);
        assert!(low.joined().len() >= mid.joined().len());
        assert!(mid.joined().len() >= high.joined().len());
    }

    #[test]
    #[should_panic(expected = "margin must be finite")]
    fn negative_margin_panics() {
        let g = generators::path(2);
        let _ = carve_phase_with_margin(&g, &full(2), &[0.0, 0.0], 1, -1.0);
    }

    #[test]
    fn claim3_path_containment_for_joiners() {
        // Claim 3: if y joined with center v, every vertex on a shortest
        // path from v to y in G_t joined with center v too.
        use netdecomp_graph::bfs;
        for seed in 0..6u64 {
            let g = generators::grid2d(6, 6);
            let n = 36;
            let alive = full(n);
            let src = crate::shift::ShiftSource::new(seed, 0.7).unwrap();
            let shifts: Vec<f64> = (0..n).map(|v| src.shift(0, v)).collect();
            // Use a large cap so no truncation interferes with the claim.
            let res = carve_phase(&g, &alive, &shifts, 100);
            for y in 0..n {
                let d = res.decisions[y].unwrap();
                if !d.joined || d.center == y {
                    continue;
                }
                // Walk one shortest path from y back to the center greedily.
                let dist_from_center = bfs::distances_restricted(&g, d.center, &alive);
                let mut cur = y;
                while cur != d.center {
                    let dc = dist_from_center[cur].expect("reachable");
                    let next = g
                        .neighbors(cur)
                        .iter()
                        .copied()
                        .find(|&z| dist_from_center[z] == Some(dc - 1))
                        .expect("a predecessor exists on a shortest path");
                    let nd = res.decisions[next].unwrap();
                    assert!(nd.joined, "seed {seed}: path vertex {next} not joined");
                    assert_eq!(
                        nd.center, d.center,
                        "seed {seed}: path vertex {next} chose another center"
                    );
                    cur = next;
                }
            }
        }
    }

    #[test]
    fn brute_force_agreement_on_small_graphs() {
        // Compare the pruned Dijkstra against a brute-force evaluation of
        // m_v = r_v - d(y, v) with radius truncation.
        use netdecomp_graph::bfs;
        let seeds = [1u64, 2, 3];
        for seed in seeds {
            let src = crate::shift::ShiftSource::new(seed, 0.9).unwrap();
            let g = generators::grid2d(4, 4);
            let n = 16;
            let alive = full(n);
            let cap = 4usize;
            let shifts: Vec<f64> = (0..n).map(|v| src.shift(0, v)).collect();
            let res = carve_phase(&g, &alive, &shifts, cap);
            for y in 0..n {
                // Brute force: collect r_v - d for all v with d <= min(floor(r_v), cap).
                let mut vals: Vec<(f64, usize)> = Vec::new();
                for v in 0..n {
                    let d = bfs::distances_restricted(&g, v, &alive)[y];
                    if let Some(d) = d {
                        let radius = (shifts[v].floor() as usize).min(cap);
                        if d <= radius {
                            vals.push((shifts[v] - d as f64, v));
                        }
                    }
                }
                vals.sort_by(|a, b| b.0.total_cmp(&a.0).then_with(|| a.1.cmp(&b.1)));
                let expect_m1 = vals[0].0;
                let expect_center = vals[0].1;
                let expect_m2 = vals.get(1).map_or(0.0, |x| x.0);
                let d = res.decisions[y].unwrap();
                assert_eq!(
                    d.center, expect_center,
                    "center mismatch at {y} (seed {seed})"
                );
                assert!((d.m1 - expect_m1).abs() < 1e-12);
                assert!((d.m2 - expect_m2).abs() < 1e-12);
            }
        }
    }
}

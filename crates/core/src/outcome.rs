//! Run records: what an execution of the algorithm produced and observed.

use serde::Serialize;

use crate::NetworkDecomposition;

/// Log of low-probability events during a run (Lemma 1's events `E_v`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Default)]
pub struct EventLog {
    /// Number of (phase, vertex) pairs whose sampled radius exceeded the
    /// broadcast cap, i.e. `r_v ≥ k + 1` — the event `E_v` of Lemma 1. The
    /// broadcast is truncated at the cap when this happens, so the diameter
    /// guarantee holds only when this count is zero.
    pub truncation_events: usize,
    /// The largest shift sampled anywhere in the run.
    pub max_shift: f64,
}

impl EventLog {
    /// `true` when no `E_v` event occurred (the `1 − 2/c` case of Lemma 1).
    #[must_use]
    pub fn clean(&self) -> bool {
        self.truncation_events == 0
    }
}

/// Per-phase observations, the raw series behind the survival-curve
/// experiments (Claims 6 and 8).
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct PhaseTraceEntry {
    /// Phase index `t` (0-based).
    pub phase: usize,
    /// The exponential rate β in effect this phase.
    pub beta: f64,
    /// Alive vertices at the start of the phase.
    pub alive_before: usize,
    /// Vertices carved into the block `W_t` this phase.
    pub carved: usize,
    /// Clusters (connected components of `G(W_t)`) formed this phase.
    pub clusters_formed: usize,
}

/// The complete result of one decomposition run.
#[derive(Debug, Clone, PartialEq)]
pub struct DecompositionOutcome {
    decomposition: NetworkDecomposition,
    phases_used: usize,
    phase_budget: usize,
    trace: Vec<PhaseTraceEntry>,
    events: EventLog,
    mixed_center_clusters: usize,
}

impl DecompositionOutcome {
    pub(crate) fn new(
        decomposition: NetworkDecomposition,
        phases_used: usize,
        phase_budget: usize,
        trace: Vec<PhaseTraceEntry>,
        events: EventLog,
        mixed_center_clusters: usize,
    ) -> Self {
        DecompositionOutcome {
            decomposition,
            phases_used,
            phase_budget,
            trace,
            events,
            mixed_center_clusters,
        }
    }

    /// The decomposition that was built.
    #[must_use]
    pub fn decomposition(&self) -> &NetworkDecomposition {
        &self.decomposition
    }

    /// Consumes the outcome, yielding the decomposition.
    #[must_use]
    pub fn into_decomposition(self) -> NetworkDecomposition {
        self.decomposition
    }

    /// Phases actually executed until the graph was exhausted (or the run
    /// stopped).
    #[must_use]
    pub fn phases_used(&self) -> usize {
        self.phases_used
    }

    /// The theorem's phase budget `λ` for this run.
    #[must_use]
    pub fn phase_budget(&self) -> usize {
        self.phase_budget
    }

    /// `true` if the graph was exhausted within the theorem's phase budget —
    /// the event Corollary 7 gives probability `≥ 1 − 1/c`.
    #[must_use]
    pub fn exhausted_within_budget(&self) -> bool {
        self.decomposition.partition().is_complete() && self.phases_used <= self.phase_budget
    }

    /// Per-phase observations.
    #[must_use]
    pub fn trace(&self) -> &[PhaseTraceEntry] {
        &self.trace
    }

    /// Low-probability event log.
    #[must_use]
    pub fn events(&self) -> &EventLog {
        &self.events
    }

    /// Number of clusters whose members disagreed about their center (never
    /// happens unless a broadcast was truncated; see Lemma 4).
    #[must_use]
    pub fn mixed_center_clusters(&self) -> usize {
        self.mixed_center_clusters
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netdecomp_graph::Partition;

    #[test]
    fn event_log_clean() {
        assert!(EventLog::default().clean());
        let e = EventLog {
            truncation_events: 2,
            max_shift: 9.0,
        };
        assert!(!e.clean());
    }

    #[test]
    fn outcome_accessors() {
        let mut p = Partition::new(2);
        p.push_cluster(&[0, 1]);
        let d = NetworkDecomposition::from_parts(p, vec![0], vec![0]);
        let o = DecompositionOutcome::new(
            d,
            3,
            10,
            vec![PhaseTraceEntry {
                phase: 0,
                beta: 1.0,
                alive_before: 2,
                carved: 2,
                clusters_formed: 1,
            }],
            EventLog::default(),
            0,
        );
        assert_eq!(o.phases_used(), 3);
        assert_eq!(o.phase_budget(), 10);
        assert!(o.exhausted_within_budget());
        assert_eq!(o.trace().len(), 1);
        assert_eq!(o.mixed_center_clusters(), 0);
        assert_eq!(o.decomposition().cluster_count(), 1);
        assert_eq!(o.into_decomposition().cluster_count(), 1);
    }

    #[test]
    fn over_budget_or_incomplete_is_not_exhausted() {
        let mut p = Partition::new(2);
        p.push_cluster(&[0, 1]);
        let d = NetworkDecomposition::from_parts(p, vec![0], vec![0]);
        let o = DecompositionOutcome::new(d, 11, 10, vec![], EventLog::default(), 0);
        assert!(!o.exhausted_within_budget());

        let mut p = Partition::new(2);
        p.push_cluster(&[0]);
        let d = NetworkDecomposition::from_parts(p, vec![0], vec![0]);
        let o = DecompositionOutcome::new(d, 2, 10, vec![], EventLog::default(), 0);
        assert!(!o.exhausted_within_budget());
    }
}

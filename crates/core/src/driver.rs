//! Shared phase loop used by all three theorem variants.

use netdecomp_graph::{components, Graph, Partition, VertexId, VertexSet};

use crate::carve::{self, PhaseResult};
use crate::outcome::{DecompositionOutcome, EventLog, PhaseTraceEntry};
use crate::shift::ShiftSource;
use crate::{DecompError, NetworkDecomposition};

/// Per-phase plan: which rate and radius cap to use.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct PhasePlan {
    /// Exponential rate β for this phase.
    pub beta: f64,
    /// Broadcast radius cap (= communication rounds allotted to the phase).
    pub cap: usize,
}

/// Stop policy once the theorem's phase budget is exceeded.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BudgetPolicy {
    /// Keep carving until the graph is exhausted, recording the overrun
    /// (default: experiments then report how often the budget sufficed,
    /// which is exactly the probability the theorems bound).
    #[default]
    ContinueUntilEmpty,
    /// Stop at the budget, possibly leaving vertices unassigned.
    StopAtBudget,
}

/// Hard safety multiple of the phase budget after which the driver aborts
/// (the probability of ever reaching this is astronomically small; it guards
/// against hangs on adversarial float inputs).
const HARD_BUDGET_MULTIPLE: usize = 64;

pub(crate) fn run_phases<F>(
    graph: &Graph,
    seed: u64,
    budget: usize,
    policy: BudgetPolicy,
    plan_for_phase: F,
) -> Result<DecompositionOutcome, DecompError>
where
    F: Fn(usize) -> PhasePlan,
{
    run_phases_with_carver(
        graph,
        seed,
        budget,
        policy,
        plan_for_phase,
        |graph, alive, shifts, cap| Ok(carve::carve_phase(graph, alive, shifts, cap)),
    )
}

/// Generalized phase loop: `carver` computes each phase's decisions — either
/// the centralized simulation ([`carve::carve_phase`]) or a full
/// message-passing execution (`crate::distributed`). Everything around it
/// (sampling, block assembly, bookkeeping) is shared, so the two paths can
/// only differ in the per-phase decisions themselves.
pub(crate) fn run_phases_with_carver<F, C>(
    graph: &Graph,
    seed: u64,
    budget: usize,
    policy: BudgetPolicy,
    plan_for_phase: F,
    mut carver: C,
) -> Result<DecompositionOutcome, DecompError>
where
    F: Fn(usize) -> PhasePlan,
    C: FnMut(&Graph, &VertexSet, &[f64], usize) -> Result<PhaseResult, DecompError>,
{
    let n = graph.vertex_count();
    let mut alive = VertexSet::full(n);
    let mut partition = Partition::new(n);
    let mut cluster_blocks: Vec<usize> = Vec::new();
    let mut cluster_centers: Vec<VertexId> = Vec::new();
    let mut trace: Vec<PhaseTraceEntry> = Vec::new();
    let mut events = EventLog::default();
    let mut mixed_center_clusters = 0usize;

    let hard_max = budget
        .saturating_mul(HARD_BUDGET_MULTIPLE)
        .saturating_add(1024);
    let mut phase = 0usize;
    while !alive.is_empty() {
        if phase >= budget && policy == BudgetPolicy::StopAtBudget {
            break;
        }
        if phase >= hard_max {
            break;
        }
        let plan = plan_for_phase(phase);
        let source = ShiftSource::new(seed, plan.beta)?;
        let mut shifts = vec![0.0f64; n];
        for v in alive.iter() {
            shifts[v] = source.shift(phase as u64, v);
        }
        let result: PhaseResult = carver(graph, &alive, &shifts, plan.cap)?;
        events.truncation_events += result.truncated;
        events.max_shift = events.max_shift.max(result.max_shift);

        let joined = result.joined();
        let alive_before = alive.len();
        let mut clusters_formed = 0usize;
        if !joined.is_empty() {
            let mut block: VertexSet = VertexSet::new(n);
            for &v in &joined {
                block.insert(v);
            }
            let comps = components::components_restricted(graph, &block);
            for group in comps.groups() {
                // Lemma 4: all members of a connected component of the block
                // chose the same center (except, possibly, under truncation).
                let first_center = result.decisions[group[0]]
                    .expect("joined vertices have decisions")
                    .center;
                let consistent = group.iter().all(|&v| {
                    result.decisions[v]
                        .expect("joined vertices have decisions")
                        .center
                        == first_center
                });
                if !consistent {
                    mixed_center_clusters += 1;
                }
                partition.push_cluster(&group);
                cluster_blocks.push(phase);
                cluster_centers.push(first_center);
                clusters_formed += 1;
            }
            for &v in &joined {
                alive.remove(v);
            }
        }
        trace.push(PhaseTraceEntry {
            phase,
            beta: plan.beta,
            alive_before,
            carved: joined.len(),
            clusters_formed,
        });
        phase += 1;
    }

    let decomposition =
        NetworkDecomposition::from_parts(partition, cluster_blocks, cluster_centers);
    Ok(DecompositionOutcome::new(
        decomposition,
        phase,
        budget,
        trace,
        events,
        mixed_center_clusters,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use netdecomp_graph::generators;

    #[test]
    fn driver_exhausts_a_small_cycle() {
        let g = generators::cycle(12);
        let outcome = run_phases(&g, 3, 100, BudgetPolicy::ContinueUntilEmpty, |_| {
            PhasePlan { beta: 1.0, cap: 3 }
        })
        .unwrap();
        assert!(outcome.decomposition().partition().is_complete());
        assert!(outcome.phases_used() >= 1);
        assert_eq!(outcome.trace().len(), outcome.phases_used());
    }

    #[test]
    fn stop_at_budget_can_leave_vertices() {
        let g = generators::complete(30);
        // beta tiny => joining is rare => one phase almost surely leaves
        // most vertices unassigned.
        let outcome = run_phases(&g, 5, 1, BudgetPolicy::StopAtBudget, |_| PhasePlan {
            beta: 8.0,
            cap: 2,
        })
        .unwrap();
        assert!(outcome.phases_used() <= 1);
    }

    #[test]
    fn trace_alive_counts_are_monotone() {
        let g = generators::grid2d(5, 5);
        let outcome = run_phases(&g, 7, 500, BudgetPolicy::ContinueUntilEmpty, |_| {
            PhasePlan { beta: 0.8, cap: 4 }
        })
        .unwrap();
        let trace = outcome.trace();
        for w in trace.windows(2) {
            assert!(w[1].alive_before <= w[0].alive_before);
            assert_eq!(w[0].alive_before - w[0].carved, w[1].alive_before);
        }
        // Everything eventually carved.
        let total: usize = trace.iter().map(|t| t.carved).sum();
        assert_eq!(total, 25);
    }

    #[test]
    fn zero_vertex_graph_finishes_immediately() {
        let g = netdecomp_graph::Graph::empty(0);
        let outcome = run_phases(&g, 1, 10, BudgetPolicy::ContinueUntilEmpty, |_| PhasePlan {
            beta: 1.0,
            cap: 1,
        })
        .unwrap();
        assert_eq!(outcome.phases_used(), 0);
        assert!(outcome.exhausted_within_budget());
    }
}

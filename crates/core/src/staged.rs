//! Theorem 2: the staged variant with an improved number of blocks.
//!
//! Instead of one fixed rate, the algorithm runs `ln n` *stages*: stage `i`
//! lasts `s_i = 2(cn/eⁱ)^{1/k}` phases with rate `β_i = ln(cn/eⁱ)/k`.
//! Decreasing β raises the per-phase join probability (Claim 8 gives
//! survival `≤ e^{−2i}` into stage `i`), which compresses the total number
//! of phases — and hence colors — to `4k(cn)^{1/k}`, at the cost of a
//! slightly worse failure probability (`5/c` instead of `3/c`).

use netdecomp_graph::Graph;

use crate::driver::{run_phases, BudgetPolicy, PhasePlan};
use crate::outcome::DecompositionOutcome;
use crate::params::StagedParams;
use crate::DecompError;

/// Maps a global phase index to its stage under the schedule `s_0, s_1, …`.
///
/// Phases past the last stage reuse the final stage's parameters (this only
/// matters for the overrun the driver may record).
fn stage_of_phase(params: &StagedParams, n: usize, phase: usize) -> usize {
    let stages = params.stage_count(n);
    let mut cursor = 0usize;
    for i in 0..stages {
        cursor += params.stage_phases(n, i);
        if phase < cursor {
            return i;
        }
    }
    stages.saturating_sub(1)
}

/// Runs Theorem 2's staged algorithm.
///
/// # Errors
///
/// [`DecompError::InvalidParameter`] if a derived rate is degenerate (cannot
/// happen for validated [`StagedParams`]).
///
/// # Example
///
/// ```
/// use netdecomp_core::{staged, params::StagedParams};
/// use netdecomp_graph::generators;
///
/// let g = generators::grid2d(6, 6);
/// let params = StagedParams::new(3, 6.0)?;
/// let outcome = staged::decompose(&g, &params, 5)?;
/// assert!(outcome.decomposition().partition().is_complete());
/// # Ok::<(), netdecomp_core::DecompError>(())
/// ```
pub fn decompose(
    graph: &Graph,
    params: &StagedParams,
    seed: u64,
) -> Result<DecompositionOutcome, DecompError> {
    decompose_with_policy(graph, params, seed, BudgetPolicy::ContinueUntilEmpty)
}

/// [`decompose`] with an explicit budget policy.
///
/// # Errors
///
/// Same as [`decompose`].
pub fn decompose_with_policy(
    graph: &Graph,
    params: &StagedParams,
    seed: u64,
    policy: BudgetPolicy,
) -> Result<DecompositionOutcome, DecompError> {
    let n = graph.vertex_count();
    let cap = params.radius_cap();
    let budget: usize = (0..params.stage_count(n))
        .map(|i| params.stage_phases(n, i))
        .sum();
    let p = *params;
    run_phases(graph, seed, budget, policy, move |phase| {
        let stage = stage_of_phase(&p, n, phase);
        PhasePlan {
            beta: p.stage_beta(n, stage),
            cap,
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify;
    use netdecomp_graph::generators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn stage_schedule_is_consistent() {
        let params = StagedParams::new(3, 6.0).unwrap();
        let n = 500;
        // First phase of stage 0.
        assert_eq!(stage_of_phase(&params, n, 0), 0);
        // Walk the schedule and verify monotonicity.
        let mut previous = 0;
        for phase in 0..2000 {
            let s = stage_of_phase(&params, n, phase);
            assert!(s >= previous);
            assert!(s < params.stage_count(n));
            previous = s;
        }
        // Far past the schedule: clamps to the last stage.
        assert_eq!(
            stage_of_phase(&params, n, usize::MAX / 2),
            params.stage_count(n) - 1
        );
    }

    #[test]
    fn staged_produces_valid_decomposition() {
        let mut rng = StdRng::seed_from_u64(4);
        let g = generators::gnp(250, 0.04, &mut rng).unwrap();
        let params = StagedParams::new(4, 6.0).unwrap();
        let outcome = decompose(&g, &params, 11).unwrap();
        let report = verify::verify(&g, outcome.decomposition()).unwrap();
        assert!(report.complete);
        assert!(report.supergraph_properly_colored);
        if outcome.events().clean() {
            assert!(report.is_valid_strong(params.diameter_bound()));
        }
    }

    #[test]
    fn staged_tends_to_use_fewer_colors_than_basic() {
        // The whole point of Theorem 2: block count O(k n^{1/k}) vs
        // O(n^{1/k} log n). Compare on a mid-size instance, averaged over
        // seeds so the test is stable.
        use crate::params::DecompositionParams;
        let g = generators::grid2d(12, 12);
        let k = 3;
        let mut basic_sum = 0usize;
        let mut staged_sum = 0usize;
        for seed in 0..5u64 {
            let b = crate::basic::decompose(&g, &DecompositionParams::new(k, 6.0).unwrap(), seed)
                .unwrap();
            let s = decompose(&g, &StagedParams::new(k, 6.0).unwrap(), seed).unwrap();
            basic_sum += b.decomposition().block_count();
            staged_sum += s.decomposition().block_count();
        }
        assert!(
            staged_sum < basic_sum,
            "staged used {staged_sum} blocks vs basic {basic_sum}"
        );
    }

    #[test]
    fn deterministic_under_seed() {
        let g = generators::cycle(40);
        let params = StagedParams::new(2, 6.0).unwrap();
        let a = decompose(&g, &params, 5).unwrap();
        let b = decompose(&g, &params, 5).unwrap();
        assert_eq!(a.decomposition(), b.decomposition());
    }

    #[test]
    fn stop_at_budget_policy_respected() {
        let g = generators::complete(40);
        let params = StagedParams::new(2, 6.0).unwrap();
        let outcome = decompose_with_policy(&g, &params, 1, BudgetPolicy::StopAtBudget).unwrap();
        assert!(outcome.phases_used() <= outcome.phase_budget());
    }
}

//! Strong-diameter network decomposition — Elkin & Neiman, PODC 2016.
//!
//! A `(D, χ)` *network decomposition* partitions a graph into clusters of
//! diameter at most `D` such that the cluster graph `G(P)` is properly
//! `χ`-colorable. This crate implements the paper's randomized distributed
//! algorithm, which computes **strong**-diameter decompositions (cluster
//! diameter measured inside the cluster's induced subgraph):
//!
//! - [`basic`] — Theorem 1: strong `(2k − 2, (cn)^{1/k}·ln(cn))` in
//!   `k(cn)^{1/k}·ln(cn)` rounds, success probability `≥ 1 − 3/c`.
//! - [`staged`] — Theorem 2: colors improved to `4k(cn)^{1/k}` by lowering
//!   the exponential rate stage by stage.
//! - [`high_radius`] — Theorem 3: the inverse tradeoff
//!   `(2(cn)^{1/λ}·ln(cn), λ)` for `λ ≤ ln n` colors.
//! - [`distributed`] — the same algorithm executed by actual message
//!   passing (CONGEST) on [`netdecomp_sim`], with the paper's top-two
//!   message pruning; bit-identical to the centralized simulation.
//! - [`verify`] — exhaustive checking of every property the theorems claim.
//! - [`shift`] — the exponential random shifts and Lemma 5 order
//!   statistics.
//!
//! In particular, for `k = ln n` this yields a strong
//! `(O(log n), O(log n))` decomposition in `O(log² n)` rounds — resolving
//! the open question of Linial & Saks (1993), whose algorithm (implemented
//! in `netdecomp-baselines`) guarantees only weak diameter.
//!
//! # Quickstart
//!
//! ```
//! use netdecomp_core::{basic, params::DecompositionParams, verify};
//! use netdecomp_graph::generators;
//!
//! let g = generators::grid2d(10, 10);
//! let params = DecompositionParams::for_graph_size(g.vertex_count());
//! let outcome = basic::decompose(&g, &params, 42)?;
//! let report = verify::verify(&g, outcome.decomposition())?;
//! assert!(report.complete && report.supergraph_properly_colored);
//! if outcome.events().clean() {
//!     assert!(report.is_valid_strong(params.diameter_bound()));
//! }
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod decomposition;
mod driver;
mod error;
mod outcome;

pub mod basic;
pub mod carve;
pub mod distributed;
pub mod high_radius;
pub mod params;
pub mod shift;
pub mod staged;
pub mod verify;

pub use decomposition::NetworkDecomposition;
pub use driver::BudgetPolicy;
pub use error::DecompError;
pub use outcome::{DecompositionOutcome, EventLog, PhaseTraceEntry};

//! Theorem 3: the high-radius regime — few colors, large diameter.
//!
//! Inverting the tradeoff of Theorem 1: to end up with only `λ ≤ ln n`
//! blocks, run `λ` phases with radius parameter `k = (cn)^{1/λ}·ln(cn)` and
//! rate `β = ln(cn)/k`. The result is a strong
//! `(2(cn)^{1/λ}·ln(cn), λ)` decomposition with probability `≥ 1 − 3/c`.

use netdecomp_graph::Graph;

use crate::driver::{run_phases, BudgetPolicy, PhasePlan};
use crate::outcome::DecompositionOutcome;
use crate::params::HighRadiusParams;
use crate::DecompError;

/// Runs Theorem 3's algorithm.
///
/// # Errors
///
/// [`DecompError::InvalidParameter`] if the derived rate is degenerate
/// (cannot happen for validated [`HighRadiusParams`]).
///
/// # Example
///
/// ```
/// use netdecomp_core::{high_radius, params::HighRadiusParams};
/// use netdecomp_graph::generators;
///
/// let g = generators::cycle(64);
/// let params = HighRadiusParams::new(3, 4.0)?;
/// let outcome = high_radius::decompose(&g, &params, 2)?;
/// // lambda = 3 colors at most (when the budget sufficed).
/// if outcome.exhausted_within_budget() {
///     assert!(outcome.decomposition().block_count() <= 3);
/// }
/// # Ok::<(), netdecomp_core::DecompError>(())
/// ```
pub fn decompose(
    graph: &Graph,
    params: &HighRadiusParams,
    seed: u64,
) -> Result<DecompositionOutcome, DecompError> {
    decompose_with_policy(graph, params, seed, BudgetPolicy::ContinueUntilEmpty)
}

/// [`decompose`] with an explicit budget policy.
///
/// # Errors
///
/// Same as [`decompose`].
pub fn decompose_with_policy(
    graph: &Graph,
    params: &HighRadiusParams,
    seed: u64,
    policy: BudgetPolicy,
) -> Result<DecompositionOutcome, DecompError> {
    let n = graph.vertex_count();
    let beta = params.beta(n);
    let cap = params.radius_cap(n);
    run_phases(graph, seed, params.phase_budget(), policy, move |_| {
        PhasePlan { beta, cap }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify;
    use netdecomp_graph::generators;

    #[test]
    fn few_blocks_large_diameter() {
        let g = generators::cycle(100);
        let params = HighRadiusParams::new(2, 4.0).unwrap();
        let outcome = decompose(&g, &params, 9).unwrap();
        let report = verify::verify(&g, outcome.decomposition()).unwrap();
        assert!(report.complete);
        assert!(report.supergraph_properly_colored);
        if outcome.exhausted_within_budget() {
            assert!(report.color_count <= 2);
        }
        if outcome.events().clean() {
            assert!(report.is_valid_strong(params.diameter_bound(100)));
        }
    }

    #[test]
    fn lambda_one_usually_one_block() {
        // lambda = 1: a single phase must swallow the graph; the radius
        // parameter is huge (cn * ln(cn)), so w.h.p. everything joins one
        // phase. With ContinueUntilEmpty leftovers spill into extra phases.
        let g = generators::path(40);
        let params = HighRadiusParams::new(1, 8.0).unwrap();
        let mut within = 0;
        for seed in 0..10u64 {
            let o = decompose(&g, &params, seed).unwrap();
            if o.exhausted_within_budget() {
                within += 1;
                assert_eq!(o.decomposition().block_count(), 1);
            }
        }
        assert!(within >= 5, "only {within}/10 single-phase runs");
    }

    #[test]
    fn blocks_at_most_phases_used() {
        let g = generators::grid2d(8, 8);
        let params = HighRadiusParams::new(3, 4.0).unwrap();
        let outcome = decompose(&g, &params, 4).unwrap();
        assert!(outcome.decomposition().block_count() <= outcome.phases_used());
    }

    #[test]
    fn deterministic_under_seed() {
        let g = generators::cycle(30);
        let params = HighRadiusParams::new(2, 4.0).unwrap();
        let a = decompose(&g, &params, 12).unwrap();
        let b = decompose(&g, &params, 12).unwrap();
        assert_eq!(a.decomposition(), b.decomposition());
    }
}

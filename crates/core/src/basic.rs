//! Theorem 1: the basic strong-diameter decomposition algorithm.
//!
//! Phases `t = 1, …, λ` with `λ = (cn)^{1/k}·ln(cn)`. In each phase every
//! alive vertex samples `r_v ~ EXP(β)` with `β = ln(cn)/k`, broadcasts it
//! `⌊r_v⌋` hops (capped at `k`), and joins the phase's block iff the top two
//! shifted values it heard differ by more than 1. Blocks have strong
//! diameter `≤ 2k − 2`; each phase is one supergraph color.
//!
//! [`decompose`] runs the *centralized simulation* of this algorithm — the
//! exact same per-vertex decisions as the distributed protocol in
//! [`crate::distributed`] (tested to be bit-identical), at in-memory speed.

use netdecomp_graph::Graph;

use crate::driver::{run_phases, BudgetPolicy, PhasePlan};
use crate::outcome::DecompositionOutcome;
use crate::params::DecompositionParams;
use crate::DecompError;

/// Runs Theorem 1's algorithm on `graph` with the given parameters and seed.
///
/// The run continues past the theorem's phase budget until the graph is
/// exhausted (the overrun, whose probability Theorem 1 bounds by `1/c`, is
/// visible via [`DecompositionOutcome::exhausted_within_budget`]).
///
/// # Errors
///
/// [`DecompError::InvalidParameter`] if the derived rate β is degenerate
/// (cannot happen for validated [`DecompositionParams`] on a non-empty
/// graph).
///
/// # Example
///
/// ```
/// use netdecomp_core::{basic, params::DecompositionParams};
/// use netdecomp_graph::generators;
///
/// let g = generators::grid2d(8, 8);
/// let params = DecompositionParams::new(3, 4.0)?;
/// let outcome = basic::decompose(&g, &params, 1)?;
/// assert!(outcome.decomposition().partition().is_complete());
/// // Block tags properly color the supergraph by construction; diameters
/// // are bounded by 2k-2 = 4 whenever no truncation event occurred.
/// # Ok::<(), netdecomp_core::DecompError>(())
/// ```
pub fn decompose(
    graph: &Graph,
    params: &DecompositionParams,
    seed: u64,
) -> Result<DecompositionOutcome, DecompError> {
    decompose_with_policy(graph, params, seed, BudgetPolicy::ContinueUntilEmpty)
}

/// [`decompose`] with an explicit budget policy.
///
/// # Errors
///
/// Same as [`decompose`].
pub fn decompose_with_policy(
    graph: &Graph,
    params: &DecompositionParams,
    seed: u64,
    policy: BudgetPolicy,
) -> Result<DecompositionOutcome, DecompError> {
    let n = graph.vertex_count();
    let beta = params.beta(n);
    let cap = params.radius_cap();
    run_phases(graph, seed, params.phase_budget(n), policy, move |_| {
        PhasePlan { beta, cap }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify;
    use netdecomp_graph::generators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn headline_regime_on_random_graph() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = generators::gnp(300, 0.03, &mut rng).unwrap();
        let params = DecompositionParams::for_graph_size(300);
        let outcome = decompose(&g, &params, 7).unwrap();
        let report = verify::verify(&g, outcome.decomposition()).unwrap();
        assert!(report.complete);
        assert!(report.supergraph_properly_colored);
        if outcome.events().clean() {
            assert!(report.clusters_connected);
            assert!(report
                .max_strong_diameter
                .is_some_and(|d| d <= params.diameter_bound()));
        }
    }

    #[test]
    fn diameter_bound_holds_across_families_and_seeds() {
        let graphs = [
            generators::path(60),
            generators::cycle(50),
            generators::grid2d(7, 8),
            generators::caveman(5, 6).unwrap(),
        ];
        for (i, g) in graphs.iter().enumerate() {
            for seed in 0..3u64 {
                let params = DecompositionParams::new(3, 4.0).unwrap();
                let outcome = decompose(g, &params, seed).unwrap();
                let report = verify::verify(g, outcome.decomposition()).unwrap();
                assert!(report.complete, "graph {i} seed {seed}");
                assert!(report.supergraph_properly_colored, "graph {i} seed {seed}");
                if outcome.events().clean() {
                    assert!(
                        report.is_valid_strong(params.diameter_bound()),
                        "graph {i} seed {seed}: {report:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn k_equals_one_yields_singletons() {
        // 2k - 2 = 0: every cluster must be a single vertex.
        let g = generators::cycle(20);
        let params = DecompositionParams::new(1, 4.0).unwrap();
        let outcome = decompose(&g, &params, 3).unwrap();
        let report = verify::verify(&g, outcome.decomposition()).unwrap();
        assert!(report.complete);
        if outcome.events().clean() {
            assert_eq!(report.max_strong_diameter, Some(0));
            assert_eq!(report.max_cluster_size, 1);
        }
        assert!(report.supergraph_properly_colored);
    }

    #[test]
    fn deterministic_under_seed() {
        let g = generators::grid2d(6, 6);
        let params = DecompositionParams::new(2, 4.0).unwrap();
        let a = decompose(&g, &params, 99).unwrap();
        let b = decompose(&g, &params, 99).unwrap();
        assert_eq!(a.decomposition(), b.decomposition());
        let c = decompose(&g, &params, 100).unwrap();
        // Overwhelmingly likely to differ.
        assert_ne!(a.decomposition(), c.decomposition());
    }

    #[test]
    fn centers_are_never_mixed_without_truncation() {
        for seed in 0..5u64 {
            let g = generators::grid2d(8, 8);
            let params = DecompositionParams::new(4, 4.0).unwrap();
            let outcome = decompose(&g, &params, seed).unwrap();
            if outcome.events().clean() {
                assert_eq!(outcome.mixed_center_clusters(), 0, "seed {seed}");
            }
        }
    }

    #[test]
    fn empty_and_singleton_graphs() {
        let params = DecompositionParams::new(2, 4.0).unwrap();
        let g = netdecomp_graph::Graph::empty(0);
        let outcome = decompose(&g, &params, 1).unwrap();
        assert_eq!(outcome.decomposition().cluster_count(), 0);

        let g1 = netdecomp_graph::Graph::empty(1);
        let outcome = decompose(&g1, &params, 1).unwrap();
        assert_eq!(outcome.decomposition().cluster_count(), 1);
        assert!(outcome.decomposition().partition().is_complete());
    }

    #[test]
    fn phase_budget_usually_suffices() {
        // Corollary 7: exhausted within lambda phases w.p. >= 1 - 1/c.
        let mut ok = 0;
        let trials = 20;
        for seed in 0..trials {
            let g = generators::cycle(64);
            let params = DecompositionParams::new(3, 8.0).unwrap();
            let outcome = decompose(&g, &params, seed).unwrap();
            if outcome.exhausted_within_budget() {
                ok += 1;
            }
        }
        // Bound is 1 - 1/8; demand at least half to keep the test robust.
        assert!(
            ok * 2 >= trials,
            "only {ok}/{trials} runs finished in budget"
        );
    }
}

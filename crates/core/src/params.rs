//! Parameters of the three theorems and the bounds they promise.
//!
//! Every quantity the paper states — the exponential rate `β`, the phase
//! budget `λ`, the diameter bound `2k − 2`, the color bound, the round
//! bound, and the failure probability — is computed here from `(k, c, n)`
//! so experiments can print *paper bound vs. measured* side by side.

use serde::{Deserialize, Serialize};

use crate::DecompError;

/// Parameters of the basic algorithm (Theorem 1).
///
/// For a graph on `n` vertices and parameters `1 ≤ k ≤ ln n`, `c > 3`, the
/// algorithm computes with probability `≥ 1 − 3/c` a strong
/// `(2k − 2, (cn)^{1/k}·ln(cn))` network decomposition in
/// `k·(cn)^{1/k}·ln(cn)` rounds.
///
/// # Example
///
/// ```
/// use netdecomp_core::params::DecompositionParams;
///
/// let p = DecompositionParams::new(3, 4.0)?;
/// assert_eq!(p.diameter_bound(), 4); // 2k - 2
/// let n = 1000;
/// assert!(p.beta(n) > 0.0);
/// assert!(p.phase_budget(n) >= 1);
/// # Ok::<(), netdecomp_core::DecompError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DecompositionParams {
    k: usize,
    c: f64,
}

impl DecompositionParams {
    /// Creates parameters, validating the theorem's constraints.
    ///
    /// # Errors
    ///
    /// [`DecompError::InvalidParameter`] if `k == 0` or `c ≤ 3` (Theorem 1
    /// requires `c > 3`) or `c` is not finite.
    pub fn new(k: usize, c: f64) -> Result<Self, DecompError> {
        if k == 0 {
            return Err(DecompError::InvalidParameter {
                name: "k",
                reason: "must be at least 1".into(),
            });
        }
        if !c.is_finite() || c <= 3.0 {
            return Err(DecompError::InvalidParameter {
                name: "c",
                reason: format!("must be a finite value > 3, got {c}"),
            });
        }
        Ok(DecompositionParams { k, c })
    }

    /// The headline configuration for an `n`-vertex graph: `k = ⌈ln n⌉`,
    /// `c = 4`, yielding a strong `(O(log n), O(log n))` decomposition in
    /// `O(log² n)` rounds.
    #[must_use]
    pub fn for_graph_size(n: usize) -> Self {
        let k = ((n.max(2) as f64).ln().ceil() as usize).max(1);
        DecompositionParams { k, c: 4.0 }
    }

    /// The radius parameter `k`.
    #[must_use]
    pub fn k(&self) -> usize {
        self.k
    }

    /// The confidence parameter `c`.
    #[must_use]
    pub fn c(&self) -> f64 {
        self.c
    }

    /// The exponential rate `β = ln(cn)/k`.
    #[must_use]
    pub fn beta(&self, n: usize) -> f64 {
        (self.c * n.max(1) as f64).ln() / self.k as f64
    }

    /// The phase budget `λ = ⌈(cn)^{1/k}·ln(cn)⌉`; also the color bound of
    /// Theorem 1 (one color per phase).
    #[must_use]
    pub fn phase_budget(&self, n: usize) -> usize {
        let cn = self.c * n.max(1) as f64;
        (cn.powf(1.0 / self.k as f64) * cn.ln()).ceil() as usize
    }

    /// The strong-diameter bound `2k − 2` of Theorem 1.
    #[must_use]
    pub fn diameter_bound(&self) -> usize {
        2 * self.k - 2
    }

    /// The color bound `(cn)^{1/k}·ln(cn)` of Theorem 1 (same as the phase
    /// budget).
    #[must_use]
    pub fn color_bound(&self, n: usize) -> usize {
        self.phase_budget(n)
    }

    /// The round bound `k·(cn)^{1/k}·ln(cn)` of Theorem 1.
    #[must_use]
    pub fn round_bound(&self, n: usize) -> usize {
        self.k * self.phase_budget(n)
    }

    /// The failure probability bound `3/c` of Theorem 1.
    #[must_use]
    pub fn failure_probability(&self) -> f64 {
        3.0 / self.c
    }

    /// The broadcast radius cap per phase: `k` communication rounds, so no
    /// broadcast travels farther than `k` hops (Lemma 1 makes larger radii a
    /// low-probability event, which the implementation truncates and logs).
    #[must_use]
    pub fn radius_cap(&self) -> usize {
        self.k
    }
}

/// Parameters of the staged algorithm (Theorem 2): strong
/// `(2k − 2, 4k(cn)^{1/k})` in `O(k²(cn)^{1/k})` rounds with probability
/// `≥ 1 − 5/c`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StagedParams {
    k: usize,
    c: f64,
}

impl StagedParams {
    /// Creates parameters, validating Theorem 2's constraints (`c > 5`).
    ///
    /// # Errors
    ///
    /// [`DecompError::InvalidParameter`] if `k == 0` or `c ≤ 5` or not
    /// finite.
    pub fn new(k: usize, c: f64) -> Result<Self, DecompError> {
        if k == 0 {
            return Err(DecompError::InvalidParameter {
                name: "k",
                reason: "must be at least 1".into(),
            });
        }
        if !c.is_finite() || c <= 5.0 {
            return Err(DecompError::InvalidParameter {
                name: "c",
                reason: format!("must be a finite value > 5, got {c}"),
            });
        }
        Ok(StagedParams { k, c })
    }

    /// Headline configuration: `k = ⌈ln n⌉`, `c = 6`.
    #[must_use]
    pub fn for_graph_size(n: usize) -> Self {
        let k = ((n.max(2) as f64).ln().ceil() as usize).max(1);
        StagedParams { k, c: 6.0 }
    }

    /// The radius parameter `k`.
    #[must_use]
    pub fn k(&self) -> usize {
        self.k
    }

    /// The confidence parameter `c`.
    #[must_use]
    pub fn c(&self) -> f64 {
        self.c
    }

    /// Number of stages: `⌈ln n⌉ + 1` (stages `i = 0..=ln n`).
    #[must_use]
    pub fn stage_count(&self, n: usize) -> usize {
        (n.max(2) as f64).ln().ceil() as usize + 1
    }

    /// The exponential rate of stage `i`: `β_i = ln(cn/eⁱ)/k`, clamped to a
    /// small positive floor once `eⁱ` approaches `cn` (late stages).
    #[must_use]
    pub fn stage_beta(&self, n: usize, stage: usize) -> f64 {
        let cn = self.c * n.max(1) as f64;
        let raw = (cn.ln() - stage as f64) / self.k as f64;
        raw.max(1e-9)
    }

    /// Phases in stage `i`: `s_i = ⌈2(cn/eⁱ)^{1/k}⌉` (at least 1).
    #[must_use]
    pub fn stage_phases(&self, n: usize, stage: usize) -> usize {
        let cn = self.c * n.max(1) as f64;
        let ratio = cn / (stage as f64).exp();
        ((2.0 * ratio.max(1.0).powf(1.0 / self.k as f64)).ceil() as usize).max(1)
    }

    /// The color bound `4k(cn)^{1/k}` of Theorem 2.
    #[must_use]
    pub fn color_bound(&self, n: usize) -> usize {
        let cn = self.c * n.max(1) as f64;
        (4.0 * self.k as f64 * cn.powf(1.0 / self.k as f64)).ceil() as usize
    }

    /// The strong-diameter bound `2k − 2`.
    #[must_use]
    pub fn diameter_bound(&self) -> usize {
        2 * self.k - 2
    }

    /// The round bound: `k` rounds per phase over all stages, i.e.
    /// `k · Σᵢ s_i = O(k²(cn)^{1/k})`.
    #[must_use]
    pub fn round_bound(&self, n: usize) -> usize {
        let total_phases: usize = (0..self.stage_count(n))
            .map(|i| self.stage_phases(n, i))
            .sum();
        self.k * total_phases
    }

    /// The failure probability bound `5/c` of Theorem 2.
    #[must_use]
    pub fn failure_probability(&self) -> f64 {
        5.0 / self.c
    }

    /// Broadcast radius cap (identical to Theorem 1's: `k`).
    #[must_use]
    pub fn radius_cap(&self) -> usize {
        self.k
    }
}

/// Parameters of the high-radius regime (Theorem 3): strong
/// `(2(cn)^{1/λ}·ln(cn), λ)` in `λ(cn)^{1/λ}·ln(cn)` rounds with
/// probability `≥ 1 − 3/c`.
///
/// This is the inverse tradeoff: pick the number of colors `λ` first; the
/// radius becomes `k = (cn)^{1/λ}·ln(cn)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HighRadiusParams {
    lambda: usize,
    c: f64,
}

impl HighRadiusParams {
    /// Creates parameters.
    ///
    /// # Errors
    ///
    /// [`DecompError::InvalidParameter`] if `lambda == 0` or `c ≤ 3` or not
    /// finite.
    pub fn new(lambda: usize, c: f64) -> Result<Self, DecompError> {
        if lambda == 0 {
            return Err(DecompError::InvalidParameter {
                name: "lambda",
                reason: "must be at least 1".into(),
            });
        }
        if !c.is_finite() || c <= 3.0 {
            return Err(DecompError::InvalidParameter {
                name: "c",
                reason: format!("must be a finite value > 3, got {c}"),
            });
        }
        Ok(HighRadiusParams { lambda, c })
    }

    /// The color budget `λ`.
    #[must_use]
    pub fn lambda(&self) -> usize {
        self.lambda
    }

    /// The confidence parameter `c`.
    #[must_use]
    pub fn c(&self) -> f64 {
        self.c
    }

    /// The induced radius parameter `k = (cn)^{1/λ}·ln(cn)` (real-valued).
    #[must_use]
    pub fn radius_parameter(&self, n: usize) -> f64 {
        let cn = self.c * n.max(1) as f64;
        cn.powf(1.0 / self.lambda as f64) * cn.ln()
    }

    /// The exponential rate `β = ln(cn)/k`.
    #[must_use]
    pub fn beta(&self, n: usize) -> f64 {
        let cn = self.c * n.max(1) as f64;
        cn.ln() / self.radius_parameter(n)
    }

    /// Phase budget = color bound = `λ`.
    #[must_use]
    pub fn phase_budget(&self) -> usize {
        self.lambda
    }

    /// The strong-diameter bound `2(cn)^{1/λ}·ln(cn)` (rounded up).
    #[must_use]
    pub fn diameter_bound(&self, n: usize) -> usize {
        (2.0 * self.radius_parameter(n)).ceil() as usize
    }

    /// The round bound `λ·(cn)^{1/λ}·ln(cn)`.
    #[must_use]
    pub fn round_bound(&self, n: usize) -> usize {
        (self.lambda as f64 * self.radius_parameter(n)).ceil() as usize
    }

    /// Broadcast radius cap per phase: `⌈k⌉` hops.
    #[must_use]
    pub fn radius_cap(&self, n: usize) -> usize {
        self.radius_parameter(n).ceil() as usize
    }

    /// The failure probability bound `3/c`.
    #[must_use]
    pub fn failure_probability(&self) -> f64 {
        3.0 / self.c
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn theorem1_params_validate() {
        assert!(DecompositionParams::new(0, 4.0).is_err());
        assert!(DecompositionParams::new(3, 3.0).is_err());
        assert!(DecompositionParams::new(3, f64::NAN).is_err());
        assert!(DecompositionParams::new(3, 3.01).is_ok());
    }

    #[test]
    fn theorem1_bounds_formulae() {
        let p = DecompositionParams::new(2, 4.0).unwrap();
        let n = 100;
        // beta = ln(400)/2
        assert!((p.beta(n) - (400.0f64).ln() / 2.0).abs() < 1e-12);
        // lambda = ceil(sqrt(400) * ln 400) = ceil(20 * 5.99...) = 120
        assert_eq!(p.phase_budget(n), 120);
        assert_eq!(p.diameter_bound(), 2);
        assert_eq!(p.round_bound(n), 240);
        assert!((p.failure_probability() - 0.75).abs() < 1e-12);
        assert_eq!(p.radius_cap(), 2);
    }

    #[test]
    fn for_graph_size_uses_log_n() {
        let p = DecompositionParams::for_graph_size(1024);
        assert_eq!(p.k(), 7); // ln 1024 = 6.93...
        assert_eq!(p.c(), 4.0);
        // k=1 edge case for tiny graphs
        let tiny = DecompositionParams::for_graph_size(2);
        assert!(tiny.k() >= 1);
    }

    #[test]
    fn staged_params_validate_and_bound() {
        assert!(StagedParams::new(3, 5.0).is_err());
        let p = StagedParams::new(3, 6.0).unwrap();
        let n = 1000;
        assert_eq!(p.diameter_bound(), 4);
        assert!(p.stage_count(n) >= 7);
        // Stage betas decrease.
        assert!(p.stage_beta(n, 0) > p.stage_beta(n, 3));
        // Stage phases decrease.
        assert!(p.stage_phases(n, 0) >= p.stage_phases(n, 5));
        // Total phases within ~ color bound + stage count slack.
        let total: usize = (0..p.stage_count(n)).map(|i| p.stage_phases(n, i)).sum();
        assert!(total <= p.color_bound(n) + p.stage_count(n));
        assert!((p.failure_probability() - 5.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn staged_beta_is_positive_even_in_late_stages() {
        let p = StagedParams::new(2, 6.0).unwrap();
        for i in 0..40 {
            assert!(p.stage_beta(10, i) > 0.0);
        }
    }

    #[test]
    fn high_radius_inverse_tradeoff() {
        let p = HighRadiusParams::new(3, 4.0).unwrap();
        let n = 1000;
        // k = (4000)^{1/3} * ln(4000)
        let cn: f64 = 4000.0;
        let expect = cn.powf(1.0 / 3.0) * cn.ln();
        assert!((p.radius_parameter(n) - expect).abs() < 1e-9);
        assert_eq!(p.phase_budget(), 3);
        assert_eq!(p.diameter_bound(n), (2.0 * expect).ceil() as usize);
        assert!(p.beta(n) > 0.0);
        assert!(HighRadiusParams::new(0, 4.0).is_err());
        assert!(HighRadiusParams::new(2, 2.0).is_err());
    }
}

//! Error type for simulation runs.

use std::error::Error;
use std::fmt;

use netdecomp_graph::VertexId;

/// Errors surfaced by the simulation engine.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimError {
    /// A node addressed a message to a vertex that is not its neighbor.
    NotNeighbor {
        /// Sender.
        from: VertexId,
        /// Intended recipient.
        to: VertexId,
    },
    /// The per-edge per-round byte budget of the CONGEST model was exceeded.
    CongestViolation {
        /// Sender.
        from: VertexId,
        /// Recipient.
        to: VertexId,
        /// Bytes the sender tried to push across the edge this round.
        bytes: usize,
        /// Configured limit.
        limit: usize,
        /// Round in which it happened.
        round: usize,
    },
    /// `run_to_quiescence` exhausted its round budget before all nodes halted.
    RoundLimitExceeded {
        /// The budget that was exhausted.
        limit: usize,
    },
    /// Verified stepping ([`crate::Determinism::Verify`]) found the
    /// parallel compute phase producing different outboxes than the
    /// sequential reference — a protocol whose behavior depends on
    /// something other than `(state, incoming)`, e.g. shared mutable
    /// state or ambient randomness.
    Nondeterminism {
        /// Round at which the divergence was detected.
        round: usize,
        /// First vertex whose outbox diverged.
        vertex: VertexId,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::NotNeighbor { from, to } => {
                write!(f, "node {from} tried to message non-neighbor {to}")
            }
            SimError::CongestViolation {
                from,
                to,
                bytes,
                limit,
                round,
            } => write!(
                f,
                "congest violation at round {round}: edge {from}->{to} carried {bytes} bytes (limit {limit})"
            ),
            SimError::RoundLimitExceeded { limit } => {
                write!(f, "protocol did not quiesce within {limit} rounds")
            }
            SimError::Nondeterminism { round, vertex } => write!(
                f,
                "parallel compute diverged from the sequential reference at round {round} (vertex {vertex})"
            ),
        }
    }
}

impl Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = SimError::NotNeighbor { from: 1, to: 9 };
        assert!(e.to_string().contains("non-neighbor 9"));
        let e = SimError::CongestViolation {
            from: 0,
            to: 1,
            bytes: 64,
            limit: 16,
            round: 3,
        };
        assert!(e.to_string().contains("limit 16"));
        let e = SimError::RoundLimitExceeded { limit: 10 };
        assert!(e.to_string().contains("10 rounds"));
        let e = SimError::Nondeterminism {
            round: 4,
            vertex: 2,
        };
        assert!(e.to_string().contains("round 4"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SimError>();
    }
}

//! Error type for simulation runs.

use std::error::Error;
use std::fmt;

use netdecomp_graph::VertexId;

/// Ways a transport frame can fail validation (see [`crate::frame`] for
/// the wire layout these checks guard).
///
/// Every variant is a *typed* rejection: a truncated, stale-versioned, or
/// bit-flipped frame surfaces as an error from the decode or place path,
/// never as a panic or a silently misdelivered message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum FrameError {
    /// Fewer bytes than the header — or the declared frame length —
    /// requires.
    Truncated {
        /// Bytes the frame claims to need.
        needed: usize,
        /// Bytes actually present.
        have: usize,
    },
    /// The first bytes are not the `NDF` frame magic.
    BadMagic,
    /// Right magic, but a format version outside the range this build
    /// decodes.
    VersionMismatch {
        /// Version byte found in the frame.
        found: u8,
        /// Oldest version this build still decodes.
        min: u8,
        /// Newest version this build decodes (and encodes by default).
        max: u8,
    },
    /// The header checksum does not match the header and table bytes.
    ChecksumMismatch {
        /// Checksum the frame declares.
        declared: u32,
        /// Checksum computed over the received bytes.
        computed: u32,
    },
    /// Structurally invalid: tables or payload entries overrun their
    /// regions, a ref points past the payload table, or similar.
    Malformed {
        /// Which structural check failed.
        detail: &'static str,
    },
    /// The frame's addressing words disagree with the link it arrived on.
    Misrouted {
        /// Shard the link says the frame is for / from.
        expected: usize,
        /// Shard the frame's header claims.
        found: usize,
    },
    /// No frame arrived from this sender shard this round.
    MissingFrame {
        /// The sender shard whose frame is missing.
        sender: usize,
    },
    /// A ref is inconsistent with the graph and plan: its slot range
    /// delivers to vertices outside the receiving shard, its claimed
    /// sender does not belong to the shard the frame came from, or the
    /// slots are not the claimed sender's own CSR row — a correctly
    /// checksummed but misrouted (or fabricated) entry.
    ForeignSlots {
        /// The ref's claimed sender vertex.
        from: VertexId,
        /// First slot of the offending range.
        lo: usize,
        /// One past the last slot.
        hi: usize,
    },
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Truncated { needed, have } => {
                write!(f, "frame truncated: {have} bytes of {needed}")
            }
            FrameError::BadMagic => write!(f, "bad frame magic"),
            FrameError::VersionMismatch { found, min, max } => {
                write!(
                    f,
                    "frame version {found} (this build speaks v{min} through v{max})"
                )
            }
            FrameError::ChecksumMismatch { declared, computed } => write!(
                f,
                "frame checksum mismatch: declared {declared:#010x}, computed {computed:#010x}"
            ),
            FrameError::Malformed { detail } => write!(f, "malformed frame: {detail}"),
            FrameError::Misrouted { expected, found } => {
                write!(
                    f,
                    "misrouted frame: header says shard {found}, link says {expected}"
                )
            }
            FrameError::MissingFrame { sender } => {
                write!(f, "no frame arrived from sender shard {sender}")
            }
            FrameError::ForeignSlots { from, lo, hi } => write!(
                f,
                "frame ref from vertex {from} covers slots {lo}..{hi} outside the receiving shard"
            ),
        }
    }
}

impl Error for FrameError {}

/// Why a transport gave up on the link to a peer shard.
///
/// Every blocking point in the socket and channel backends carries a
/// deadline (`NETDECOMP_FRAME_TIMEOUT_MS`, see [`crate::transport`]), so
/// a wedged, dead, or misbehaving peer always degrades into one of these
/// typed causes — never into an indefinite hang.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TransportCause {
    /// The deadline elapsed before the peer's frame — or the round
    /// barrier acknowledgement — arrived.
    Timeout {
        /// Milliseconds waited before giving up.
        waited_ms: u64,
    },
    /// The peer's connection closed (EOF): the process died, or shut the
    /// link down mid-round.
    Disconnected,
    /// The connect-time handshake failed: the peer identified as an
    /// unexpected shard, spoke an unsupported frame version, or loaded a
    /// different graph (digest mismatch).
    Handshake {
        /// What the handshake disagreed about.
        detail: String,
    },
    /// An OS-level I/O failure on the link (including a desynchronized
    /// byte stream, where framing can no longer be trusted).
    Io {
        /// The underlying error, rendered.
        detail: String,
    },
    /// A peer reported its own failure through an `Error` control frame;
    /// the original [`SimError`] is carried as rendered text here (the
    /// worker drivers surface the structured error directly).
    Remote {
        /// The peer's error, rendered.
        message: String,
    },
}

impl fmt::Display for TransportCause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransportCause::Timeout { waited_ms } => {
                write!(f, "timed out after {waited_ms} ms")
            }
            TransportCause::Disconnected => write!(f, "peer disconnected"),
            TransportCause::Handshake { detail } => write!(f, "handshake failed: {detail}"),
            TransportCause::Io { detail } => write!(f, "i/o failure: {detail}"),
            TransportCause::Remote { message } => write!(f, "peer reported an error: {message}"),
        }
    }
}

/// A transport-level failure: the link to one peer shard broke, timed
/// out, or refused the handshake.
///
/// Surfaced by [`crate::frame::Transport::collect`] and threaded through
/// the engine as [`SimError::Transport`], so a dead or wedged shard is
/// always a typed error within the configured deadline — never a hang.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TransportError {
    /// The peer shard the failure concerns.
    pub shard: usize,
    /// The round in which the failure surfaced (as counted by whoever
    /// observed it — the engine overwrites this with its authoritative
    /// round number when wrapping into [`SimError::Transport`]).
    pub round: usize,
    /// What went wrong on the link.
    pub cause: TransportCause,
}

impl fmt::Display for TransportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "transport failure on the link to shard {} at round {}: {}",
            self.shard, self.round, self.cause
        )
    }
}

impl Error for TransportError {}

/// Errors surfaced by the simulation engine.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimError {
    /// A node addressed a message to a vertex that is not its neighbor.
    NotNeighbor {
        /// Sender.
        from: VertexId,
        /// Intended recipient.
        to: VertexId,
    },
    /// The per-edge per-round byte budget of the CONGEST model was exceeded.
    CongestViolation {
        /// Sender.
        from: VertexId,
        /// Recipient.
        to: VertexId,
        /// Bytes the sender tried to push across the edge this round.
        bytes: usize,
        /// Configured limit.
        limit: usize,
        /// Round in which it happened.
        round: usize,
    },
    /// `run_to_quiescence` exhausted its round budget before all nodes halted.
    RoundLimitExceeded {
        /// The budget that was exhausted.
        limit: usize,
    },
    /// Verified stepping ([`crate::Determinism::Verify`]) found the
    /// parallel compute phase producing different outboxes than the
    /// sequential reference — a protocol whose behavior depends on
    /// something other than `(state, incoming)`, e.g. shared mutable
    /// state or ambient randomness.
    Nondeterminism {
        /// Round at which the divergence was detected.
        round: usize,
        /// First vertex whose outbox diverged.
        vertex: VertexId,
    },
    /// A framed backend ([`crate::Engine::Framed`]) received a bucket
    /// frame that failed validation during the place phase.
    Frame {
        /// Destination shard that rejected the frame.
        shard: usize,
        /// Round in which it happened.
        round: usize,
        /// The frame-level failure.
        error: FrameError,
    },
    /// A transport backend lost the link to a peer shard: timeout,
    /// disconnect, failed handshake, I/O failure, or a peer-reported
    /// error (see [`TransportError`]).
    Transport(TransportError),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::NotNeighbor { from, to } => {
                write!(f, "node {from} tried to message non-neighbor {to}")
            }
            SimError::CongestViolation {
                from,
                to,
                bytes,
                limit,
                round,
            } => write!(
                f,
                "congest violation at round {round}: edge {from}->{to} carried {bytes} bytes (limit {limit})"
            ),
            SimError::RoundLimitExceeded { limit } => {
                write!(f, "protocol did not quiesce within {limit} rounds")
            }
            SimError::Nondeterminism { round, vertex } => write!(
                f,
                "parallel compute diverged from the sequential reference at round {round} (vertex {vertex})"
            ),
            SimError::Frame {
                shard,
                round,
                error,
            } => write!(
                f,
                "shard {shard} rejected a bucket frame at round {round}: {error}"
            ),
            SimError::Transport(error) => write!(f, "{error}"),
        }
    }
}

impl From<TransportError> for SimError {
    fn from(error: TransportError) -> Self {
        SimError::Transport(error)
    }
}

impl Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = SimError::NotNeighbor { from: 1, to: 9 };
        assert!(e.to_string().contains("non-neighbor 9"));
        let e = SimError::CongestViolation {
            from: 0,
            to: 1,
            bytes: 64,
            limit: 16,
            round: 3,
        };
        assert!(e.to_string().contains("limit 16"));
        let e = SimError::RoundLimitExceeded { limit: 10 };
        assert!(e.to_string().contains("10 rounds"));
        let e = SimError::Nondeterminism {
            round: 4,
            vertex: 2,
        };
        assert!(e.to_string().contains("round 4"));
        let e = SimError::Frame {
            shard: 3,
            round: 7,
            error: FrameError::ChecksumMismatch {
                declared: 1,
                computed: 2,
            },
        };
        assert!(e.to_string().contains("shard 3"));
        assert!(e.to_string().contains("checksum mismatch"));
        let e = FrameError::Truncated {
            needed: 28,
            have: 5,
        };
        assert!(e.to_string().contains("5 bytes of 28"));
        let e = FrameError::VersionMismatch {
            found: 9,
            min: 1,
            max: 2,
        };
        assert!(e.to_string().contains("version 9"));
        assert!(
            e.to_string().contains("v1 through v2"),
            "the message must name the accepted range, got: {e}"
        );
        let e = SimError::Transport(TransportError {
            shard: 2,
            round: 5,
            cause: TransportCause::Timeout { waited_ms: 750 },
        });
        assert!(e.to_string().contains("shard 2"));
        assert!(e.to_string().contains("round 5"));
        assert!(e.to_string().contains("750 ms"));
        let e = TransportError {
            shard: 1,
            round: 0,
            cause: TransportCause::Handshake {
                detail: "graph digest mismatch".into(),
            },
        };
        assert!(e.to_string().contains("graph digest mismatch"));
        let e = TransportCause::Remote {
            message: "protocol did not quiesce within 3 rounds".into(),
        };
        assert!(e.to_string().contains("peer reported"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SimError>();
        assert_send_sync::<FrameError>();
        assert_send_sync::<TransportError>();
    }
}

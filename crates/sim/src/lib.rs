//! Synchronous message-passing simulator for the LOCAL / CONGEST models.
//!
//! The distributed model of the paper: each vertex of a graph hosts a
//! processor; computation proceeds in synchronous rounds; in every round a
//! processor may send one message along each incident edge; the CONGEST
//! model additionally caps the message size at `O(log n)` bits.
//!
//! This crate reproduces that model *measurably*: protocols exchange
//! byte-encoded payloads ([`bytes::Bytes`]), and the engine records — and can
//! enforce — per-edge per-round byte budgets, so the paper's "each message
//! consists of `O(1)` words" claim becomes a measured quantity rather than an
//! assumption.
//!
//! # Example: flooding a token
//!
//! ```
//! use netdecomp_graph::generators;
//! use netdecomp_sim::{Ctx, Incoming, Outgoing, Protocol, Simulator};
//! use bytes::Bytes;
//!
//! struct Flood { seen: bool }
//!
//! impl Protocol for Flood {
//!     fn start(&mut self, ctx: &Ctx<'_>) -> Vec<Outgoing> {
//!         if ctx.id == 0 {
//!             self.seen = true;
//!             vec![Outgoing::broadcast(Bytes::from_static(b"x"))]
//!         } else {
//!             Vec::new()
//!         }
//!     }
//!     fn round(&mut self, _ctx: &Ctx<'_>, incoming: &[Incoming]) -> Vec<Outgoing> {
//!         if !incoming.is_empty() && !self.seen {
//!             self.seen = true;
//!             return vec![Outgoing::broadcast(Bytes::from_static(b"x"))];
//!         }
//!         Vec::new()
//!     }
//!     fn is_halted(&self) -> bool { self.seen }
//! }
//!
//! let g = generators::path(4);
//! let mut sim = Simulator::new(&g, |_id, _ctx| Flood { seen: false });
//! let run = sim.run_to_quiescence(100).unwrap();
//! assert!(sim.nodes().iter().all(|n| n.seen));
//! // start + 3 hops of relaying + draining the last node's echo.
//! assert_eq!(run.rounds, 5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod engine;
mod error;
mod message;
mod seeding;
mod stats;
pub mod wire;

pub use engine::{Ctx, Protocol, Simulator};
pub use error::SimError;
pub use message::{Incoming, Outgoing, Recipient};
pub use seeding::stream_rng;
pub use stats::{CongestLimit, RoundStats, RunStats};

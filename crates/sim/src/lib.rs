//! Synchronous message-passing simulator for the LOCAL / CONGEST models,
//! built as a two-phase flat-buffer round engine.
//!
//! The distributed model of the paper: each vertex of a graph hosts a
//! processor; computation proceeds in synchronous rounds; in every round a
//! processor may send one message along each incident edge; the CONGEST
//! model additionally caps the message size at `O(log n)` bits.
//!
//! This crate reproduces that model *measurably*: protocols exchange
//! byte-encoded payloads ([`bytes::Bytes`]), and the engine records — and
//! can enforce — per-edge per-round byte budgets, so the paper's "each
//! message consists of `O(1)` words" claim becomes a measured quantity
//! rather than an assumption.
//!
//! # The two-phase engine
//!
//! Every [`Simulator::step`] is **compute, then deliver**:
//!
//! - **Compute.** Each node consumes the slice of messages delivered to it
//!   and fills its preallocated [`Outbox`]. Nodes are independent within a
//!   round, so under [`Engine::Parallel`] this phase runs across threads
//!   (`par_iter_mut` over the node array); [`Engine::Sequential`] is the
//!   default.
//! - **Deliver (sequential merge).** Outboxes are merged in sender-id
//!   order into one flat inbox buffer laid out CSR-style by recipient.
//!   CONGEST accounting lives in a flat `Vec<usize>` indexed by the
//!   graph's directed-edge slots ([`netdecomp_graph::Graph::edge_slot`]) —
//!   no per-sender hash maps. Payloads are reference-counted, so a
//!   broadcast is encoded once and shared by all recipients (zero-copy).
//!
//! # Determinism guarantee
//!
//! The merge order is fixed — sender id, then send order, then adjacency
//! order for broadcasts — so for any protocol that is a deterministic
//! function of `(state, incoming)`, parallel and sequential execution
//! produce **bit-identical** node states, inboxes, and [`RunStats`].
//! [`Determinism::Verify`] (via [`Simulator::step_verified`] or the
//! `*_with` runners) checks this property per round against a sequential
//! reference execution and fails with [`SimError::Nondeterminism`] if a
//! protocol sneaks in scheduling dependence.
//!
//! # Typed messages
//!
//! Protocols may speak bytes directly ([`Protocol`]) or typed messages
//! through a [`Codec`] ([`TypedProtocol`] wrapped in [`Typed`]): one
//! encode per send — broadcasts included — and one decode per receipt,
//! with malformed payloads dropped at the boundary.
//!
//! # Example: flooding a token
//!
//! ```
//! use netdecomp_graph::generators;
//! use netdecomp_sim::{Ctx, Engine, Incoming, Outbox, Protocol, Simulator};
//! use bytes::Bytes;
//!
//! struct Flood { seen: bool }
//!
//! impl Protocol for Flood {
//!     fn start(&mut self, ctx: &Ctx<'_>, out: &mut Outbox) {
//!         if ctx.id == 0 {
//!             self.seen = true;
//!             out.broadcast(Bytes::from_static(b"x"));
//!         }
//!     }
//!     fn round(&mut self, _ctx: &Ctx<'_>, incoming: &[Incoming], out: &mut Outbox) {
//!         if !incoming.is_empty() && !self.seen {
//!             self.seen = true;
//!             out.broadcast(Bytes::from_static(b"x"));
//!         }
//!     }
//!     fn is_halted(&self) -> bool { self.seen }
//! }
//!
//! let g = generators::path(4);
//! let mut sim = Simulator::new(&g, |_id, _ctx| Flood { seen: false })
//!     .with_engine(Engine::Parallel { threads: 2 });
//! let run = sim.run_to_quiescence(100).unwrap();
//! assert!(sim.nodes().iter().all(|n| n.seen));
//! // start + 3 hops of relaying + draining the last node's echo.
//! assert_eq!(run.rounds, 5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod codec;
mod engine;
mod error;
mod message;
mod seeding;
mod stats;
pub mod wire;

pub use codec::{Codec, Typed, TypedOutbox, TypedProtocol};
pub use engine::{Ctx, Determinism, Engine, Protocol, Simulator};
pub use error::SimError;
pub use message::{Incoming, Outbox, Outgoing, Recipient};
pub use seeding::stream_rng;
pub use stats::{CongestLimit, RoundStats, RunStats};

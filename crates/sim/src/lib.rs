//! Synchronous message-passing simulator for the LOCAL / CONGEST models,
//! built as a sharded flat-buffer round engine.
//!
//! The distributed model of the paper: each vertex of a graph hosts a
//! processor; computation proceeds in synchronous rounds; in every round a
//! processor may send one message along each incident edge; the CONGEST
//! model additionally caps the message size at `O(log n)` bits.
//!
//! This crate reproduces that model *measurably*: protocols exchange
//! byte-encoded payloads ([`bytes::Bytes`]), and the engine records — and
//! can enforce — per-edge per-round byte budgets, so the paper's "each
//! message consists of `O(1)` words" claim becomes a measured quantity
//! rather than an assumption.
//!
//! # The sharded engine
//!
//! A [`ShardPlan`] partitions the vertex set into contiguous,
//! degree-balanced ranges. The **ownership invariant**: a shard computes
//! only its own nodes, writes only its own outbox chunk, its own
//! sender-side router, and its own CSR inbox slice, and — because the
//! slot of the directed edge `from -> to` lives in the *sender's* CSR
//! row — owns a contiguous block of the per-edge CONGEST counters. Every
//! [`Simulator::step`] then runs three shard-local phases:
//!
//! - **Compute.** Each node consumes the slice of messages delivered to it
//!   and fills its preallocated [`Outbox`].
//! - **Account (sender side).** Each shard validates addressing, charges
//!   per-edge budgets for messages its own vertices sent (no counter
//!   merge — senders own their edge slots outright), and *routes* each
//!   message: references are bucketed by destination shard, unicast and
//!   multicast targets through a flat O(1) vertex→shard table, broadcasts
//!   through a per-vertex adjacency segmentation both precomputed in the
//!   [`RouteIndex`] (once per plan, not per round).
//! - **Place (recipient side).** Each shard walks only the route-ref
//!   buckets addressed to it — never another shard's outbox headers — and
//!   bucket-sorts those copies into its own inbox slice (recycled in
//!   place across rounds — steady-state stepping allocates nothing).
//!
//! Sender-side routing is what drops delivery's header work from
//! `O(shards × messages)` to `O(messages + copies)` refs, with no
//! shard-count multiplier (the complexity table lives in the `shard`
//! module docs; [`Simulator::delivery_work`] reports the measured
//! [`DeliveryWork`] counters).
//!
//! # Slab-backed inboxes: delivery cost is per message, not per copy
//!
//! An inbox stores compact 8-byte `{from, payload id}` slots, not payload
//! handles: placement registers each unique `(sender, message)` payload
//! **once per shard per round** in the shard's [`PayloadSlab`] and then
//! scatters plain slot writes, so a broadcast to ten thousand neighbors
//! costs one payload registration and ten thousand cache-linear writes —
//! zero reference-count traffic in the per-copy loop, under every
//! backend. Protocols read the result through the [`Inbox`] view a
//! [`Protocol::round`] receives: iteration yields borrowed
//! [`IncomingRef`]s resolved through the slab, again without touching a
//! reference count ([`IncomingRef::to_incoming`] materializes an owned
//! [`Incoming`] when one is wanted).
//!
//! The **slab ownership rule** makes this sound: a shard's slab holds
//! *read-only views of sender payloads* — reference-counted handles to
//! outbox encodings under the in-memory backends, zero-copy slices of
//! decoded frames under the framed ones — and senders never mutate a
//! payload they have shipped. Slab entries live exactly one round
//! (registered by placement, read by the next compute, dropped wholesale
//! by the following placement), and slab, slot table, and offsets are all
//! recycled in place, preserving the steady-state zero-allocation
//! invariant. See the `shard` module docs for the full rule.
//!
//! # The frame seam
//!
//! A per-`(sender, destination)` bucket is exactly the batch a transport
//! ships, and under [`Engine::Framed`] it *is* shipped: after the account
//! phase each shard serializes every bucket — refs plus the payload bytes
//! they reference — into one self-delimiting, checksummed frame per
//! destination shard (layout in the [`frame`] module docs), and the place
//! phase decodes frames instead of reading other shards' outboxes or
//! routers. Delivery order, CONGEST accounting, and results are
//! untouched; the only thing that changes between sharing an address
//! space and not is which [`frame::Transport`] moves the bytes. Two
//! transports ship: an in-memory loopback (zero-copy [`bytes::Bytes`]
//! handoff, allocation-free in steady state — the seam itself costs only
//! encode + checksum + decode) and per-shard channel mailboxes (a shard
//! receives *only* encoded frames, the information boundary of a
//! process-per-shard deployment); [`Simulator::with_transport`] plugs in
//! any other [`Transport`] implementation.
//!
//! The [`transport`] module takes the seam across real process
//! boundaries: [`SocketTransport`] moves the same frames over
//! Unix-domain or TCP streams through a routing hub
//! (`NETDECOMP_BACKEND=socket`), [`transport::launcher`] puts one OS
//! process on each shard with [`transport::run_worker`] driving the
//! identical phase code inside each, and [`FaultInjectingTransport`]
//! deterministically drops, corrupts, delays, duplicates, or reorders
//! frames over any backend. Every blocking point in that stack carries a
//! deadline ([`frame_timeout`], `NETDECOMP_FRAME_TIMEOUT_MS`), so a
//! wedged or dead shard degrades into a typed [`SimError::Transport`]
//! with the offending shard, round, and [`TransportCause`] attached —
//! never a hang. The fabric is additionally *self-healing* under
//! [`transport::launcher::supervise`]: the hub keeps a bounded
//! per-destination replay log ([`replay_window`],
//! `NETDECOMP_REPLAY_WINDOW`), so a crashed or wedged worker is killed,
//! relaunched with backoff, re-admitted via handshake resume, and
//! fast-forwarded through the rounds it missed — the run still
//! completes bit-identically, and only an exhausted restart budget
//! surfaces as the typed error naming the lost shard. Those relay
//! queues are themselves bounded (`NETDECOMP_HUB_QUEUE_CAP`): a
//! consumer that stops draining turns into a typed error naming the
//! slow shard, never unbounded hub memory.
//!
//! Crashes *older than the replay window* recover in O(interval)
//! rather than O(run length) through the [`checkpoint`] subsystem:
//! with `NETDECOMP_CHECKPOINT_INTERVAL=k` (and an optional
//! `NETDECOMP_CHECKPOINT_DIR`), every worker serializes its protocol
//! state (the [`Snapshot`] seam), inbox, CONGEST counters, and
//! accumulated stats at each `k`-round barrier — a barrier is already a
//! consistent cut — into a checksummed, versioned on-disk file
//! (magic-tagged header + lane digest, written via atomic
//! write-then-rename). A relaunched worker loads its newest *valid*
//! checkpoint — torn or corrupt files fail the digest, are skipped
//! with a typed `checkpoint_reject` flight-recorder event, and fall
//! back to the previous checkpoint or round 0, never trusted — and
//! re-handshakes at the checkpoint round, so the hub's replay log only
//! ever needs to span one interval. Only with checkpointing off does a
//! beyond-the-window crash fall back to restarting the whole
//! (deterministic) run from round 0. The control-frame wire protocol
//! (handshake, round barriers, heartbeats, stats, worker events, error
//! broadcast) is documented in [`transport::control`]; the
//! failure-mode × recovery-action matrix lives in the [`transport`]
//! module docs, the frame-level failure table in [`frame`].
//! A frame corrupted anywhere in its header or tables — everything that
//! addresses, sizes, or routes messages — or truncated or misrouted
//! surfaces as a typed [`SimError::Frame`]: never a panic, never a
//! misdelivered or reordered message. (By default the payload region is
//! not checksummed — payload-byte integrity is the transport medium's
//! job, exactly as in the shared-memory path — but the v2 format's
//! coverage flag extends the digest over it for transports that want the
//! frame self-verifying end to end; see [`frame::FrameConfig`].)
//!
//! Two wire-format versions ship: v1's byte-serial FNV-1a digest and
//! v2's word-parallel four-lane digest (~4 folds in flight instead of
//! one — the dominant per-round cost of the seam). Encoders write v2 by
//! default; every decoder accepts both, so mixed-version peers
//! interoperate. [`frame::FrameConfig`] (or `NETDECOMP_FRAME_VERSION` /
//! `NETDECOMP_FRAME_COVER_PAYLOAD`) pins what gets written, and CI runs
//! the full framed equivalence suite with the encoder pinned to v1.
//! `NETDECOMP_BACKEND=framed` (or `channel`) reroutes every
//! [`Engine::Parallel`] simulator through the seam, which is how CI
//! sweeps the whole equivalence surface across it.
//!
//! Under [`Engine::Parallel`] and [`Engine::Framed`] all phases run on
//! all shards concurrently inside a single scoped thread set per step
//! (barriers between phases); only per-round [`RoundStats`] are merged.
//! [`Engine::Sequential`] runs the same phases inline. Framed engines
//! additionally *overlap* encode and ship with compute by default: each
//! shard's frames go out the moment its own compute and account finish —
//! fused into one phase with a single barrier where the phase-separated
//! schedule needs three — because shipping touches only sender-owned
//! state. Delivery is bit-identical either way (the `engine` module docs
//! diagram both schedules); `NETDECOMP_FRAME_OVERLAP=0` or
//! [`Simulator::with_overlap`] restores the phase-separated schedule.
//!
//! # Observability
//!
//! The [`trace`] module is the stack's flight recorder and metrics
//! plane. With tracing on (`NETDECOMP_TRACE=1`, a `NETDECOMP_TRACE_OUT`
//! dump path, or [`Simulator::with_trace`]), every shard keeps a
//! preallocated ring of the last *K* [`RoundTrace`] records
//! (`NETDECOMP_TRACE_WINDOW`, default 64): per-phase
//! compute/account/ship/place/barrier-wait nanoseconds plus the round's
//! frame bytes, checksum nanoseconds, and restart generation. Recording
//! is an in-place overwrite of preallocated slots, so the steady-state
//! zero-allocation invariant holds with tracing enabled, and timing
//! never influences delivery, so [`Determinism::Verify`] stays
//! bit-identical on every backend. [`Simulator::flight_traces`]
//! snapshots the rings; on the socket fabric workers stream each
//! committed record to the hub over a dedicated `Trace` control frame,
//! and [`transport::launcher::supervise`] merges the streams with its
//! own restart/chaos/stall annotations into one [`FlightRecorder`]
//! timeline, dumped as JSONL (`netdecomp --trace-out file.jsonl`; the
//! line schema is in the [`trace`] module docs). [`MetricsRegistry`]
//! rounds out the plane with dependency-free counters, gauges, and
//! log-bucket [`Histogram`]s fed from [`RunStats`], [`DeliveryWork`],
//! and [`TransportHealth`] — all accumulation saturating.
//!
//! # Determinism guarantee
//!
//! Each shard scans senders in id order, so per-recipient delivery order
//! is sender id, then send order, then adjacency order for broadcasts —
//! independent of thread scheduling *and* shard boundaries. For any
//! protocol that is a deterministic function of `(state, incoming)`, every
//! `(threads, shards)` configuration produces **bit-identical** node
//! states, inboxes, and [`RunStats`]. [`Determinism::Verify`] (via
//! [`Simulator::step_verified`] or the `*_with` runners) checks both
//! halves per round — reference compute on cloned nodes, and sharded
//! delivery against a sequential single-buffer merge — and fails with
//! [`SimError::Nondeterminism`] if a protocol sneaks in scheduling
//! dependence.
//!
//! # Typed messages
//!
//! Protocols may speak bytes directly ([`Protocol`]) or typed messages
//! through a [`Codec`] ([`TypedProtocol`] wrapped in [`Typed`]): one
//! encode per send — broadcasts included — and one decode per receipt,
//! with malformed payloads dropped at the boundary. Decoding borrows the
//! slab-resolved payload slice directly, so the typed read path is as
//! handle-free as the raw one.
//!
//! # Example: flooding a token
//!
//! ```
//! use netdecomp_graph::generators;
//! use netdecomp_sim::{Ctx, Engine, Inbox, Outbox, Protocol, Simulator};
//! use bytes::Bytes;
//!
//! struct Flood { seen: bool }
//!
//! impl Protocol for Flood {
//!     fn start(&mut self, ctx: &Ctx<'_>, out: &mut Outbox) {
//!         if ctx.id == 0 {
//!             self.seen = true;
//!             out.broadcast(Bytes::from_static(b"x"));
//!         }
//!     }
//!     fn round(&mut self, _ctx: &Ctx<'_>, incoming: Inbox<'_>, out: &mut Outbox) {
//!         if !incoming.is_empty() && !self.seen {
//!             self.seen = true;
//!             out.broadcast(Bytes::from_static(b"x"));
//!         }
//!     }
//!     fn is_halted(&self) -> bool { self.seen }
//! }
//!
//! let g = generators::path(4);
//! let mut sim = Simulator::new(&g, |_id, _ctx| Flood { seen: false })
//!     .with_engine(Engine::Parallel { threads: 2, shards: 2 });
//! let run = sim.run_to_quiescence(100).unwrap();
//! assert!(sim.nodes().iter().all(|n| n.seen));
//! // start + 3 hops of relaying + draining the last node's echo.
//! assert_eq!(run.rounds, 5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod checkpoint;
mod codec;
mod engine;
mod error;
pub mod frame;
mod message;
mod seeding;
mod shard;
mod stats;
pub mod trace;
pub mod transport;
pub mod wire;

pub use checkpoint::{
    checkpoint_path, load_newest_checkpoint, write_checkpoint, Checkpoint, RejectedCheckpoint,
};
pub use codec::{Codec, Typed, TypedOutbox, TypedProtocol};
pub use engine::{Ctx, Determinism, Engine, Protocol, Simulator, Snapshot};
pub use error::{FrameError, SimError, TransportCause, TransportError};
pub use frame::{FrameConfig, FrameTransport, Transport, TransportHealth};
pub use message::{
    Inbox, Incoming, IncomingRef, Outbox, Outgoing, PayloadId, PayloadSlab, Recipient,
};
pub use seeding::stream_rng;
pub use shard::{RouteIndex, RouteSegment, ShardPlan};
pub use stats::{CongestLimit, DeliveryWork, RoundStats, RunStats};
pub use trace::{
    trace_enabled, trace_out, trace_window, FlightRecorder, Histogram, MetricsRegistry, RoundTrace,
    TraceEvent, TraceRing,
};
pub use transport::{
    frame_timeout, graph_digest, replay_window, FaultInjectingTransport, FaultPlan, HubAddr,
    HubClient, LinkPartition, SocketTransport, TransportFactory, WorkerStats,
};

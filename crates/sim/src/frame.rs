//! The frame transport: self-delimiting bucket frames and the shard
//! backends that ship them.
//!
//! With sender-side routing, a round's cross-shard traffic is already
//! batched: shard `k`'s router holds one bucket of
//! [`RouteRef`](crate::shard)s per destination shard, and the place phase
//! consumes exactly those buckets. This module serializes each bucket —
//! its refs *plus the payload bytes they reference* — into one
//! **self-delimiting frame** per destination shard, the unit a
//! process-per-shard transport ships. Once delivery reads frames instead
//! of in-memory buckets, "shards stop sharing an address space" becomes a
//! [`Transport`] swap, not an engine rewrite.
//!
//! # Frame layout
//!
//! All integers are little-endian `u32` unless noted. One frame carries
//! one `(sender shard, destination shard)` bucket:
//!
//! ```text
//! offset  bytes  field
//! ------  -----  -----------------------------------------------------
//!      0      3  magic  b"NDF"
//!      3      1  format version (u8, currently 1)
//!      4      4  frame length — total bytes, self-delimiting
//!      8      4  sender shard
//!     12      4  destination shard
//!     16      4  R: ref count
//!     20      4  P: payload count
//!     24      4  FNV-1a checksum over bytes [0, 24) ++ [28, 28+16R+8P)
//!     28    16R  ref table:     R x { from, payload index, lo, hi }
//! 28+16R     8P  payload table: P x { offset, length }   (region-relative)
//! 28+16R+8P   …  payload region (concatenated payload bytes)
//! ```
//!
//! A ref's `lo..hi` is the contiguous directed-edge slot range carrying
//! its copies (a unicast is a singleton, a broadcast ref one precomputed
//! adjacency segment), exactly as in the in-memory bucket. Consecutive
//! refs may share one payload-table entry — a multicast's copies are
//! stored once — and decoding hands each recipient a zero-copy
//! [`Bytes::slice`] view into the payload region. The checksum covers
//! every header and table byte (not the payload region, whose bytes are
//! re-read by recipients anyway), so a corrupted ref can never misroute a
//! message silently: it fails decode with a typed [`FrameError`] instead.
//!
//! # Transports
//!
//! A [`Transport`] moves encoded frames between shards; the engine's
//! framed backends ([`crate::Engine::Framed`]) never let one shard read
//! another's outboxes or routers — frames are the *only* cross-shard
//! channel during delivery. Two implementations ship:
//!
//! - [`LoopbackTransport`] — an in-memory slot matrix handing the encoded
//!   [`Bytes`] to the destination by reference count. This prices the
//!   seam itself (encode + checksum + decode) with zero I/O, and stays
//!   allocation-free in steady state: senders recycle their frame
//!   buffers through [`Bytes::try_into_mut`] on a two-round ring (a
//!   frame's payload slices live in destination inboxes for one round,
//!   so the round-before-last's buffer is reclaimable by the time it is
//!   needed again).
//! - [`ChannelTransport`] — each shard owns a persistent mpsc mailbox and
//!   receives *only* encoded frames from it, simulating process-per-shard
//!   isolation: no shared inbox, outbox, or router memory crosses a shard
//!   boundary. (The mailboxes persist across rounds; making the worker
//!   *threads* persistent too awaits the real rayon pool, the same caveat
//!   as the shared-memory engine — see ROADMAP.) A socket transport for a
//!   true multi-process backend would implement the same two methods.

use std::ops::Range;
use std::sync::{mpsc, Mutex};

use bytes::{BufMut, Bytes, BytesMut};
use netdecomp_graph::VertexId;

use crate::error::FrameError;
use crate::message::Outbox;
use crate::shard::Router;

/// Frame format version, embedded in every frame's fourth byte.
pub const FRAME_VERSION: u8 = 1;

/// Magic prefix of every frame.
const MAGIC: &[u8; 3] = b"NDF";

/// Fixed header length in bytes (through the checksum word).
const HEADER_LEN: usize = 28;

/// Byte offset of the frame-length word.
const LEN_OFFSET: usize = 4;

/// Byte offset of the checksum word (the checksum skips these 4 bytes).
const CHECKSUM_OFFSET: usize = 24;

/// Bytes per ref-table entry.
const REF_BYTES: usize = 16;

/// Bytes per payload-table entry.
const PAYLOAD_BYTES: usize = 8;

/// Reads the little-endian `u32` at `off`.
fn le32(data: &[u8], off: usize) -> u32 {
    u32::from_le_bytes(data[off..off + 4].try_into().expect("4 bytes"))
}

/// 32-bit FNV-1a over the two checksummed byte ranges (header without the
/// checksum word, then the tables).
fn checksum(head: &[u8], tables: &[u8]) -> u32 {
    let mut h: u32 = 0x811c_9dc5;
    for &b in head.iter().chain(tables) {
        h ^= u32::from(b);
        h = h.wrapping_mul(0x0100_0193);
    }
    h
}

/// Which frame transport a framed engine ships buckets through.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FrameTransport {
    /// In-memory slot matrix: frames change hands by reference count
    /// (zero-copy, allocation-free in steady state). Prices the frame
    /// seam itself.
    #[default]
    Loopback,
    /// Per-shard mpsc mailboxes: a shard receives only encoded frames,
    /// never touching another shard's memory — process-per-shard
    /// semantics on threads.
    Channel,
}

/// Moves one round's encoded bucket frames between shards.
///
/// Contract: during each round every sender shard calls [`Transport::send`]
/// exactly once per destination shard (empty buckets ship header-only
/// frames, so arrival counts are deterministic), all sends complete before
/// any [`Transport::collect`] for that round begins (the engine
/// barriers between the phases), and `collect` is called exactly once per
/// destination per round.
pub trait Transport: Send + Sync + std::fmt::Debug {
    /// Ships one encoded frame from sender shard `from` to destination
    /// shard `to`.
    fn send(&self, from: usize, to: usize, frame: Bytes);

    /// Collects the frames addressed to shard `to`: stores the frame from
    /// sender shard `k` at `into[k]`. `into` has one slot per shard; slots
    /// left `None` (a frame that never arrived) are surfaced by the place
    /// phase as a [`FrameError::MissingFrame`]. An implementation may
    /// either return immediately with whatever arrived (loopback) or
    /// block until `into.len()` frames are in hand (channels) — under the
    /// contract above both are equivalent, since every frame has already
    /// been sent.
    fn collect(&self, to: usize, into: &mut [Option<Bytes>]);
}

/// In-memory [`Transport`]: an `S x S` slot matrix, grouped by
/// destination so a collect locks once.
#[derive(Debug)]
pub struct LoopbackTransport {
    /// `slots[to][from]`, taken (moved out) by the destination's collect.
    slots: Vec<Mutex<Vec<Option<Bytes>>>>,
}

impl LoopbackTransport {
    /// A loopback fabric connecting `shards` shards.
    #[must_use]
    pub fn new(shards: usize) -> Self {
        LoopbackTransport {
            slots: (0..shards)
                .map(|_| Mutex::new(vec![None; shards]))
                .collect(),
        }
    }
}

impl Transport for LoopbackTransport {
    fn send(&self, from: usize, to: usize, frame: Bytes) {
        let mut row = self.slots[to].lock().expect("no poisoned loopback row");
        row[from] = Some(frame);
    }

    fn collect(&self, to: usize, into: &mut [Option<Bytes>]) {
        let mut row = self.slots[to].lock().expect("no poisoned loopback row");
        for (slot, out) in row.iter_mut().zip(into.iter_mut()) {
            *out = slot.take();
        }
    }
}

/// Message-passing [`Transport`]: one persistent mpsc mailbox per shard.
#[derive(Debug)]
pub struct ChannelTransport {
    /// `senders[to]` feeds shard `to`'s mailbox (tagged with the sender).
    senders: Vec<mpsc::Sender<(usize, Bytes)>>,
    /// Each shard's mailbox; locked only by its owner during collect.
    receivers: Vec<Mutex<mpsc::Receiver<(usize, Bytes)>>>,
}

impl ChannelTransport {
    /// A channel fabric connecting `shards` shards.
    #[must_use]
    pub fn new(shards: usize) -> Self {
        let mut senders = Vec::with_capacity(shards);
        let mut receivers = Vec::with_capacity(shards);
        for _ in 0..shards {
            let (tx, rx) = mpsc::channel();
            senders.push(tx);
            receivers.push(Mutex::new(rx));
        }
        ChannelTransport { senders, receivers }
    }
}

impl Transport for ChannelTransport {
    fn send(&self, from: usize, to: usize, frame: Bytes) {
        self.senders[to]
            .send((from, frame))
            .expect("mailbox receiver outlives the round");
    }

    /// Blocks until `into.len()` frames are in hand. Liveness leans on
    /// the [`Transport`] contract (the engine barriers ship before
    /// collect, one frame per sender) — a peer that under-delivers would
    /// park this thread rather than produce a
    /// [`FrameError::MissingFrame`], which for this backend can only
    /// arise from a duplicated sender tag displacing another slot.
    fn collect(&self, to: usize, into: &mut [Option<Bytes>]) {
        let rx = self.receivers[to].lock().expect("no poisoned mailbox");
        for _ in 0..into.len() {
            let (from, frame) = rx.recv().expect("one frame per sender per round");
            into[from] = Some(frame);
        }
    }
}

/// Incremental encoder for one frame: push routed entries, then assemble.
///
/// The builder's scratch tables are retained across frames (call
/// [`FrameBuilder::begin`] to start the next one), so steady-state
/// encoding allocates nothing once every table has reached its high-water
/// capacity.
#[derive(Debug, Default)]
pub struct FrameBuilder {
    sender: u32,
    dest: u32,
    /// Ref table scratch: `{from, payload index, lo, hi}`.
    refs: Vec<[u32; 4]>,
    /// Payload table scratch: `(offset, length)` into `payload`.
    payloads: Vec<(u32, u32)>,
    /// Payload region scratch.
    payload: Vec<u8>,
}

impl FrameBuilder {
    /// An empty builder (for shard `0 -> 0` until [`FrameBuilder::begin`]
    /// retargets it).
    #[must_use]
    pub fn new() -> Self {
        FrameBuilder::default()
    }

    /// Resets the builder for a new `sender -> dest` frame, keeping all
    /// scratch capacity.
    ///
    /// # Panics
    ///
    /// Panics if either shard index exceeds the `u32` wire bound.
    pub fn begin(&mut self, sender: usize, dest: usize) {
        self.sender = u32::try_from(sender).expect("shard index fits the wire format");
        self.dest = u32::try_from(dest).expect("shard index fits the wire format");
        self.refs.clear();
        self.payloads.clear();
        self.payload.clear();
    }

    /// Appends one routed entry carrying a new payload: sender vertex
    /// `from` delivers `payload` along the directed-edge slot range
    /// `slots`.
    ///
    /// # Panics
    ///
    /// Panics if the slot range is decreasing or any position exceeds the
    /// `u32` wire bound — a frame that cannot represent its bucket must
    /// never be shipped silently truncated.
    pub fn push(&mut self, from: VertexId, slots: Range<usize>, payload: &[u8]) {
        let off = u32::try_from(self.payload.len()).expect("payload region fits the wire format");
        let len = u32::try_from(payload.len()).expect("payload fits the wire format");
        assert!(
            off.checked_add(len).is_some(),
            "payload region fits the wire format"
        );
        self.payload.extend_from_slice(payload);
        self.payloads.push((off, len));
        self.push_ref(from, slots);
    }

    /// Appends one routed entry sharing the most recently pushed payload
    /// (a multicast's later copies).
    ///
    /// # Panics
    ///
    /// Panics if nothing has been pushed since [`FrameBuilder::begin`],
    /// or on the same wire-bound violations as [`FrameBuilder::push`].
    pub fn push_shared(&mut self, from: VertexId, slots: Range<usize>) {
        assert!(!self.payloads.is_empty(), "push_shared needs a prior push");
        self.push_ref(from, slots);
    }

    fn push_ref(&mut self, from: VertexId, slots: Range<usize>) {
        assert!(slots.start <= slots.end, "slot range is decreasing");
        let from = u32::try_from(from).expect("vertex id fits the wire format");
        let lo = u32::try_from(slots.start).expect("slot position fits the wire format");
        let hi = u32::try_from(slots.end).expect("slot position fits the wire format");
        let payload = (self.payloads.len() - 1) as u32;
        self.refs.push([from, payload, lo, hi]);
    }

    /// Entries pushed since [`FrameBuilder::begin`].
    #[must_use]
    pub fn ref_count(&self) -> usize {
        self.refs.len()
    }

    /// Assembles the frame into `buf` (cleared first — pass a recycled
    /// buffer to encode without allocating) and freezes it.
    #[must_use]
    pub fn finish_into(&mut self, mut buf: BytesMut) -> Bytes {
        buf.clear();
        buf.put_slice(MAGIC);
        buf.put_u8(FRAME_VERSION);
        buf.put_u32_le(0); // frame length, patched below
        buf.put_u32_le(self.sender);
        buf.put_u32_le(self.dest);
        buf.put_u32_le(self.refs.len() as u32);
        buf.put_u32_le(self.payloads.len() as u32);
        buf.put_u32_le(0); // checksum, patched below
        for r in &self.refs {
            for w in r {
                buf.put_u32_le(*w);
            }
        }
        for &(off, len) in &self.payloads {
            buf.put_u32_le(off);
            buf.put_u32_le(len);
        }
        let tables_end = buf.len();
        buf.put_slice(&self.payload);
        let total = u32::try_from(buf.len()).expect("frame length fits the wire format");
        buf[LEN_OFFSET..LEN_OFFSET + 4].copy_from_slice(&total.to_le_bytes());
        let sum = checksum(&buf[..CHECKSUM_OFFSET], &buf[HEADER_LEN..tables_end]);
        buf[CHECKSUM_OFFSET..CHECKSUM_OFFSET + 4].copy_from_slice(&sum.to_le_bytes());
        buf.freeze()
    }

    /// Assembles the frame into a fresh buffer.
    #[must_use]
    pub fn finish(&mut self) -> Bytes {
        self.finish_into(BytesMut::new())
    }
}

/// One decoded ref-table entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameRef {
    /// Global sender vertex id.
    pub from: u32,
    /// Index into the frame's payload table.
    pub payload: u32,
    /// First directed-edge slot of the routed copies.
    pub lo: u32,
    /// One past the last slot.
    pub hi: u32,
}

/// A validated, decoded frame: a zero-copy view over the encoded bytes.
///
/// Decoding checks the magic, version, declared length, header checksum,
/// and every table bound up front, so the accessors below cannot read out
/// of range; [`Frame::payload`] hands out [`Bytes::slice`] views of the
/// payload region without copying.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    bytes: Bytes,
    sender: u32,
    dest: u32,
    ref_count: usize,
    payload_count: usize,
    /// Byte offset of the payload table.
    payload_table: usize,
    /// Byte offset of the payload region.
    region: usize,
}

impl Frame {
    /// Parses and validates one encoded frame.
    ///
    /// # Errors
    ///
    /// Every malformation maps to a typed [`FrameError`]: short or
    /// overlong input, wrong magic or version, a checksum mismatch, or
    /// tables/payload entries that overrun their regions.
    pub fn decode(bytes: Bytes) -> Result<Frame, FrameError> {
        let data = bytes.as_slice();
        if data.len() < HEADER_LEN {
            return Err(FrameError::Truncated {
                needed: HEADER_LEN,
                have: data.len(),
            });
        }
        if &data[..3] != MAGIC {
            return Err(FrameError::BadMagic);
        }
        if data[3] != FRAME_VERSION {
            return Err(FrameError::VersionMismatch {
                found: data[3],
                expected: FRAME_VERSION,
            });
        }
        let declared = le32(data, LEN_OFFSET) as usize;
        if declared > data.len() {
            return Err(FrameError::Truncated {
                needed: declared,
                have: data.len(),
            });
        }
        if declared < data.len() {
            return Err(FrameError::Malformed {
                detail: "bytes trail the declared frame length",
            });
        }
        let sender = le32(data, 8);
        let dest = le32(data, 12);
        let ref_count = le32(data, 16) as usize;
        let payload_count = le32(data, 20) as usize;
        let tables = (ref_count as u64) * (REF_BYTES as u64)
            + (payload_count as u64) * (PAYLOAD_BYTES as u64);
        let region = (HEADER_LEN as u64).saturating_add(tables);
        if region > declared as u64 {
            return Err(FrameError::Malformed {
                detail: "tables overrun the frame",
            });
        }
        let region = region as usize;
        let declared_sum = le32(data, CHECKSUM_OFFSET);
        let computed = checksum(&data[..CHECKSUM_OFFSET], &data[HEADER_LEN..region]);
        if computed != declared_sum {
            return Err(FrameError::ChecksumMismatch {
                declared: declared_sum,
                computed,
            });
        }
        let payload_table = HEADER_LEN + ref_count * REF_BYTES;
        let region_len = declared - region;
        for i in 0..payload_count {
            let off = le32(data, payload_table + PAYLOAD_BYTES * i) as usize;
            let len = le32(data, payload_table + PAYLOAD_BYTES * i + 4) as usize;
            if off + len > region_len {
                return Err(FrameError::Malformed {
                    detail: "payload entry overruns the payload region",
                });
            }
        }
        for i in 0..ref_count {
            let base = HEADER_LEN + REF_BYTES * i;
            if le32(data, base + 4) as usize >= payload_count {
                return Err(FrameError::Malformed {
                    detail: "ref points past the payload table",
                });
            }
            if le32(data, base + 8) > le32(data, base + 12) {
                return Err(FrameError::Malformed {
                    detail: "ref slot range is decreasing",
                });
            }
        }
        Ok(Frame {
            bytes,
            sender,
            dest,
            ref_count,
            payload_count,
            payload_table,
            region,
        })
    }

    /// The shard that encoded this frame.
    #[must_use]
    pub fn sender_shard(&self) -> usize {
        self.sender as usize
    }

    /// The shard this frame is addressed to.
    #[must_use]
    pub fn dest_shard(&self) -> usize {
        self.dest as usize
    }

    /// Number of ref-table entries.
    #[must_use]
    pub fn ref_count(&self) -> usize {
        self.ref_count
    }

    /// Number of payload-table entries.
    #[must_use]
    pub fn payload_count(&self) -> usize {
        self.payload_count
    }

    /// Total encoded size in bytes.
    #[must_use]
    pub fn encoded_len(&self) -> usize {
        self.bytes.len()
    }

    /// The ref-table entries, in bucket (= delivery) order.
    pub fn refs(&self) -> impl Iterator<Item = FrameRef> + '_ {
        let data = self.bytes.as_slice();
        (0..self.ref_count).map(move |i| {
            let base = HEADER_LEN + REF_BYTES * i;
            FrameRef {
                from: le32(data, base),
                payload: le32(data, base + 4),
                lo: le32(data, base + 8),
                hi: le32(data, base + 12),
            }
        })
    }

    /// A zero-copy view of payload `idx` (bounds-checked at decode).
    ///
    /// # Panics
    ///
    /// Panics if `idx >= payload_count()`.
    #[must_use]
    pub fn payload(&self, idx: u32) -> Bytes {
        assert!(
            (idx as usize) < self.payload_count,
            "payload index in range"
        );
        let data = self.bytes.as_slice();
        let entry = self.payload_table + PAYLOAD_BYTES * idx as usize;
        let off = le32(data, entry) as usize;
        let len = le32(data, entry + 4) as usize;
        self.bytes.slice(self.region + off..self.region + off + len)
    }
}

/// One shard's sender side of the frame seam: encodes every router bucket
/// into a frame and ships it, recycling frame buffers on a two-round ring.
///
/// Why two rounds: a frame's payload slices sit in destination inboxes
/// for exactly one round (placed in round `r`, consumed by round `r + 1`'s
/// compute, overwritten by its place), so the buffer shipped in round
/// `r - 2` is uniquely referenced again by round `r` and
/// [`Bytes::try_into_mut`] reclaims it — steady-state framing allocates
/// nothing. A protocol that retains payload views longer just makes the
/// reclaim miss and fall back to a fresh buffer; correctness is
/// unaffected.
///
/// Retained capacity is bounded with the same rolling-high-water policy
/// as [`Outbox`] and the router buckets: a reclaimed buffer whose
/// capacity sits above [`Outbox::RETAIN_FACTOR`] times the per-dest mark
/// is dropped, so one bursty round cannot pin `2 x shards` burst-sized
/// frame buffers per shard forever, while constant-volume rounds never
/// shrink (doubling growth stays under the factor) and stay zero-alloc.
#[derive(Debug, Default)]
pub(crate) struct FrameEncoder {
    builder: FrameBuilder,
    /// `ring[dest][parity]`: this shard's retained handle to the frame it
    /// shipped to `dest` two rounds ago (reclaim candidate).
    ring: Vec<[Option<Bytes>; 2]>,
    /// Rolling high-water mark of encoded frame bytes, per destination.
    high_water: Vec<usize>,
    parity: usize,
}

/// Floor of the frame-buffer retention mark, in bytes (a header-only
/// frame is 28 bytes; tiny frames must never thrash).
const FRAME_RETAIN_FLOOR: usize = 256;

impl FrameEncoder {
    pub(crate) fn new(shards: usize) -> Self {
        FrameEncoder {
            builder: FrameBuilder::new(),
            ring: vec![[None, None]; shards],
            high_water: vec![0; shards],
            parity: 0,
        }
    }

    /// Encodes shard `me`'s buckets — refs from `router`, payload bytes
    /// from the shard's own `outboxes` chunk (whose first sender is
    /// `base`) — and ships one frame per destination shard through
    /// `transport`.
    pub(crate) fn ship(
        &mut self,
        me: usize,
        router: &Router,
        outboxes: &[Outbox],
        base: VertexId,
        transport: &dyn Transport,
    ) {
        self.parity ^= 1;
        for dest in 0..self.ring.len() {
            let cap = Outbox::RETAIN_FACTOR * self.high_water[dest].max(FRAME_RETAIN_FLOOR);
            let buf = match self.ring[dest][self.parity].take() {
                Some(old) => match old.try_into_mut() {
                    // Dropping an over-retained buffer (rather than
                    // shrinking in place) keeps the shim's `BytesMut`
                    // surface identical to the real crate's.
                    Ok(buf) if buf.capacity() <= cap => buf,
                    Ok(_) | Err(_) => BytesMut::new(),
                },
                None => BytesMut::new(),
            };
            self.builder.begin(me, dest);
            let mut last: Option<(u32, u32)> = None;
            for route in router.bucket(dest) {
                let slots = route.lo as usize..route.hi as usize;
                if last == Some((route.from, route.msg)) {
                    self.builder.push_shared(route.from as usize, slots);
                } else {
                    let payload = &outboxes[route.from as usize - base].messages()
                        [route.msg as usize]
                        .payload;
                    self.builder.push(route.from as usize, slots, payload);
                    last = Some((route.from, route.msg));
                }
            }
            let frame = self.builder.finish_into(buf);
            let hw = &mut self.high_water[dest];
            *hw = (*hw - *hw / 4).max(frame.len());
            self.ring[dest][self.parity] = Some(frame.clone());
            transport.send(me, dest, frame);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_frame_round_trips() {
        let mut b = FrameBuilder::new();
        b.begin(3, 5);
        let frame = b.finish();
        assert_eq!(frame.len(), HEADER_LEN);
        let f = Frame::decode(frame).unwrap();
        assert_eq!(f.sender_shard(), 3);
        assert_eq!(f.dest_shard(), 5);
        assert_eq!(f.ref_count(), 0);
        assert_eq!(f.payload_count(), 0);
        assert_eq!(f.refs().count(), 0);
    }

    #[test]
    fn entries_round_trip_with_shared_payloads() {
        let mut b = FrameBuilder::new();
        b.begin(0, 1);
        b.push(7, 40..41, b"alpha");
        b.push_shared(7, 55..56); // same multicast payload, second target
        b.push(9, 10..14, b"bee");
        let f = Frame::decode(b.finish()).unwrap();
        let refs: Vec<_> = f.refs().collect();
        assert_eq!(refs.len(), 3);
        assert_eq!(f.payload_count(), 2);
        assert_eq!(refs[0].from, 7);
        assert_eq!((refs[0].lo, refs[0].hi), (40, 41));
        assert_eq!(refs[0].payload, refs[1].payload, "multicast shares bytes");
        assert_eq!(f.payload(refs[1].payload).as_slice(), b"alpha");
        assert_eq!(f.payload(refs[2].payload).as_slice(), b"bee");
        assert_eq!((refs[2].lo, refs[2].hi), (10, 14));
    }

    #[test]
    fn builder_scratch_is_reusable() {
        let mut b = FrameBuilder::new();
        b.begin(0, 0);
        b.push(1, 2..3, b"first");
        let one = b.finish();
        b.begin(2, 4);
        b.push(5, 6..7, b"second");
        let two = Frame::decode(b.finish()).unwrap();
        assert_eq!(two.sender_shard(), 2);
        assert_eq!(two.ref_count(), 1);
        assert_eq!(two.payload(0).as_slice(), b"second");
        // The first frame is unaffected by the rebuild.
        let one = Frame::decode(one).unwrap();
        assert_eq!(one.payload(0).as_slice(), b"first");
    }

    #[test]
    fn payload_views_share_the_frame_buffer() {
        let mut b = FrameBuilder::new();
        b.begin(0, 0);
        b.push(0, 0..1, b"shared-zero-copy");
        let encoded = b.finish();
        let f = Frame::decode(encoded.clone()).unwrap();
        let view = f.payload(0);
        drop(f);
        // The view keeps the frame alive; reclaiming must fail while it
        // (and our handle) exist, and succeed once the views are gone.
        let encoded = encoded.try_into_mut().expect_err("view still live");
        drop(view);
        assert!(encoded.try_into_mut().is_ok());
    }

    #[test]
    fn loopback_moves_frames_once() {
        let t = LoopbackTransport::new(2);
        let mut b = FrameBuilder::new();
        b.begin(1, 0);
        let frame = b.finish();
        t.send(1, 0, frame.clone());
        let mut got = vec![None, None];
        t.collect(0, &mut got);
        assert!(got[0].is_none());
        assert_eq!(got[1].as_ref().unwrap().as_slice(), frame.as_slice());
        // A second collect finds the slots drained.
        let mut again = vec![None, None];
        t.collect(0, &mut again);
        assert!(again.iter().all(Option::is_none));
    }

    #[test]
    fn channel_collects_one_frame_per_sender() {
        let t = ChannelTransport::new(3);
        let mut b = FrameBuilder::new();
        for from in 0..3 {
            b.begin(from, 2);
            b.push(from, from..from + 1, &[from as u8]);
            t.send(from, 2, b.finish());
        }
        let mut got = vec![None, None, None];
        t.collect(2, &mut got);
        for (from, slot) in got.iter().enumerate() {
            let f = Frame::decode(slot.clone().expect("frame arrived")).unwrap();
            assert_eq!(f.sender_shard(), from);
        }
    }

    #[test]
    fn encoder_ships_one_valid_frame_per_destination_per_round() {
        let t = LoopbackTransport::new(2);
        let mut router = Router::default();
        router.reset(2);
        let mut enc = FrameEncoder::new(2);
        for round in 0..6 {
            enc.ship(0, &router, &[], 0, &t);
            for dest in 0..2 {
                let mut got = vec![None, None];
                t.collect(dest, &mut got);
                let frame = Frame::decode(got[0].take().expect("frame arrived")).unwrap();
                assert_eq!(frame.sender_shard(), 0, "round {round} dest {dest}");
                assert_eq!(frame.dest_shard(), dest, "round {round} dest {dest}");
                assert_eq!(frame.ref_count(), 0);
                assert!(got[1].is_none(), "no frame from a nonexistent sender");
            }
        }
    }

    #[test]
    fn frame_buffer_capacity_decays_after_a_burst() {
        use crate::shard::RouteRef;

        let t = LoopbackTransport::new(1);
        let drain = |t: &LoopbackTransport| {
            let mut got = vec![None];
            t.collect(0, &mut got);
        };
        let mut router = Router::default();
        router.reset(1);
        router.push(
            0,
            RouteRef {
                from: 0,
                msg: 0,
                lo: 0,
                hi: 1,
            },
        );
        let mut outbox = crate::Outbox::new();
        outbox.unicast(0, Bytes::from(vec![7u8; 64 * 1024]));
        let outboxes = [outbox];
        let mut enc = FrameEncoder::new(1);
        enc.ship(0, &router, &outboxes, 0, &t);
        drain(&t);
        assert!(enc.high_water[0] >= 64 * 1024, "burst mark recorded");
        // Dozens of empty rounds later, the mark — and with it the
        // retained buffer capacity the reclaim path will accept — has
        // decayed back to the steady scale (same policy as Outbox).
        router.reset(1);
        for _ in 0..64 {
            enc.ship(0, &router, &[], 0, &t);
            drain(&t);
        }
        assert!(
            enc.high_water[0] <= FRAME_RETAIN_FLOOR,
            "mark {} still pinned after decay",
            enc.high_water[0]
        );
    }

    #[test]
    fn recycle_ring_never_aliases_a_frame_a_receiver_still_holds() {
        // A receiver that keeps a frame (or a payload view) alive across
        // later rounds must see its bytes unchanged: the ring's reclaim
        // goes through `Bytes::try_into_mut`, which refuses shared
        // buffers, so the encoder falls back to a fresh buffer instead of
        // rewriting one in place. Exercised far past the two-round parity
        // window.
        let t = LoopbackTransport::new(1);
        let mut router = Router::default();
        router.reset(1);
        let mut enc = FrameEncoder::new(1);
        enc.ship(0, &router, &[], 0, &t);
        let mut got = vec![None];
        t.collect(0, &mut got);
        let held = got[0].take().unwrap();
        let snapshot = held.as_slice().to_vec();
        for _ in 0..6 {
            enc.ship(0, &router, &[], 0, &t);
            let mut later = vec![None];
            t.collect(0, &mut later);
            assert_eq!(
                held.as_slice(),
                &snapshot[..],
                "a held frame was rewritten in place"
            );
        }
    }
}

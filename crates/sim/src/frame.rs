//! The frame transport: self-delimiting bucket frames and the shard
//! backends that ship them.
//!
//! With sender-side routing, a round's cross-shard traffic is already
//! batched: shard `k`'s router holds one bucket of
//! [`RouteRef`](crate::shard)s per destination shard, and the place phase
//! consumes exactly those buckets. This module serializes each bucket —
//! its refs *plus the payload bytes they reference* — into one
//! **self-delimiting frame** per destination shard, the unit a
//! process-per-shard transport ships. Once delivery reads frames instead
//! of in-memory buckets, "shards stop sharing an address space" becomes a
//! [`Transport`] swap, not an engine rewrite.
//!
//! # Frame layout
//!
//! All integers are little-endian `u32` unless noted. One frame carries
//! one `(sender shard, destination shard)` bucket:
//!
//! ```text
//! offset  bytes  field
//! ------  -----  -----------------------------------------------------
//!      0      3  magic  b"NDF"
//!      3      1  format version (u8, currently 1)
//!      4      4  frame length — total bytes, self-delimiting
//!      8      4  sender shard
//!     12      4  destination shard
//!     16      4  R: ref count
//!     20      4  P: payload count
//!     24      4  FNV-1a checksum over bytes [0, 24) ++ [28, 28+16R+8P)
//!     28    16R  ref table:     R x { from, payload index, lo, hi }
//! 28+16R     8P  payload table: P x { offset, length }   (region-relative)
//! 28+16R+8P   …  payload region (concatenated payload bytes)
//! ```
//!
//! A ref's `lo..hi` is the contiguous directed-edge slot range carrying
//! its copies (a unicast is a singleton, a broadcast ref one precomputed
//! adjacency segment), exactly as in the in-memory bucket. Consecutive
//! refs may share one payload-table entry — a multicast's copies are
//! stored once — and decoding hands each recipient a zero-copy
//! [`Bytes::slice`] view into the payload region. The checksum covers
//! every header and table byte (not the payload region, whose bytes are
//! re-read by recipients anyway), so a corrupted ref can never misroute a
//! message silently: it fails decode with a typed [`FrameError`] instead.
//!
//! # Transports
//!
//! A [`Transport`] moves encoded frames between shards; the engine's
//! framed backends ([`crate::Engine::Framed`]) never let one shard read
//! another's outboxes or routers — frames are the *only* cross-shard
//! channel during delivery. Two implementations ship:
//!
//! - [`LoopbackTransport`] — an in-memory slot matrix handing the encoded
//!   [`Bytes`] to the destination by reference count. This prices the
//!   seam itself (encode + checksum + decode) with zero I/O, and stays
//!   allocation-free in steady state: senders recycle their frame
//!   buffers through [`Bytes::try_into_mut`] on a two-round ring (a
//!   frame's payload slices live in destination payload slabs for one
//!   round, so the round-before-last's buffer is reclaimable by the time
//!   it is needed again).
//! - [`ChannelTransport`] — each shard owns a persistent mpsc mailbox and
//!   receives *only* encoded frames from it, simulating process-per-shard
//!   isolation: no shared inbox, outbox, or router memory crosses a shard
//!   boundary. (The mailboxes persist across rounds; making the worker
//!   *threads* persistent too awaits the real rayon pool, the same caveat
//!   as the shared-memory engine — see ROADMAP.) A socket transport for a
//!   true multi-process backend would implement the same two methods.

use std::ops::Range;
use std::sync::{mpsc, Mutex};

use bytes::{BufMut, Bytes, BytesMut};
use netdecomp_graph::VertexId;

use crate::error::FrameError;
use crate::message::Outbox;
use crate::shard::{RouteRef, Router};

/// Frame format version, embedded in every frame's fourth byte.
pub const FRAME_VERSION: u8 = 1;

/// Magic prefix of every frame.
const MAGIC: &[u8; 3] = b"NDF";

/// Fixed header length in bytes (through the checksum word).
const HEADER_LEN: usize = 28;

/// Byte offset of the frame-length word.
const LEN_OFFSET: usize = 4;

/// Byte offset of the checksum word (the checksum skips these 4 bytes).
const CHECKSUM_OFFSET: usize = 24;

/// Bytes per ref-table entry.
const REF_BYTES: usize = 16;

/// Bytes per payload-table entry.
const PAYLOAD_BYTES: usize = 8;

/// FNV-1a offset basis (the running digest's initial state).
const FNV_INIT: u32 = 0x811c_9dc5;

/// Reads the little-endian `u32` at `off`.
fn le32(data: &[u8], off: usize) -> u32 {
    u32::from_le_bytes(data[off..off + 4].try_into().expect("4 bytes"))
}

/// Folds `bytes` into a running 32-bit FNV-1a digest.
fn fnv1a(mut h: u32, bytes: &[u8]) -> u32 {
    for &b in bytes {
        h ^= u32::from(b);
        h = h.wrapping_mul(0x0100_0193);
    }
    h
}

/// 32-bit FNV-1a over the two checksummed byte ranges (header without the
/// checksum word, then the tables) — the decode-side verification;
/// encoding folds the same digest incrementally as it writes.
fn checksum(head: &[u8], tables: &[u8]) -> u32 {
    fnv1a(fnv1a(FNV_INIT, head), tables)
}

/// Which frame transport a framed engine ships buckets through.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FrameTransport {
    /// In-memory slot matrix: frames change hands by reference count
    /// (zero-copy, allocation-free in steady state). Prices the frame
    /// seam itself.
    #[default]
    Loopback,
    /// Per-shard mpsc mailboxes: a shard receives only encoded frames,
    /// never touching another shard's memory — process-per-shard
    /// semantics on threads.
    Channel,
}

/// Moves one round's encoded bucket frames between shards.
///
/// Contract: during each round every sender shard calls [`Transport::send`]
/// exactly once per destination shard (empty buckets ship header-only
/// frames, so arrival counts are deterministic), all sends complete before
/// any [`Transport::collect`] for that round begins (the engine
/// barriers between the phases), and `collect` is called exactly once per
/// destination per round.
pub trait Transport: Send + Sync + std::fmt::Debug {
    /// Ships one encoded frame from sender shard `from` to destination
    /// shard `to`.
    fn send(&self, from: usize, to: usize, frame: Bytes);

    /// Collects the frames addressed to shard `to`: stores the frame from
    /// sender shard `k` at `into[k]`. `into` has one slot per shard; slots
    /// left `None` (a frame that never arrived) are surfaced by the place
    /// phase as a [`FrameError::MissingFrame`]. An implementation may
    /// either return immediately with whatever arrived (loopback) or
    /// block until `into.len()` frames are in hand (channels) — under the
    /// contract above both are equivalent, since every frame has already
    /// been sent.
    fn collect(&self, to: usize, into: &mut [Option<Bytes>]);
}

/// In-memory [`Transport`]: an `S x S` slot matrix, grouped by
/// destination so a collect locks once.
#[derive(Debug)]
pub struct LoopbackTransport {
    /// `slots[to][from]`, taken (moved out) by the destination's collect.
    slots: Vec<Mutex<Vec<Option<Bytes>>>>,
}

impl LoopbackTransport {
    /// A loopback fabric connecting `shards` shards.
    #[must_use]
    pub fn new(shards: usize) -> Self {
        LoopbackTransport {
            slots: (0..shards)
                .map(|_| Mutex::new(vec![None; shards]))
                .collect(),
        }
    }
}

impl Transport for LoopbackTransport {
    fn send(&self, from: usize, to: usize, frame: Bytes) {
        let mut row = self.slots[to].lock().expect("no poisoned loopback row");
        row[from] = Some(frame);
    }

    fn collect(&self, to: usize, into: &mut [Option<Bytes>]) {
        let mut row = self.slots[to].lock().expect("no poisoned loopback row");
        for (slot, out) in row.iter_mut().zip(into.iter_mut()) {
            *out = slot.take();
        }
    }
}

/// Message-passing [`Transport`]: one persistent mpsc mailbox per shard.
#[derive(Debug)]
pub struct ChannelTransport {
    /// `senders[to]` feeds shard `to`'s mailbox (tagged with the sender).
    senders: Vec<mpsc::Sender<(usize, Bytes)>>,
    /// Each shard's mailbox; locked only by its owner during collect.
    receivers: Vec<Mutex<mpsc::Receiver<(usize, Bytes)>>>,
}

impl ChannelTransport {
    /// A channel fabric connecting `shards` shards.
    #[must_use]
    pub fn new(shards: usize) -> Self {
        let mut senders = Vec::with_capacity(shards);
        let mut receivers = Vec::with_capacity(shards);
        for _ in 0..shards {
            let (tx, rx) = mpsc::channel();
            senders.push(tx);
            receivers.push(Mutex::new(rx));
        }
        ChannelTransport { senders, receivers }
    }
}

impl Transport for ChannelTransport {
    fn send(&self, from: usize, to: usize, frame: Bytes) {
        self.senders[to]
            .send((from, frame))
            .expect("mailbox receiver outlives the round");
    }

    /// Blocks until `into.len()` frames are in hand. Liveness leans on
    /// the [`Transport`] contract (the engine barriers ship before
    /// collect, one frame per sender) — a peer that under-delivers would
    /// park this thread rather than produce a
    /// [`FrameError::MissingFrame`], which for this backend can only
    /// arise from a duplicated sender tag displacing another slot.
    fn collect(&self, to: usize, into: &mut [Option<Bytes>]) {
        let rx = self.receivers[to].lock().expect("no poisoned mailbox");
        for _ in 0..into.len() {
            let (from, frame) = rx.recv().expect("one frame per sender per round");
            into[from] = Some(frame);
        }
    }
}

/// Encodes one router bucket into a frame in a **single pass**: the hot
/// path behind [`FrameEncoder::ship`].
///
/// The bucket is fully known up front (unlike the incremental
/// [`FrameBuilder`], which must stage payload bytes because table sizes
/// are unknown until `finish`), so the frame is laid out exactly once: a
/// cheap metadata pass over the refs sizes the frame, then every section
/// — header, ref table, payload table, payload region — is appended
/// straight to its final position in the output buffer (no staging, no
/// pre-zeroing: each output byte is written exactly once). Payload bytes
/// are copied exactly once (sender outbox → frame), and the FNV-1a
/// header/table checksum is folded incrementally as each table entry is
/// appended, never re-walking the buffer.
///
/// Payload sharing uses the same rule the place phase depends on: refs of
/// one `(sender, message)` are consecutive within a bucket, so a
/// consecutive-pair check is an exact dedup and consecutive sharing refs
/// point at one payload-table entry (a multicast's copies ship one
/// payload).
///
/// # Panics
///
/// Panics if the encoded frame would exceed the `u32` wire bound — a
/// bucket that cannot be represented must never ship silently truncated.
pub(crate) fn encode_bucket(
    sender: usize,
    dest: usize,
    bucket: &[RouteRef],
    outboxes: &[Outbox],
    base: VertexId,
    mut buf: BytesMut,
) -> Bytes {
    let payload_of =
        |r: &RouteRef| &outboxes[r.from as usize - base].messages()[r.msg as usize].payload;
    // Metadata pass: unique payload count and payload region length.
    let mut payload_count = 0usize;
    let mut region_len = 0usize;
    let mut last: Option<(u32, u32)> = None;
    for r in bucket {
        if last != Some((r.from, r.msg)) {
            payload_count += 1;
            region_len += payload_of(r).len();
            last = Some((r.from, r.msg));
        }
    }
    let total = HEADER_LEN + REF_BYTES * bucket.len() + PAYLOAD_BYTES * payload_count + region_len;
    let total32 = u32::try_from(total).expect("frame length fits the wire format");
    // Every section is *appended* in layout order (never pre-zeroing the
    // buffer — a recycled buffer's bytes are each written exactly once),
    // and the digest is folded as each header and table byte is appended,
    // so the only post-pass write is patching the 4-byte checksum word.
    buf.clear();
    buf.reserve(total);
    buf.put_slice(MAGIC);
    buf.put_u8(FRAME_VERSION);
    buf.put_u32_le(total32);
    buf.put_u32_le(u32::try_from(sender).expect("shard index fits the wire format"));
    buf.put_u32_le(u32::try_from(dest).expect("shard index fits the wire format"));
    buf.put_u32_le(bucket.len() as u32);
    buf.put_u32_le(payload_count as u32);
    buf.put_u32_le(0); // checksum, patched below (excluded from the digest)
    let mut sum = fnv1a(FNV_INIT, &buf[..CHECKSUM_OFFSET]);
    // Ref-table walk: assign payload indices by the consecutive dedup and
    // fold each entry into the digest as it is appended.
    let mut last: Option<(u32, u32)> = None;
    let mut payload_idx = 0u32;
    for r in bucket {
        if last != Some((r.from, r.msg)) {
            if last.is_some() {
                payload_idx += 1;
            }
            last = Some((r.from, r.msg));
        }
        let mut entry = [0u8; REF_BYTES];
        entry[0..4].copy_from_slice(&r.from.to_le_bytes());
        entry[4..8].copy_from_slice(&payload_idx.to_le_bytes());
        entry[8..12].copy_from_slice(&r.lo.to_le_bytes());
        entry[12..16].copy_from_slice(&r.hi.to_le_bytes());
        buf.put_slice(&entry);
        sum = fnv1a(sum, &entry);
    }
    // Payload-table walk: one digest-folded entry per unique payload.
    let mut last: Option<(u32, u32)> = None;
    let mut cursor = 0usize;
    for r in bucket {
        if last != Some((r.from, r.msg)) {
            let len = payload_of(r).len();
            let mut entry = [0u8; PAYLOAD_BYTES];
            entry[0..4].copy_from_slice(&(cursor as u32).to_le_bytes());
            entry[4..8].copy_from_slice(&(len as u32).to_le_bytes());
            buf.put_slice(&entry);
            sum = fnv1a(sum, &entry);
            cursor += len;
            last = Some((r.from, r.msg));
        }
    }
    // Payload region: each unique payload's bytes, copied exactly once,
    // sender outbox → final frame position (the region is not
    // checksummed — see the module docs).
    let mut last: Option<(u32, u32)> = None;
    for r in bucket {
        if last != Some((r.from, r.msg)) {
            buf.put_slice(payload_of(r).as_slice());
            last = Some((r.from, r.msg));
        }
    }
    debug_assert_eq!(buf.len(), total);
    buf[CHECKSUM_OFFSET..CHECKSUM_OFFSET + 4].copy_from_slice(&sum.to_le_bytes());
    buf.freeze()
}

/// Incremental encoder for one frame: push routed entries, then assemble.
///
/// This is the general-purpose path — tests, tools, and custom transports
/// build arbitrary frames with it; the engine's hot path is the
/// single-pass [`encode_bucket`], which knows its whole bucket up front
/// and therefore never stages payload bytes. An incremental builder
/// cannot avoid staging (table sizes are unknown until
/// [`FrameBuilder::finish`]), but its scratch tables are retained across
/// frames with the same decaying high-water capacity bound as [`Outbox`]:
/// steady-state encoding allocates nothing, and one bursty frame cannot
/// pin burst-sized staging buffers forever.
#[derive(Debug, Default)]
pub struct FrameBuilder {
    sender: u32,
    dest: u32,
    /// Ref table scratch: `{from, payload index, lo, hi}`.
    refs: Vec<[u32; 4]>,
    /// Payload table scratch: `(offset, length)` into `payload`.
    payloads: Vec<(u32, u32)>,
    /// Payload region scratch.
    payload: Vec<u8>,
    /// Rolling high-water marks driving the scratch capacity decay
    /// (refs, payload table, payload region).
    high_water: [usize; 3],
}

impl FrameBuilder {
    /// An empty builder (for shard `0 -> 0` until [`FrameBuilder::begin`]
    /// retargets it).
    #[must_use]
    pub fn new() -> Self {
        FrameBuilder::default()
    }

    /// Resets the builder for a new `sender -> dest` frame. Scratch
    /// capacity is kept across frames up to the decaying high-water bound
    /// shared with [`Outbox`] and the router buckets, so steady encoding
    /// never reallocates while one bursty frame cannot pin burst-sized
    /// staging buffers forever.
    ///
    /// # Panics
    ///
    /// Panics if either shard index exceeds the `u32` wire bound.
    pub fn begin(&mut self, sender: usize, dest: usize) {
        self.sender = u32::try_from(sender).expect("shard index fits the wire format");
        self.dest = u32::try_from(dest).expect("shard index fits the wire format");
        let [refs_hw, payloads_hw, payload_hw] = &mut self.high_water;
        crate::message::clear_with_decay(&mut self.refs, refs_hw);
        crate::message::clear_with_decay(&mut self.payloads, payloads_hw);
        crate::message::clear_with_decay(&mut self.payload, payload_hw);
    }

    /// Appends one routed entry carrying a new payload: sender vertex
    /// `from` delivers `payload` along the directed-edge slot range
    /// `slots`.
    ///
    /// # Panics
    ///
    /// Panics if the slot range is decreasing or any position exceeds the
    /// `u32` wire bound — a frame that cannot represent its bucket must
    /// never be shipped silently truncated.
    pub fn push(&mut self, from: VertexId, slots: Range<usize>, payload: &[u8]) {
        let off = u32::try_from(self.payload.len()).expect("payload region fits the wire format");
        let len = u32::try_from(payload.len()).expect("payload fits the wire format");
        assert!(
            off.checked_add(len).is_some(),
            "payload region fits the wire format"
        );
        self.payload.extend_from_slice(payload);
        self.payloads.push((off, len));
        self.push_ref(from, slots);
    }

    /// Appends one routed entry sharing the most recently pushed payload
    /// (a multicast's later copies).
    ///
    /// # Panics
    ///
    /// Panics if nothing has been pushed since [`FrameBuilder::begin`],
    /// or on the same wire-bound violations as [`FrameBuilder::push`].
    pub fn push_shared(&mut self, from: VertexId, slots: Range<usize>) {
        assert!(!self.payloads.is_empty(), "push_shared needs a prior push");
        self.push_ref(from, slots);
    }

    fn push_ref(&mut self, from: VertexId, slots: Range<usize>) {
        assert!(slots.start <= slots.end, "slot range is decreasing");
        let from = u32::try_from(from).expect("vertex id fits the wire format");
        let lo = u32::try_from(slots.start).expect("slot position fits the wire format");
        let hi = u32::try_from(slots.end).expect("slot position fits the wire format");
        let payload = (self.payloads.len() - 1) as u32;
        self.refs.push([from, payload, lo, hi]);
    }

    /// Entries pushed since [`FrameBuilder::begin`].
    #[must_use]
    pub fn ref_count(&self) -> usize {
        self.refs.len()
    }

    /// Assembles the frame into `buf` (cleared first — pass a recycled
    /// buffer to encode without allocating) and freezes it.
    #[must_use]
    pub fn finish_into(&mut self, mut buf: BytesMut) -> Bytes {
        buf.clear();
        buf.put_slice(MAGIC);
        buf.put_u8(FRAME_VERSION);
        buf.put_u32_le(0); // frame length, patched below
        buf.put_u32_le(self.sender);
        buf.put_u32_le(self.dest);
        buf.put_u32_le(self.refs.len() as u32);
        buf.put_u32_le(self.payloads.len() as u32);
        buf.put_u32_le(0); // checksum, patched below
        for r in &self.refs {
            for w in r {
                buf.put_u32_le(*w);
            }
        }
        for &(off, len) in &self.payloads {
            buf.put_u32_le(off);
            buf.put_u32_le(len);
        }
        let tables_end = buf.len();
        buf.put_slice(&self.payload);
        let total = u32::try_from(buf.len()).expect("frame length fits the wire format");
        buf[LEN_OFFSET..LEN_OFFSET + 4].copy_from_slice(&total.to_le_bytes());
        let sum = checksum(&buf[..CHECKSUM_OFFSET], &buf[HEADER_LEN..tables_end]);
        buf[CHECKSUM_OFFSET..CHECKSUM_OFFSET + 4].copy_from_slice(&sum.to_le_bytes());
        buf.freeze()
    }

    /// Assembles the frame into a fresh buffer.
    #[must_use]
    pub fn finish(&mut self) -> Bytes {
        self.finish_into(BytesMut::new())
    }
}

/// One decoded ref-table entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameRef {
    /// Global sender vertex id.
    pub from: u32,
    /// Index into the frame's payload table.
    pub payload: u32,
    /// First directed-edge slot of the routed copies.
    pub lo: u32,
    /// One past the last slot.
    pub hi: u32,
}

/// A validated, decoded frame: a zero-copy view over the encoded bytes.
///
/// Decoding checks the magic, version, declared length, header checksum,
/// and every table bound up front, so the accessors below cannot read out
/// of range; [`Frame::payload`] hands out [`Bytes::slice`] views of the
/// payload region without copying.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    bytes: Bytes,
    sender: u32,
    dest: u32,
    ref_count: usize,
    payload_count: usize,
    /// Byte offset of the payload table.
    payload_table: usize,
    /// Byte offset of the payload region.
    region: usize,
}

impl Frame {
    /// Parses and validates one encoded frame.
    ///
    /// # Errors
    ///
    /// Every malformation maps to a typed [`FrameError`]: short or
    /// overlong input, wrong magic or version, a checksum mismatch, or
    /// tables/payload entries that overrun their regions.
    pub fn decode(bytes: Bytes) -> Result<Frame, FrameError> {
        let data = bytes.as_slice();
        if data.len() < HEADER_LEN {
            return Err(FrameError::Truncated {
                needed: HEADER_LEN,
                have: data.len(),
            });
        }
        if &data[..3] != MAGIC {
            return Err(FrameError::BadMagic);
        }
        if data[3] != FRAME_VERSION {
            return Err(FrameError::VersionMismatch {
                found: data[3],
                expected: FRAME_VERSION,
            });
        }
        let declared = le32(data, LEN_OFFSET) as usize;
        if declared > data.len() {
            return Err(FrameError::Truncated {
                needed: declared,
                have: data.len(),
            });
        }
        if declared < data.len() {
            return Err(FrameError::Malformed {
                detail: "bytes trail the declared frame length",
            });
        }
        let sender = le32(data, 8);
        let dest = le32(data, 12);
        let ref_count = le32(data, 16) as usize;
        let payload_count = le32(data, 20) as usize;
        let tables = (ref_count as u64) * (REF_BYTES as u64)
            + (payload_count as u64) * (PAYLOAD_BYTES as u64);
        let region = (HEADER_LEN as u64).saturating_add(tables);
        if region > declared as u64 {
            return Err(FrameError::Malformed {
                detail: "tables overrun the frame",
            });
        }
        let region = region as usize;
        let payload_table = HEADER_LEN + ref_count * REF_BYTES;
        let region_len = declared - region;
        // Fused verification walk: the tables are read once, folding the
        // FNV-1a digest and validating each entry in the same pass. A
        // structural violation is only *recorded* here — the checksum
        // verdict still takes precedence (a corrupted frame reports
        // `ChecksumMismatch`, not whatever nonsense its flipped bits
        // happen to spell), exactly as when the two passes were separate.
        let declared_sum = le32(data, CHECKSUM_OFFSET);
        let mut computed = fnv1a(FNV_INIT, &data[..CHECKSUM_OFFSET]);
        let mut malformed = None;
        for entry in data[HEADER_LEN..payload_table].chunks_exact(REF_BYTES) {
            computed = fnv1a(computed, entry);
            if malformed.is_none() {
                if le32(entry, 4) as usize >= payload_count {
                    malformed = Some("ref points past the payload table");
                } else if le32(entry, 8) > le32(entry, 12) {
                    malformed = Some("ref slot range is decreasing");
                }
            }
        }
        for entry in data[payload_table..region].chunks_exact(PAYLOAD_BYTES) {
            computed = fnv1a(computed, entry);
            // Widen before adding: offset + length can exceed u32 (and
            // usize, on 32-bit targets) without either field alone doing
            // so, and a wrapped sum must not sneak past the bound.
            if malformed.is_none()
                && u64::from(le32(entry, 0)) + u64::from(le32(entry, 4)) > region_len as u64
            {
                malformed = Some("payload entry overruns the payload region");
            }
        }
        if computed != declared_sum {
            return Err(FrameError::ChecksumMismatch {
                declared: declared_sum,
                computed,
            });
        }
        if let Some(detail) = malformed {
            return Err(FrameError::Malformed { detail });
        }
        Ok(Frame {
            bytes,
            sender,
            dest,
            ref_count,
            payload_count,
            payload_table,
            region,
        })
    }

    /// The shard that encoded this frame.
    #[must_use]
    pub fn sender_shard(&self) -> usize {
        self.sender as usize
    }

    /// The shard this frame is addressed to.
    #[must_use]
    pub fn dest_shard(&self) -> usize {
        self.dest as usize
    }

    /// Number of ref-table entries.
    #[must_use]
    pub fn ref_count(&self) -> usize {
        self.ref_count
    }

    /// Number of payload-table entries.
    #[must_use]
    pub fn payload_count(&self) -> usize {
        self.payload_count
    }

    /// Total encoded size in bytes.
    #[must_use]
    pub fn encoded_len(&self) -> usize {
        self.bytes.len()
    }

    /// The ref-table entries, in bucket (= delivery) order.
    pub fn refs(&self) -> impl Iterator<Item = FrameRef> + '_ {
        self.bytes.as_slice()[HEADER_LEN..self.payload_table]
            .chunks_exact(REF_BYTES)
            .map(|entry| FrameRef {
                from: le32(entry, 0),
                payload: le32(entry, 4),
                lo: le32(entry, 8),
                hi: le32(entry, 12),
            })
    }

    /// A zero-copy view of payload `idx` (bounds-checked at decode).
    ///
    /// # Panics
    ///
    /// Panics if `idx >= payload_count()`.
    #[must_use]
    pub fn payload(&self, idx: u32) -> Bytes {
        assert!(
            (idx as usize) < self.payload_count,
            "payload index in range"
        );
        let data = self.bytes.as_slice();
        let entry = self.payload_table + PAYLOAD_BYTES * idx as usize;
        let off = le32(data, entry) as usize;
        let len = le32(data, entry + 4) as usize;
        self.bytes.slice(self.region + off..self.region + off + len)
    }
}

/// One shard's sender side of the frame seam: encodes every router bucket
/// into a frame and ships it, recycling frame buffers on a two-round ring.
///
/// Why two rounds: a frame's payload slices sit in destination payload
/// slabs for exactly one round (registered in round `r`'s place, read by
/// round `r + 1`'s compute, dropped wholesale by its place's slab reset),
/// so the buffer shipped in round `r - 2` is uniquely referenced again by
/// round `r` and [`Bytes::try_into_mut`] reclaims it — steady-state
/// framing allocates nothing. A protocol that retains payload views
/// longer (via [`crate::IncomingRef::to_incoming`]) just makes the
/// reclaim miss and fall back to a fresh buffer; correctness is
/// unaffected.
///
/// Retained capacity is bounded with the same rolling-high-water policy
/// as [`Outbox`] and the router buckets: a reclaimed buffer whose
/// capacity sits above [`Outbox::RETAIN_FACTOR`] times the per-dest mark
/// is dropped, so one bursty round cannot pin `2 x shards` burst-sized
/// frame buffers per shard forever, while constant-volume rounds never
/// shrink (doubling growth stays under the factor) and stay zero-alloc.
#[derive(Debug, Default)]
pub(crate) struct FrameEncoder {
    /// `ring[dest][parity]`: this shard's retained handle to the frame it
    /// shipped to `dest` two rounds ago (reclaim candidate).
    ring: Vec<[Option<Bytes>; 2]>,
    /// Rolling high-water mark of encoded frame bytes, per destination.
    high_water: Vec<usize>,
    parity: usize,
}

/// Floor of the frame-buffer retention mark, in bytes (a header-only
/// frame is 28 bytes; tiny frames must never thrash).
const FRAME_RETAIN_FLOOR: usize = 256;

impl FrameEncoder {
    pub(crate) fn new(shards: usize) -> Self {
        FrameEncoder {
            ring: vec![[None, None]; shards],
            high_water: vec![0; shards],
            parity: 0,
        }
    }

    /// Encodes shard `me`'s buckets — refs from `router`, payload bytes
    /// from the shard's own `outboxes` chunk (whose first sender is
    /// `base`) — and ships one frame per destination shard through
    /// `transport`. Each bucket goes through the single-pass
    /// [`encode_bucket`]: payload bytes are copied exactly once, straight
    /// to their final position in the (recycled) frame buffer.
    pub(crate) fn ship(
        &mut self,
        me: usize,
        router: &Router,
        outboxes: &[Outbox],
        base: VertexId,
        transport: &dyn Transport,
    ) {
        self.parity ^= 1;
        for dest in 0..self.ring.len() {
            let cap = Outbox::RETAIN_FACTOR * self.high_water[dest].max(FRAME_RETAIN_FLOOR);
            let buf = match self.ring[dest][self.parity].take() {
                Some(old) => match old.try_into_mut() {
                    // Dropping an over-retained buffer (rather than
                    // shrinking in place) keeps the shim's `BytesMut`
                    // surface identical to the real crate's.
                    Ok(buf) if buf.capacity() <= cap => buf,
                    Ok(_) | Err(_) => BytesMut::new(),
                },
                None => BytesMut::new(),
            };
            let frame = encode_bucket(me, dest, router.bucket(dest), outboxes, base, buf);
            let hw = &mut self.high_water[dest];
            *hw = (*hw - *hw / 4).max(frame.len());
            self.ring[dest][self.parity] = Some(frame.clone());
            transport.send(me, dest, frame);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_frame_round_trips() {
        let mut b = FrameBuilder::new();
        b.begin(3, 5);
        let frame = b.finish();
        assert_eq!(frame.len(), HEADER_LEN);
        let f = Frame::decode(frame).unwrap();
        assert_eq!(f.sender_shard(), 3);
        assert_eq!(f.dest_shard(), 5);
        assert_eq!(f.ref_count(), 0);
        assert_eq!(f.payload_count(), 0);
        assert_eq!(f.refs().count(), 0);
    }

    #[test]
    fn entries_round_trip_with_shared_payloads() {
        let mut b = FrameBuilder::new();
        b.begin(0, 1);
        b.push(7, 40..41, b"alpha");
        b.push_shared(7, 55..56); // same multicast payload, second target
        b.push(9, 10..14, b"bee");
        let f = Frame::decode(b.finish()).unwrap();
        let refs: Vec<_> = f.refs().collect();
        assert_eq!(refs.len(), 3);
        assert_eq!(f.payload_count(), 2);
        assert_eq!(refs[0].from, 7);
        assert_eq!((refs[0].lo, refs[0].hi), (40, 41));
        assert_eq!(refs[0].payload, refs[1].payload, "multicast shares bytes");
        assert_eq!(f.payload(refs[1].payload).as_slice(), b"alpha");
        assert_eq!(f.payload(refs[2].payload).as_slice(), b"bee");
        assert_eq!((refs[2].lo, refs[2].hi), (10, 14));
    }

    #[test]
    fn builder_scratch_is_reusable() {
        let mut b = FrameBuilder::new();
        b.begin(0, 0);
        b.push(1, 2..3, b"first");
        let one = b.finish();
        b.begin(2, 4);
        b.push(5, 6..7, b"second");
        let two = Frame::decode(b.finish()).unwrap();
        assert_eq!(two.sender_shard(), 2);
        assert_eq!(two.ref_count(), 1);
        assert_eq!(two.payload(0).as_slice(), b"second");
        // The first frame is unaffected by the rebuild.
        let one = Frame::decode(one).unwrap();
        assert_eq!(one.payload(0).as_slice(), b"first");
    }

    #[test]
    fn payload_views_share_the_frame_buffer() {
        let mut b = FrameBuilder::new();
        b.begin(0, 0);
        b.push(0, 0..1, b"shared-zero-copy");
        let encoded = b.finish();
        let f = Frame::decode(encoded.clone()).unwrap();
        let view = f.payload(0);
        drop(f);
        // The view keeps the frame alive; reclaiming must fail while it
        // (and our handle) exist, and succeed once the views are gone.
        let encoded = encoded.try_into_mut().expect_err("view still live");
        drop(view);
        assert!(encoded.try_into_mut().is_ok());
    }

    #[test]
    fn loopback_moves_frames_once() {
        let t = LoopbackTransport::new(2);
        let mut b = FrameBuilder::new();
        b.begin(1, 0);
        let frame = b.finish();
        t.send(1, 0, frame.clone());
        let mut got = vec![None, None];
        t.collect(0, &mut got);
        assert!(got[0].is_none());
        assert_eq!(got[1].as_ref().unwrap().as_slice(), frame.as_slice());
        // A second collect finds the slots drained.
        let mut again = vec![None, None];
        t.collect(0, &mut again);
        assert!(again.iter().all(Option::is_none));
    }

    #[test]
    fn channel_collects_one_frame_per_sender() {
        let t = ChannelTransport::new(3);
        let mut b = FrameBuilder::new();
        for from in 0..3 {
            b.begin(from, 2);
            b.push(from, from..from + 1, &[from as u8]);
            t.send(from, 2, b.finish());
        }
        let mut got = vec![None, None, None];
        t.collect(2, &mut got);
        for (from, slot) in got.iter().enumerate() {
            let f = Frame::decode(slot.clone().expect("frame arrived")).unwrap();
            assert_eq!(f.sender_shard(), from);
        }
    }

    #[test]
    fn encoder_ships_one_valid_frame_per_destination_per_round() {
        let t = LoopbackTransport::new(2);
        let mut router = Router::default();
        router.reset(2);
        let mut enc = FrameEncoder::new(2);
        for round in 0..6 {
            enc.ship(0, &router, &[], 0, &t);
            for dest in 0..2 {
                let mut got = vec![None, None];
                t.collect(dest, &mut got);
                let frame = Frame::decode(got[0].take().expect("frame arrived")).unwrap();
                assert_eq!(frame.sender_shard(), 0, "round {round} dest {dest}");
                assert_eq!(frame.dest_shard(), dest, "round {round} dest {dest}");
                assert_eq!(frame.ref_count(), 0);
                assert!(got[1].is_none(), "no frame from a nonexistent sender");
            }
        }
    }

    /// The single-pass bucket encoder and the incremental builder are the
    /// same wire format, byte for byte: same tables, same payload
    /// sharing, same checksum — only the number of payload copies made to
    /// produce them differs.
    #[test]
    fn single_pass_encode_matches_the_incremental_builder_bit_for_bit() {
        use crate::shard::RouteRef;

        // Sender 0: a broadcast-style segment ref. Sender 1: a multicast
        // (two singleton refs sharing one payload) then a second message.
        let mut out0 = Outbox::new();
        out0.broadcast(Bytes::from(b"alpha".as_slice()));
        let mut out1 = Outbox::new();
        out1.multicast(vec![0, 2], Bytes::from(b"bee".as_slice()));
        out1.unicast(2, Bytes::new());
        let outboxes = [out0, out1];
        let bucket = [
            RouteRef {
                from: 0,
                msg: 0,
                lo: 0,
                hi: 3,
            },
            RouteRef {
                from: 1,
                msg: 0,
                lo: 3,
                hi: 4,
            },
            RouteRef {
                from: 1,
                msg: 0,
                lo: 5,
                hi: 6,
            },
            RouteRef {
                from: 1,
                msg: 1,
                lo: 5,
                hi: 6,
            },
        ];
        let fast = encode_bucket(2, 5, &bucket, &outboxes, 0, BytesMut::new());

        let mut b = FrameBuilder::new();
        b.begin(2, 5);
        let mut last = None;
        for r in &bucket {
            let slots = r.lo as usize..r.hi as usize;
            if last == Some((r.from, r.msg)) {
                b.push_shared(r.from as usize, slots);
            } else {
                let payload = &outboxes[r.from as usize].messages()[r.msg as usize].payload;
                b.push(r.from as usize, slots, payload);
                last = Some((r.from, r.msg));
            }
        }
        let slow = b.finish();
        assert_eq!(fast.as_slice(), slow.as_slice(), "wire formats diverged");
        // And the result is a valid frame with the expected sharing.
        let f = Frame::decode(fast).unwrap();
        assert_eq!(f.ref_count(), 4);
        assert_eq!(f.payload_count(), 3);
        let refs: Vec<_> = f.refs().collect();
        assert_eq!(refs[1].payload, refs[2].payload, "multicast shares bytes");
        assert_eq!(f.payload(refs[0].payload).as_slice(), b"alpha");
    }

    /// Empty buckets encode to the same header-only frame either way.
    #[test]
    fn single_pass_encode_matches_builder_on_empty_buckets() {
        let fast = encode_bucket(1, 3, &[], &[], 0, BytesMut::new());
        let mut b = FrameBuilder::new();
        b.begin(1, 3);
        assert_eq!(fast.as_slice(), b.finish().as_slice());
        assert_eq!(fast.len(), HEADER_LEN);
    }

    /// Satellite: the incremental builder's staging buffers follow the
    /// same decaying high-water retention policy as `Outbox` — a bursty
    /// frame's capacity is kept hot briefly, then released (mirrors
    /// `bursty_capacity_decays_toward_the_rolling_high_water_mark`).
    #[test]
    fn builder_staging_capacity_decays_after_a_burst() {
        let mut b = FrameBuilder::new();
        b.begin(0, 0);
        for i in 0..1024usize {
            b.push(i, i..i + 1, &[0u8; 64]);
        }
        let _ = b.finish();
        b.begin(0, 0);
        // The burst is still remembered right after it happened...
        assert!(b.refs.capacity() >= 512, "burst capacity kept hot");
        assert!(b.payload.capacity() >= 32 * 1024);
        // ...but dozens of small frames later every staging table has
        // decayed back to the steady volume's scale.
        for _ in 0..64 {
            b.push(0, 0..1, b"x");
            let _ = b.finish();
            b.begin(0, 0);
        }
        assert!(
            b.refs.capacity() <= Outbox::RETAIN_FACTOR * Outbox::RETAIN_FLOOR,
            "ref staging capacity {} still pinned after decay",
            b.refs.capacity()
        );
        assert!(
            b.payloads.capacity() <= Outbox::RETAIN_FACTOR * Outbox::RETAIN_FLOOR,
            "payload-table staging capacity {} still pinned after decay",
            b.payloads.capacity()
        );
        assert!(
            b.payload.capacity() <= Outbox::RETAIN_FACTOR * Outbox::RETAIN_FLOOR,
            "payload-region staging capacity {} still pinned after decay",
            b.payload.capacity()
        );
        // Steady volume never reallocates: the capacities are stable.
        let caps = (
            b.refs.capacity(),
            b.payloads.capacity(),
            b.payload.capacity(),
        );
        for _ in 0..32 {
            b.push(0, 0..1, b"x");
            let _ = b.finish();
            b.begin(0, 0);
            assert_eq!(
                caps,
                (
                    b.refs.capacity(),
                    b.payloads.capacity(),
                    b.payload.capacity()
                )
            );
        }
    }

    #[test]
    fn frame_buffer_capacity_decays_after_a_burst() {
        use crate::shard::RouteRef;

        let t = LoopbackTransport::new(1);
        let drain = |t: &LoopbackTransport| {
            let mut got = vec![None];
            t.collect(0, &mut got);
        };
        let mut router = Router::default();
        router.reset(1);
        router.push(
            0,
            RouteRef {
                from: 0,
                msg: 0,
                lo: 0,
                hi: 1,
            },
        );
        let mut outbox = crate::Outbox::new();
        outbox.unicast(0, Bytes::from(vec![7u8; 64 * 1024]));
        let outboxes = [outbox];
        let mut enc = FrameEncoder::new(1);
        enc.ship(0, &router, &outboxes, 0, &t);
        drain(&t);
        assert!(enc.high_water[0] >= 64 * 1024, "burst mark recorded");
        // Dozens of empty rounds later, the mark — and with it the
        // retained buffer capacity the reclaim path will accept — has
        // decayed back to the steady scale (same policy as Outbox).
        router.reset(1);
        for _ in 0..64 {
            enc.ship(0, &router, &[], 0, &t);
            drain(&t);
        }
        assert!(
            enc.high_water[0] <= FRAME_RETAIN_FLOOR,
            "mark {} still pinned after decay",
            enc.high_water[0]
        );
    }

    #[test]
    fn recycle_ring_never_aliases_a_frame_a_receiver_still_holds() {
        // A receiver that keeps a frame (or a payload view) alive across
        // later rounds must see its bytes unchanged: the ring's reclaim
        // goes through `Bytes::try_into_mut`, which refuses shared
        // buffers, so the encoder falls back to a fresh buffer instead of
        // rewriting one in place. Exercised far past the two-round parity
        // window.
        let t = LoopbackTransport::new(1);
        let mut router = Router::default();
        router.reset(1);
        let mut enc = FrameEncoder::new(1);
        enc.ship(0, &router, &[], 0, &t);
        let mut got = vec![None];
        t.collect(0, &mut got);
        let held = got[0].take().unwrap();
        let snapshot = held.as_slice().to_vec();
        for _ in 0..6 {
            enc.ship(0, &router, &[], 0, &t);
            let mut later = vec![None];
            t.collect(0, &mut later);
            assert_eq!(
                held.as_slice(),
                &snapshot[..],
                "a held frame was rewritten in place"
            );
        }
    }
}

//! The frame transport: self-delimiting bucket frames and the shard
//! backends that ship them.
//!
//! With sender-side routing, a round's cross-shard traffic is already
//! batched: shard `k`'s router holds one bucket of
//! [`RouteRef`](crate::shard)s per destination shard, and the place phase
//! consumes exactly those buckets. This module serializes each bucket —
//! its refs *plus the payload bytes they reference* — into one
//! **self-delimiting frame** per destination shard, the unit a
//! process-per-shard transport ships. Once delivery reads frames instead
//! of in-memory buckets, "shards stop sharing an address space" becomes a
//! [`Transport`] swap, not an engine rewrite.
//!
//! # Frame layout (format v2)
//!
//! All integers are little-endian `u32` unless noted. One frame carries
//! one `(sender shard, destination shard)` bucket:
//!
//! ```text
//! offset  bytes  field
//! ------  -----  -----------------------------------------------------
//!      0      3  magic  b"NDF"
//!      3      1  format version (u8: 2; decoders also accept 1)
//!      4      4  frame length — total bytes, self-delimiting
//!      8      4  sender shard
//!     12      4  destination shard
//!     16      4  R: ref count
//!     20      4  P: payload count
//!     24      4  4-lane digest over bytes [0, 24) ++ [28, 32)
//!                ++ [32, 32+16R+8P) (++ the payload region, iff flagged)
//!     28      4  flags (bit 0: digest also covers the payload region;
//!                unknown bits reject the frame)
//!     32    16R  ref table:     R x { from, payload index, lo, hi }
//! 32+16R     8P  payload table: P x { offset, length }   (region-relative)
//! 32+16R+8P   …  payload region (concatenated payload bytes)
//! ```
//!
//! A ref's `lo..hi` is the contiguous directed-edge slot range carrying
//! its copies (a unicast is a singleton, a broadcast ref one precomputed
//! adjacency segment), exactly as in the in-memory bucket. Consecutive
//! refs may share one payload-table entry — a multicast's copies are
//! stored once — and decoding hands each recipient a zero-copy
//! [`Bytes::slice`] view into the payload region.
//!
//! # The word-parallel digest (and the v1 one it replaced)
//!
//! Every covered section is a whole number of `u32` words (the header is
//! 24 + 4 bytes, a ref entry 16, a payload entry 8), so v2 checksums
//! *words*, not bytes: word `i` of the covered stream folds into lane
//! `i mod 4` of four independent FNV-1a-style lane states
//! (`lane = (lane ^ word) * FNV_PRIME`, lane `j` seeded with
//! `FNV_INIT + j * 0x9E37_79B9`), and `finish` folds the four lanes into
//! one `u32` with the same multiply chain. Four independent multiply
//! chains break v1's byte-serial data dependency — the ~4 cycles/byte
//! FNV floor that PR 5 measured dominating framed delivery — while every
//! fold stays bijective per lane, so **any single-bit flip in a covered
//! word still changes the digest** (see the frame_codec proptests).
//!
//! By default the digest covers every header and table byte but not the
//! payload region (whose bytes recipients re-read anyway, and which
//! in-process transports hand over intact): a corrupted ref can never
//! misroute a message silently — it fails decode with a typed
//! [`FrameError`] instead. For transports that do not protect payload
//! bytes themselves (UDP-style sockets), flag bit 0 extends coverage to
//! the payload region, zero-padded to a word boundary
//! ([`FrameConfig::cover_payload`]).
//!
//! # Version negotiation
//!
//! Encoders write format v2 unless pinned to v1 (`NETDECOMP_FRAME_VERSION=1`
//! or [`FrameConfig`]; v1 frames are 28-byte-header, byte-serial-FNV, and
//! bit-exact with what pre-v2 builds shipped). Decoders dispatch on the
//! version byte and accept both formats, so mixed-version peers
//! interoperate during a rollout; anything outside
//! [`FRAME_VERSION_MIN`]`..=`[`FRAME_VERSION`] is rejected with
//! [`FrameError::VersionMismatch`] carrying the accepted range.
//!
//! # Transports
//!
//! A [`Transport`] moves encoded frames between shards; the engine's
//! framed backends ([`crate::Engine::Framed`]) never let one shard read
//! another's outboxes or routers — frames are the *only* cross-shard
//! channel during delivery. Two implementations ship:
//!
//! - [`LoopbackTransport`] — an in-memory slot matrix handing the encoded
//!   [`Bytes`] to the destination by reference count. This prices the
//!   seam itself (encode + checksum + decode) with zero I/O, and stays
//!   allocation-free in steady state: senders recycle their frame
//!   buffers through [`Bytes::try_into_mut`] on a two-round ring (a
//!   frame's payload slices live in destination payload slabs for one
//!   round, so the round-before-last's buffer is reclaimable by the time
//!   it is needed again).
//! - [`ChannelTransport`] — each shard owns a persistent mpsc mailbox and
//!   receives *only* encoded frames from it, simulating process-per-shard
//!   isolation: no shared inbox, outbox, or router memory crosses a shard
//!   boundary. (The mailboxes persist across rounds; making the worker
//!   *threads* persistent too awaits the real rayon pool, the same caveat
//!   as the shared-memory engine — see ROADMAP.)
//! - [`crate::transport::SocketTransport`] — frames cross real OS
//!   sockets (Unix domain by default, TCP behind the same code path)
//!   through a hub that relays by destination shard; the same client
//!   code drives in-process shards and separate worker processes (see
//!   [`crate::transport::launcher`]).
//!
//! # Wire protocol: control frames, handshake, timeouts
//!
//! Data frames (above) are one half of the wire protocol; the socket
//! backend adds **control frames** so round synchronization and error
//! propagation no longer depend on shared memory. Control frames carry
//! the magic `b"NDC"` (data frames: `b"NDF"`), a kind byte where data
//! frames carry their version byte, the same self-delimiting total
//! length at offset 4, and a FNV-1a checksum:
//!
//! - `Hello { shard, frame_version, graph_digest }` — sent once per
//!   connection (and again after a reconnect). The hub rejects a
//!   duplicate shard id, an unsupported frame version, or a graph
//!   digest that disagrees with the other workers': every worker must
//!   have loaded the same graph.
//! - `RoundBarrier { round }` — each shard sends one after shipping its
//!   round; the hub broadcasts one back when all shards have, which
//!   doubles as the "all frames relayed" signal.
//! - `Error { origin, SimError }` — a shard's typed failure, relayed to
//!   every peer so the whole fabric stops with the *same* error instead
//!   of each shard timing out separately.
//! - `Shutdown` — orderly end of run.
//!
//! Every blocking point has a deadline (`NETDECOMP_FRAME_TIMEOUT_MS`,
//! default 5000 — see [`crate::transport::frame_timeout`]), so a wedged
//! or dead peer is always a typed error, never a hang:
//!
//! | fault                              | what the user sees                                         |
//! |------------------------------------|------------------------------------------------------------|
//! | peer process killed / link closed  | `SimError::Transport` with `TransportCause::Disconnected` (hub-relayed `Error` beats the local timeout) |
//! | peer wedged (misses its barrier)   | `SimError::Transport` with `TransportCause::Timeout`       |
//! | frame dropped or delayed in flight | `SimError::Frame` with `FrameError::MissingFrame` (timeout-bounded) |
//! | frame corrupted in flight          | `SimError::Frame` with `FrameError::ChecksumMismatch`      |
//! | frame duplicated / reordered       | `SimError::Frame` with `FrameError::Misrouted` (header disagrees with the link) |
//! | handshake mismatch (shard, version, graph digest) | `SimError::Transport` with `TransportCause::Handshake` |
//! | byte-stream desync (framing lost)  | `SimError::Transport` with `TransportCause::Io`            |
//!
//! The deterministic seeded
//! [`crate::transport::FaultInjectingTransport`] wrapper exercises the
//! middle rows on any backend in tests; the
//! [`crate::transport::launcher`] kill tests exercise the first two with
//! real processes.

use std::ops::Range;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Mutex};
use std::time::Instant;

use bytes::{BufMut, Bytes, BytesMut};
use netdecomp_graph::VertexId;

use crate::error::{FrameError, TransportError};
use crate::message::Outbox;
use crate::shard::{BucketTally, RouteRef, Router};

/// Newest frame format version: what encoders write by default.
pub const FRAME_VERSION: u8 = 2;

/// Oldest frame format version decoders still accept (the byte-serial
/// FNV-1a format pre-v2 builds shipped, kept bit-exact).
pub const FRAME_VERSION_MIN: u8 = 1;

/// Magic prefix of every data frame (control frames use `b"NDC"` — see
/// [`crate::transport::control`]).
pub(crate) const MAGIC: &[u8; 3] = b"NDF";

/// v1 header length in bytes (through the checksum word) — also the
/// minimum bytes needed to read any frame's fixed fields.
const HEADER_LEN_V1: usize = 28;

/// v2 header length in bytes (through the flags word).
const HEADER_LEN_V2: usize = 32;

/// Byte offset of the frame-length word (shared by data and control
/// frames — the stream reader peels both with one code path).
pub(crate) const LEN_OFFSET: usize = 4;

/// Byte offset of the checksum word (the digest skips these 4 bytes).
const CHECKSUM_OFFSET: usize = 24;

/// Byte offset of the v2 flags word.
const FLAGS_OFFSET: usize = 28;

/// v2 flag bit 0: the digest also covers the payload region.
const FLAG_COVER_PAYLOAD: u32 = 1;

/// All v2 flag bits this build understands; any other set bit rejects
/// the frame as malformed (after the digest verdict).
const FLAGS_KNOWN: u32 = FLAG_COVER_PAYLOAD;

/// Bytes per ref-table entry.
const REF_BYTES: usize = 16;

/// Bytes per payload-table entry.
const PAYLOAD_BYTES: usize = 8;

/// FNV-1a offset basis (the running digest's initial state).
pub(crate) const FNV_INIT: u32 = 0x811c_9dc5;

/// FNV-1a 32-bit prime, the multiplier of every fold step.
const FNV_PRIME: u32 = 0x0100_0193;

/// Golden-ratio stride separating the four lane seeds, so no two lanes
/// start in the same state.
const LANE_SEED_STRIDE: u32 = 0x9E37_79B9;

/// Header length of a given (accepted) format version.
fn header_len(version: u8) -> usize {
    if version >= 2 {
        HEADER_LEN_V2
    } else {
        HEADER_LEN_V1
    }
}

/// Reads the little-endian `u32` at `off`.
fn le32(data: &[u8], off: usize) -> u32 {
    u32::from_le_bytes(data[off..off + 4].try_into().expect("4 bytes"))
}

/// Folds `bytes` into a running 32-bit FNV-1a digest (the v1 checksum;
/// also the control-frame checksum — control frames are tiny, so the
/// byte-serial fold costs nothing).
pub(crate) fn fnv1a(mut h: u32, bytes: &[u8]) -> u32 {
    for &b in bytes {
        h ^= u32::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// 32-bit FNV-1a over the two v1-checksummed byte ranges (header without
/// the checksum word, then the tables) — the decode-side verification;
/// encoding folds the same digest incrementally as it writes.
fn checksum(head: &[u8], tables: &[u8]) -> u32 {
    fnv1a(fnv1a(FNV_INIT, head), tables)
}

/// The v2 word-parallel digest: four independent FNV-1a-style lanes
/// striped across the little-endian `u32` words of the covered stream.
///
/// Word `i` (counted across *all* `update` calls) folds into lane
/// `i mod 4` as `lane = (lane ^ word) * FNV_PRIME`; since every covered
/// frame section is a whole number of words, the stripe position is part
/// of the format. Each fold is bijective on its lane (XOR, then multiply
/// by an odd constant, both invertible mod 2^32), and [`LaneDigest::finish`]
/// folds the four lanes with the same chain — so flipping any single bit
/// of any covered word always changes the final digest. Four independent
/// multiply chains give the superscalar core ~4 folds in flight where the
/// byte-serial v1 digest sustained one.
#[derive(Debug, Clone, Copy)]
pub(crate) struct LaneDigest {
    lanes: [u32; 4],
    /// Words folded so far — the stripe cursor.
    idx: usize,
}

impl LaneDigest {
    pub(crate) fn new() -> Self {
        let mut lanes = [0u32; 4];
        for (i, lane) in lanes.iter_mut().enumerate() {
            *lane = FNV_INIT.wrapping_add((i as u32).wrapping_mul(LANE_SEED_STRIDE));
        }
        LaneDigest { lanes, idx: 0 }
    }

    #[inline]
    fn fold_word(&mut self, word: u32) {
        let lane = &mut self.lanes[self.idx & 3];
        *lane = (*lane ^ word).wrapping_mul(FNV_PRIME);
        self.idx += 1;
    }

    /// Folds a word-aligned byte run (`bytes.len() % 4 == 0` — every
    /// covered frame section satisfies this by construction).
    ///
    /// Callers fold whole contiguous *regions*, not per-entry slices: the
    /// peel below runs at most three serial folds per call, after which
    /// the block loop keeps all four multiply chains in flight for the
    /// rest of the region. (Per-entry calls would re-enter the peel on
    /// every misaligned entry and degrade to the serial digest — the
    /// split-invariance of the result is what makes the granularity a
    /// pure performance choice.)
    fn update(&mut self, bytes: &[u8]) {
        debug_assert_eq!(bytes.len() % 4, 0, "lane digest input is word-aligned");
        let mut off = 0;
        // Peel single words until the stripe cursor hits a lane-0
        // boundary, so the block loop below touches each lane once.
        while self.idx & 3 != 0 && off + 4 <= bytes.len() {
            self.fold_word(le32(bytes, off));
            off += 4;
        }
        // Main loop: 16 bytes per iteration, four *independent* lane
        // folds — no dependency between them, which is the whole point.
        let mut blocks = bytes[off..].chunks_exact(16);
        for block in &mut blocks {
            self.lanes[0] = (self.lanes[0] ^ le32(block, 0)).wrapping_mul(FNV_PRIME);
            self.lanes[1] = (self.lanes[1] ^ le32(block, 4)).wrapping_mul(FNV_PRIME);
            self.lanes[2] = (self.lanes[2] ^ le32(block, 8)).wrapping_mul(FNV_PRIME);
            self.lanes[3] = (self.lanes[3] ^ le32(block, 12)).wrapping_mul(FNV_PRIME);
            self.idx += 4;
        }
        for word in blocks.remainder().chunks_exact(4) {
            self.fold_word(le32(word, 0));
        }
    }

    /// Rotates the lane array so the *next* word folds into slot 0 of the
    /// returned copy — the loop bodies below get compile-time lane
    /// indices (registers, not an array indexed by a running cursor)
    /// regardless of the stripe phase. [`LaneDigest::unrotate`] writes
    /// the copy back.
    fn rotate(&self) -> [u32; 4] {
        let p = self.idx & 3;
        [
            self.lanes[p],
            self.lanes[(p + 1) & 3],
            self.lanes[(p + 2) & 3],
            self.lanes[(p + 3) & 3],
        ]
    }

    /// Writes back lanes taken out by [`LaneDigest::rotate`]. The stripe
    /// cursor must not have moved in between (the fused walks below
    /// advance it only after restoring).
    fn unrotate(&mut self, rotated: [u32; 4]) {
        let p = self.idx & 3;
        for (j, lane) in rotated.into_iter().enumerate() {
            self.lanes[(p + j) & 3] = lane;
        }
    }

    /// Fused decode walk over a ref table: folds every entry into the
    /// digest **and** accumulates the structural verdicts — `(ref points
    /// past a payload table of `payload_count`, slot range decreasing)` —
    /// in the same pass, so validation costs no second sweep of the
    /// table. Digest-equivalent to `update(table)` (pinned by the wire
    /// vectors and the split-invariance test).
    fn fold_ref_table(&mut self, table: &[u8], payload_count: usize) -> (bool, bool) {
        debug_assert_eq!(table.len() % REF_BYTES, 0, "whole 16-byte entries");
        let mut lanes = self.rotate();
        let (mut past, mut decreasing) = (false, false);
        for entry in table.chunks_exact(REF_BYTES) {
            let (w0, w1) = (le32(entry, 0), le32(entry, 4));
            let (w2, w3) = (le32(entry, 8), le32(entry, 12));
            lanes[0] = (lanes[0] ^ w0).wrapping_mul(FNV_PRIME);
            lanes[1] = (lanes[1] ^ w1).wrapping_mul(FNV_PRIME);
            lanes[2] = (lanes[2] ^ w2).wrapping_mul(FNV_PRIME);
            lanes[3] = (lanes[3] ^ w3).wrapping_mul(FNV_PRIME);
            past |= w1 as usize >= payload_count;
            decreasing |= w2 > w3;
        }
        self.unrotate(lanes);
        self.idx += table.len() / 4;
        (past, decreasing)
    }

    /// Fused decode walk over a payload table: folds every `(offset,
    /// length)` entry into the digest while checking that it stays inside
    /// a payload region of `region_len` bytes (widened sums — the pair
    /// can overflow `u32` without either field doing so). Two entries per
    /// iteration keep all four lanes in flight; digest-equivalent to
    /// `update(table)`.
    fn fold_payload_table(&mut self, table: &[u8], region_len: u64) -> bool {
        debug_assert_eq!(table.len() % PAYLOAD_BYTES, 0, "whole 8-byte entries");
        let mut lanes = self.rotate();
        let mut overrun = false;
        let mut pairs = table.chunks_exact(2 * PAYLOAD_BYTES);
        for pair in &mut pairs {
            let (w0, w1) = (le32(pair, 0), le32(pair, 4));
            let (w2, w3) = (le32(pair, 8), le32(pair, 12));
            lanes[0] = (lanes[0] ^ w0).wrapping_mul(FNV_PRIME);
            lanes[1] = (lanes[1] ^ w1).wrapping_mul(FNV_PRIME);
            lanes[2] = (lanes[2] ^ w2).wrapping_mul(FNV_PRIME);
            lanes[3] = (lanes[3] ^ w3).wrapping_mul(FNV_PRIME);
            overrun |= u64::from(w0) + u64::from(w1) > region_len;
            overrun |= u64::from(w2) + u64::from(w3) > region_len;
        }
        let tail = pairs.remainder();
        self.unrotate(lanes);
        self.idx += (table.len() - tail.len()) / 4;
        if !tail.is_empty() {
            let (w0, w1) = (le32(tail, 0), le32(tail, 4));
            self.fold_word(w0);
            self.fold_word(w1);
            overrun |= u64::from(w0) + u64::from(w1) > region_len;
        }
        overrun
    }

    /// Folds a region of arbitrary length, zero-padding its tail to a
    /// word boundary (the payload region under [`FLAG_COVER_PAYLOAD`]).
    pub(crate) fn update_padded(&mut self, bytes: &[u8]) {
        let whole = bytes.len() & !3;
        self.update(&bytes[..whole]);
        let tail = &bytes[whole..];
        if !tail.is_empty() {
            let mut word = [0u8; 4];
            word[..tail.len()].copy_from_slice(tail);
            self.fold_word(u32::from_le_bytes(word));
        }
    }

    /// Folds the four lanes into the wire checksum word.
    pub(crate) fn finish(&self) -> u32 {
        let mut h = FNV_INIT;
        for lane in self.lanes {
            h = (h ^ lane).wrapping_mul(FNV_PRIME);
        }
        h
    }
}

/// The version-dispatched running digest behind the single-pass encoder
/// and the fused decode walk: v1 frames fold the byte-serial FNV-1a
/// (bit-exact with pre-v2 builds), v2 frames the 4-lane [`LaneDigest`].
#[derive(Debug, Clone, Copy)]
enum RunningDigest {
    Serial(u32),
    Lanes(LaneDigest),
}

impl RunningDigest {
    /// Seeds the digest for `version` and folds the already-written
    /// header: bytes `[0, 24)`, then — on v2 — the flags word (skipping
    /// the zeroed checksum word between them, which is never covered).
    fn begin(version: u8, header: &[u8]) -> Self {
        if version >= 2 {
            let mut d = LaneDigest::new();
            d.update(&header[..CHECKSUM_OFFSET]);
            d.update(&header[FLAGS_OFFSET..HEADER_LEN_V2]);
            RunningDigest::Lanes(d)
        } else {
            RunningDigest::Serial(fnv1a(FNV_INIT, &header[..CHECKSUM_OFFSET]))
        }
    }

    /// Folds one word-aligned table entry.
    #[inline]
    fn update(&mut self, bytes: &[u8]) {
        match self {
            RunningDigest::Serial(h) => *h = fnv1a(*h, bytes),
            RunningDigest::Lanes(d) => d.update(bytes),
        }
    }

    /// Folds the payload region (v2 with [`FLAG_COVER_PAYLOAD`] only —
    /// v1 never covers it).
    fn update_region(&mut self, bytes: &[u8]) {
        match self {
            RunningDigest::Serial(_) => unreachable!("v1 never covers the payload region"),
            RunningDigest::Lanes(d) => d.update_padded(bytes),
        }
    }

    fn finish(&self) -> u32 {
        match self {
            RunningDigest::Serial(h) => *h,
            RunningDigest::Lanes(d) => d.finish(),
        }
    }
}

/// How a framed engine encodes its frames: the wire format version and
/// whether the v2 digest also covers the payload region.
///
/// The decode side is not configurable — every decoder accepts all of
/// [`FRAME_VERSION_MIN`]`..=`[`FRAME_VERSION`] — so peers encoding
/// different versions interoperate; this only selects what *this* side
/// writes. Resolved from the environment by default (see
/// [`FrameConfig::from_env`]), pinned explicitly via
/// [`crate::Simulator::with_frame_config`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameConfig {
    /// Wire format version to encode, in
    /// [`FRAME_VERSION_MIN`]`..=`[`FRAME_VERSION`].
    pub version: u8,
    /// Extend the v2 digest over the payload region (flag bit 0), for
    /// transports that do not protect payload bytes themselves. Ignored
    /// (and never set on the wire) when `version` is 1.
    pub cover_payload: bool,
}

impl Default for FrameConfig {
    /// The newest format, tables-only coverage.
    fn default() -> Self {
        FrameConfig {
            version: FRAME_VERSION,
            cover_payload: false,
        }
    }
}

impl FrameConfig {
    /// Resolves the encoding config from the environment:
    /// `NETDECOMP_FRAME_VERSION` selects the format version (out-of-range
    /// or unparsable values fall back to [`FRAME_VERSION`]), and any
    /// `NETDECOMP_FRAME_COVER_PAYLOAD` value other than empty, `0`, or
    /// `off` enables payload coverage (v2 only). Read per call — never
    /// cached — so tests and benches can sweep versions in one process.
    #[must_use]
    pub fn from_env() -> Self {
        let version = std::env::var("NETDECOMP_FRAME_VERSION")
            .ok()
            .and_then(|v| v.trim().parse::<u8>().ok())
            .filter(|v| (FRAME_VERSION_MIN..=FRAME_VERSION).contains(v))
            .unwrap_or(FRAME_VERSION);
        let cover = std::env::var("NETDECOMP_FRAME_COVER_PAYLOAD")
            .map(|v| {
                let v = v.trim();
                !v.is_empty() && v != "0" && !v.eq_ignore_ascii_case("off")
            })
            .unwrap_or(false);
        FrameConfig {
            version,
            cover_payload: cover && version >= 2,
        }
    }

    /// The flags word this config writes (0 on v1, which has none).
    fn flags(self) -> u32 {
        if self.version >= 2 && self.cover_payload {
            FLAG_COVER_PAYLOAD
        } else {
            0
        }
    }
}

/// Which frame transport a framed engine ships buckets through.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FrameTransport {
    /// In-memory slot matrix: frames change hands by reference count
    /// (zero-copy, allocation-free in steady state). Prices the frame
    /// seam itself.
    #[default]
    Loopback,
    /// Per-shard mpsc mailboxes: a shard receives only encoded frames,
    /// never touching another shard's memory — process-per-shard
    /// semantics on threads.
    Channel,
    /// Real OS sockets (Unix domain): frames leave the address space and
    /// cross a kernel socket pair through a relay hub — the same client
    /// and hub code the process-per-shard
    /// [`crate::transport::launcher`] runs, exercised in-process. See
    /// [`crate::transport::SocketTransport`].
    Socket,
}

/// Cumulative transport-level health counters, merged into
/// [`crate::DeliveryWork`] by [`crate::Simulator::delivery_work`] and
/// reported as bench metric rows. All counters cover the transport's
/// whole lifetime (a run), not one round.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TransportHealth {
    /// Retries performed: reconnect attempts and frame re-sends.
    pub frames_retried: usize,
    /// Frames deliberately discarded or withheld by a fault-injection
    /// wrapper (always zero on production backends).
    pub frames_dropped_injected: usize,
    /// Nanoseconds spent blocked inside [`Transport::collect`] waiting
    /// for peer frames.
    pub collect_wait_ns: u64,
    /// Worker re-admissions on the socket fabric: restarted worker
    /// processes plus surviving-client link reconnects (each one is an
    /// epoch bump past a shard's first registration).
    pub workers_restarted: usize,
    /// Rounds fast-forwarded to reconnecting shards from the hub's
    /// per-destination replay logs.
    pub rounds_replayed: usize,
    /// Heartbeats a supervisor judged overdue before intervening.
    pub heartbeats_missed: usize,
}

impl TransportHealth {
    /// Adds another health report into this one (saturating).
    pub fn absorb(&mut self, other: TransportHealth) {
        self.frames_retried = self.frames_retried.saturating_add(other.frames_retried);
        self.frames_dropped_injected = self
            .frames_dropped_injected
            .saturating_add(other.frames_dropped_injected);
        self.collect_wait_ns = self.collect_wait_ns.saturating_add(other.collect_wait_ns);
        self.workers_restarted = self
            .workers_restarted
            .saturating_add(other.workers_restarted);
        self.rounds_replayed = self.rounds_replayed.saturating_add(other.rounds_replayed);
        self.heartbeats_missed = self
            .heartbeats_missed
            .saturating_add(other.heartbeats_missed);
    }
}

/// Moves one round's encoded bucket frames between shards.
///
/// Contract: during each round every sender shard calls [`Transport::send`]
/// exactly once per destination shard (empty buckets ship header-only
/// frames, so arrival counts are deterministic), all sends complete before
/// any [`Transport::collect`] for that round begins (the engine
/// barriers between the phases), and `collect` is called exactly once per
/// destination per round.
pub trait Transport: Send + Sync + std::fmt::Debug {
    /// Ships one encoded frame from sender shard `from` to destination
    /// shard `to`.
    fn send(&self, from: usize, to: usize, frame: Bytes);

    /// Collects the frames addressed to shard `to`: stores the frame from
    /// sender shard `k` at `into[k]`. `into` has one slot per shard; slots
    /// left `None` (a frame that never arrived) are surfaced by the place
    /// phase as a [`FrameError::MissingFrame`]. An implementation may
    /// return immediately with whatever arrived (loopback) or block — but
    /// never unboundedly: backends that wait must give up after a
    /// deadline (see [`crate::transport::frame_timeout`]), either
    /// returning `Ok` with the missing slots still `None` (surfaced as
    /// `MissingFrame`) or, when they know *why* the link failed, a typed
    /// [`TransportError`] (surfaced as [`crate::SimError::Transport`]
    /// with the engine's round number patched in).
    ///
    /// # Errors
    ///
    /// A [`TransportError`] reports a broken link: timeout, disconnect,
    /// failed handshake, I/O failure, or a peer-relayed error.
    fn collect(&self, to: usize, into: &mut [Option<Bytes>]) -> Result<(), TransportError>;

    /// Cumulative health counters (retries, injected faults, collect
    /// wait). The default reports zeros — in-memory backends have no
    /// links to retry and never wait measurably.
    fn health(&self) -> TransportHealth {
        TransportHealth::default()
    }
}

/// In-memory [`Transport`]: an `S x S` slot matrix, grouped by
/// destination so a collect locks once.
#[derive(Debug)]
pub struct LoopbackTransport {
    /// `slots[to][from]`, taken (moved out) by the destination's collect.
    slots: Vec<Mutex<Vec<Option<Bytes>>>>,
}

impl LoopbackTransport {
    /// A loopback fabric connecting `shards` shards.
    #[must_use]
    pub fn new(shards: usize) -> Self {
        LoopbackTransport {
            slots: (0..shards)
                .map(|_| Mutex::new(vec![None; shards]))
                .collect(),
        }
    }
}

impl Transport for LoopbackTransport {
    fn send(&self, from: usize, to: usize, frame: Bytes) {
        let mut row = self.slots[to].lock().expect("no poisoned loopback row");
        row[from] = Some(frame);
    }

    fn collect(&self, to: usize, into: &mut [Option<Bytes>]) -> Result<(), TransportError> {
        let mut row = self.slots[to].lock().expect("no poisoned loopback row");
        for (slot, out) in row.iter_mut().zip(into.iter_mut()) {
            *out = slot.take();
        }
        Ok(())
    }
}

/// Message-passing [`Transport`]: one persistent mpsc mailbox per shard.
#[derive(Debug)]
pub struct ChannelTransport {
    /// `senders[to]` feeds shard `to`'s mailbox (tagged with the sender).
    senders: Vec<mpsc::Sender<(usize, Bytes)>>,
    /// Each shard's mailbox; locked only by its owner during collect.
    receivers: Vec<Mutex<mpsc::Receiver<(usize, Bytes)>>>,
    /// How long one collect may wait for its frames before giving up and
    /// surfacing the gap as [`FrameError::MissingFrame`].
    timeout: std::time::Duration,
    /// Cumulative nanoseconds collects spent blocked waiting.
    collect_wait_ns: AtomicU64,
}

impl ChannelTransport {
    /// A channel fabric connecting `shards` shards, with the
    /// environment-resolved collect deadline
    /// ([`crate::transport::frame_timeout`]).
    #[must_use]
    pub fn new(shards: usize) -> Self {
        Self::with_timeout(shards, crate::transport::frame_timeout())
    }

    /// A channel fabric with an explicit collect deadline.
    #[must_use]
    pub fn with_timeout(shards: usize, timeout: std::time::Duration) -> Self {
        let mut senders = Vec::with_capacity(shards);
        let mut receivers = Vec::with_capacity(shards);
        for _ in 0..shards {
            let (tx, rx) = mpsc::channel();
            senders.push(tx);
            receivers.push(Mutex::new(rx));
        }
        ChannelTransport {
            senders,
            receivers,
            timeout,
            collect_wait_ns: AtomicU64::new(0),
        }
    }
}

impl Transport for ChannelTransport {
    fn send(&self, from: usize, to: usize, frame: Bytes) {
        self.senders[to]
            .send((from, frame))
            .expect("mailbox receiver outlives the round");
    }

    /// Waits — **boundedly** — until one frame per sender is in hand.
    /// Under the [`Transport`] contract (the engine barriers ship before
    /// collect, one frame per sender) the deadline is never reached; a
    /// sender shard that dies mid-round, under-delivers, or duplicates a
    /// sender tag leaves its slot `None` when the deadline expires, and
    /// the place phase surfaces that as a typed
    /// [`FrameError::MissingFrame`] instead of parking this thread
    /// forever. A frame from a sender whose slot is already full (a
    /// duplicate) is dropped without displacing anyone.
    fn collect(&self, to: usize, into: &mut [Option<Bytes>]) -> Result<(), TransportError> {
        let rx = self.receivers[to].lock().expect("no poisoned mailbox");
        let start = Instant::now();
        let deadline = start + self.timeout;
        let mut filled = into.iter().filter(|slot| slot.is_some()).count();
        while filled < into.len() {
            let now = Instant::now();
            let Some(remaining) = deadline
                .checked_duration_since(now)
                .filter(|d| !d.is_zero())
            else {
                break;
            };
            match rx.recv_timeout(remaining) {
                Ok((from, frame)) => {
                    if let Some(slot @ None) = into.get_mut(from) {
                        *slot = Some(frame);
                        filled += 1;
                    }
                }
                Err(mpsc::RecvTimeoutError::Timeout | mpsc::RecvTimeoutError::Disconnected) => {
                    break
                }
            }
        }
        self.collect_wait_ns
            .fetch_add(start.elapsed().as_nanos() as u64, Ordering::Relaxed);
        Ok(())
    }

    fn health(&self) -> TransportHealth {
        TransportHealth {
            collect_wait_ns: self.collect_wait_ns.load(Ordering::Relaxed),
            ..TransportHealth::default()
        }
    }
}

/// Encodes one router bucket into a frame in a **single pass**: the hot
/// path behind [`FrameEncoder::ship`].
///
/// The bucket is fully known up front (unlike the incremental
/// [`FrameBuilder`], which must stage payload bytes because table sizes
/// are unknown until `finish`), and its payload-section sizes arrive
/// pre-tallied (`tally`, maintained ref by ref as the account pass routed
/// the bucket), so the frame is laid out exactly once: the tally sizes
/// the frame, then one walk over the refs writes the ref table, the
/// payload table, and the payload region straight to their final
/// positions (no staging, no re-walk). Payload bytes are copied exactly
/// once (sender outbox → frame), and the checksum is folded in one
/// contiguous pass over the just-written tables — still hot in cache —
/// so the v2 digest's four lanes run at full block speed instead of
/// re-entering the stripe peel on every 16-byte entry.
///
/// Payload sharing uses the same rule the place phase depends on: refs of
/// one `(sender, message)` are consecutive within a bucket, so a
/// consecutive-pair check is an exact dedup and consecutive sharing refs
/// point at one payload-table entry (a multicast's copies ship one
/// payload).
///
/// # Panics
///
/// Panics if the encoded frame would exceed the `u32` wire bound — a
/// bucket that cannot be represented must never ship silently truncated.
#[allow(clippy::too_many_arguments)]
pub(crate) fn encode_bucket(
    sender: usize,
    dest: usize,
    bucket: &[RouteRef],
    tally: BucketTally,
    outboxes: &[Outbox],
    base: VertexId,
    config: FrameConfig,
    mut buf: BytesMut,
) -> Bytes {
    let payload_of =
        |r: &RouteRef| &outboxes[r.from as usize - base].messages()[r.msg as usize].payload;
    debug_assert_eq!(
        (tally.payload_count, tally.region_len),
        {
            let t = BucketTally::of(bucket, |r| payload_of(r).len());
            (t.payload_count, t.region_len)
        },
        "router tally out of sync with the bucket"
    );
    let (payload_count, region_len) = (tally.payload_count, tally.region_len);
    let head = header_len(config.version);
    let payload_table = head + REF_BYTES * bucket.len();
    let region_start = payload_table + PAYLOAD_BYTES * payload_count;
    let total = region_start + region_len;
    let total32 = u32::try_from(total).expect("frame length fits the wire format");
    // Size the buffer without a memset: every byte of `0..total` is
    // written below (the checksum word last, patched after the digest),
    // so zero-filling would be pure waste — `resize` only zero-fills
    // bytes past the recycled buffer's previous length, and steady-state
    // rounds (same frame size as two rounds ago) touch nothing here.
    buf.resize(total, 0);
    let data = &mut buf[..];
    data[..3].copy_from_slice(MAGIC);
    data[3] = config.version;
    data[4..8].copy_from_slice(&total32.to_le_bytes());
    let sender32 = u32::try_from(sender).expect("shard index fits the wire format");
    let dest32 = u32::try_from(dest).expect("shard index fits the wire format");
    data[8..12].copy_from_slice(&sender32.to_le_bytes());
    data[12..16].copy_from_slice(&dest32.to_le_bytes());
    data[16..20].copy_from_slice(&(bucket.len() as u32).to_le_bytes());
    data[20..24].copy_from_slice(&(payload_count as u32).to_le_bytes());
    data[CHECKSUM_OFFSET..CHECKSUM_OFFSET + 4].fill(0); // patched below
    let flags = config.flags();
    if config.version >= 2 {
        data[FLAGS_OFFSET..FLAGS_OFFSET + 4].copy_from_slice(&flags.to_le_bytes());
    }
    // Body walk: both tables and the payload region are written in ONE
    // pass over the bucket, through three disjoint cursors into the
    // pre-sized buffer (the tally fixed every section boundary): direct
    // bounds-checked-once `chunks_exact_mut` stores the compiler
    // unrolls, instead of a walk per section with a capacity-checking
    // `put_slice` per entry.
    let (tables, region) = data[head..].split_at_mut(region_start - head);
    let (ref_table, pay_table) = tables.split_at_mut(payload_table - head);
    let mut refs = ref_table.chunks_exact_mut(REF_BYTES);
    let mut pays = pay_table.chunks_exact_mut(PAYLOAD_BYTES);
    let mut last: Option<(u32, u32)> = None;
    let mut payload_idx = 0u32;
    let mut cursor = 0usize;
    for r in bucket {
        if last != Some((r.from, r.msg)) {
            if last.is_some() {
                payload_idx += 1;
            }
            // Payload bytes are copied exactly once, sender outbox →
            // final frame position (covered by the digest only under the
            // v2 payload-coverage flag — see the module docs).
            let payload = payload_of(r).as_slice();
            let entry = pays
                .next()
                .expect("payload table sized by the metadata pass");
            entry[0..4].copy_from_slice(&(cursor as u32).to_le_bytes());
            entry[4..8].copy_from_slice(&(payload.len() as u32).to_le_bytes());
            region[cursor..cursor + payload.len()].copy_from_slice(payload);
            cursor += payload.len();
            last = Some((r.from, r.msg));
        }
        let entry = refs.next().expect("ref table sized to the bucket");
        entry[0..4].copy_from_slice(&r.from.to_le_bytes());
        entry[4..8].copy_from_slice(&payload_idx.to_le_bytes());
        entry[8..12].copy_from_slice(&r.lo.to_le_bytes());
        entry[12..16].copy_from_slice(&r.hi.to_le_bytes());
    }
    debug_assert_eq!(cursor, region_len);
    // Digest the header and the finished tables in one contiguous fold
    // each — the tables were just written (still cache-warm), and one
    // region-sized `update` keeps the v2 lanes at full block speed. The
    // only post-digest write is patching the 4-byte checksum word.
    let mut sum = RunningDigest::begin(config.version, &buf[..head]);
    sum.update(&buf[head..region_start]);
    if flags & FLAG_COVER_PAYLOAD != 0 {
        sum.update_region(&buf[region_start..]);
    }
    let sum = sum.finish();
    buf[CHECKSUM_OFFSET..CHECKSUM_OFFSET + 4].copy_from_slice(&sum.to_le_bytes());
    buf.freeze()
}

/// Incremental encoder for one frame: push routed entries, then assemble.
///
/// This is the general-purpose path — tests, tools, and custom transports
/// build arbitrary frames with it; the engine's hot path is the
/// single-pass [`encode_bucket`], which knows its whole bucket up front
/// and therefore never stages payload bytes. An incremental builder
/// cannot avoid staging (table sizes are unknown until
/// [`FrameBuilder::finish`]), but its scratch tables are retained across
/// frames with the same decaying high-water capacity bound as [`Outbox`]:
/// steady-state encoding allocates nothing, and one bursty frame cannot
/// pin burst-sized staging buffers forever.
#[derive(Debug)]
pub struct FrameBuilder {
    sender: u32,
    dest: u32,
    /// Wire format the next [`FrameBuilder::finish_into`] writes.
    config: FrameConfig,
    /// Ref table scratch: `{from, payload index, lo, hi}`.
    refs: Vec<[u32; 4]>,
    /// Payload table scratch: `(offset, length)` into `payload`.
    payloads: Vec<(u32, u32)>,
    /// Payload region scratch.
    payload: Vec<u8>,
    /// Rolling high-water marks driving the scratch capacity decay
    /// (refs, payload table, payload region).
    high_water: [usize; 3],
}

impl Default for FrameBuilder {
    fn default() -> Self {
        FrameBuilder::new()
    }
}

impl FrameBuilder {
    /// An empty builder (for shard `0 -> 0` until [`FrameBuilder::begin`]
    /// retargets it), encoding the environment-resolved format
    /// ([`FrameConfig::from_env`]).
    #[must_use]
    pub fn new() -> Self {
        FrameBuilder {
            sender: 0,
            dest: 0,
            config: FrameConfig::from_env(),
            refs: Vec::new(),
            payloads: Vec::new(),
            payload: Vec::new(),
            high_water: [0; 3],
        }
    }

    /// Pins the wire format this builder encodes (overriding the
    /// environment-resolved default).
    #[must_use]
    pub fn with_config(mut self, config: FrameConfig) -> Self {
        self.config = config;
        self
    }

    /// Resets the builder for a new `sender -> dest` frame. Scratch
    /// capacity is kept across frames up to the decaying high-water bound
    /// shared with [`Outbox`] and the router buckets, so steady encoding
    /// never reallocates while one bursty frame cannot pin burst-sized
    /// staging buffers forever.
    ///
    /// # Panics
    ///
    /// Panics if either shard index exceeds the `u32` wire bound.
    pub fn begin(&mut self, sender: usize, dest: usize) {
        self.sender = u32::try_from(sender).expect("shard index fits the wire format");
        self.dest = u32::try_from(dest).expect("shard index fits the wire format");
        let [refs_hw, payloads_hw, payload_hw] = &mut self.high_water;
        crate::message::clear_with_decay(&mut self.refs, refs_hw);
        crate::message::clear_with_decay(&mut self.payloads, payloads_hw);
        crate::message::clear_with_decay(&mut self.payload, payload_hw);
    }

    /// Appends one routed entry carrying a new payload: sender vertex
    /// `from` delivers `payload` along the directed-edge slot range
    /// `slots`.
    ///
    /// # Panics
    ///
    /// Panics if the slot range is decreasing or any position exceeds the
    /// `u32` wire bound — a frame that cannot represent its bucket must
    /// never be shipped silently truncated.
    pub fn push(&mut self, from: VertexId, slots: Range<usize>, payload: &[u8]) {
        let off = u32::try_from(self.payload.len()).expect("payload region fits the wire format");
        let len = u32::try_from(payload.len()).expect("payload fits the wire format");
        assert!(
            off.checked_add(len).is_some(),
            "payload region fits the wire format"
        );
        self.payload.extend_from_slice(payload);
        self.payloads.push((off, len));
        self.push_ref(from, slots);
    }

    /// Appends one routed entry sharing the most recently pushed payload
    /// (a multicast's later copies).
    ///
    /// # Panics
    ///
    /// Panics if nothing has been pushed since [`FrameBuilder::begin`],
    /// or on the same wire-bound violations as [`FrameBuilder::push`].
    pub fn push_shared(&mut self, from: VertexId, slots: Range<usize>) {
        assert!(!self.payloads.is_empty(), "push_shared needs a prior push");
        self.push_ref(from, slots);
    }

    fn push_ref(&mut self, from: VertexId, slots: Range<usize>) {
        assert!(slots.start <= slots.end, "slot range is decreasing");
        let from = u32::try_from(from).expect("vertex id fits the wire format");
        let lo = u32::try_from(slots.start).expect("slot position fits the wire format");
        let hi = u32::try_from(slots.end).expect("slot position fits the wire format");
        let payload = (self.payloads.len() - 1) as u32;
        self.refs.push([from, payload, lo, hi]);
    }

    /// Entries pushed since [`FrameBuilder::begin`].
    #[must_use]
    pub fn ref_count(&self) -> usize {
        self.refs.len()
    }

    /// Assembles the frame into `buf` (cleared first — pass a recycled
    /// buffer to encode without allocating) and freezes it.
    #[must_use]
    pub fn finish_into(&mut self, mut buf: BytesMut) -> Bytes {
        let head = header_len(self.config.version);
        let flags = self.config.flags();
        buf.clear();
        buf.put_slice(MAGIC);
        buf.put_u8(self.config.version);
        buf.put_u32_le(0); // frame length, patched below
        buf.put_u32_le(self.sender);
        buf.put_u32_le(self.dest);
        buf.put_u32_le(self.refs.len() as u32);
        buf.put_u32_le(self.payloads.len() as u32);
        buf.put_u32_le(0); // checksum, patched below
        if self.config.version >= 2 {
            buf.put_u32_le(flags);
        }
        for r in &self.refs {
            for w in r {
                buf.put_u32_le(*w);
            }
        }
        for &(off, len) in &self.payloads {
            buf.put_u32_le(off);
            buf.put_u32_le(len);
        }
        let tables_end = buf.len();
        buf.put_slice(&self.payload);
        let total = u32::try_from(buf.len()).expect("frame length fits the wire format");
        buf[LEN_OFFSET..LEN_OFFSET + 4].copy_from_slice(&total.to_le_bytes());
        let sum = if self.config.version >= 2 {
            let mut d = RunningDigest::begin(self.config.version, &buf[..head]);
            d.update(&buf[head..tables_end]);
            if flags & FLAG_COVER_PAYLOAD != 0 {
                d.update_region(&buf[tables_end..]);
            }
            d.finish()
        } else {
            checksum(&buf[..CHECKSUM_OFFSET], &buf[head..tables_end])
        };
        buf[CHECKSUM_OFFSET..CHECKSUM_OFFSET + 4].copy_from_slice(&sum.to_le_bytes());
        buf.freeze()
    }

    /// Assembles the frame into a fresh buffer.
    #[must_use]
    pub fn finish(&mut self) -> Bytes {
        self.finish_into(BytesMut::new())
    }
}

/// One decoded ref-table entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameRef {
    /// Global sender vertex id.
    pub from: u32,
    /// Index into the frame's payload table.
    pub payload: u32,
    /// First directed-edge slot of the routed copies.
    pub lo: u32,
    /// One past the last slot.
    pub hi: u32,
}

/// A validated, decoded frame: a zero-copy view over the encoded bytes.
///
/// Decoding checks the magic, version, declared length, header checksum,
/// and every table bound up front, so the accessors below cannot read out
/// of range; [`Frame::payload`] hands out [`Bytes::slice`] views of the
/// payload region without copying.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    bytes: Bytes,
    sender: u32,
    dest: u32,
    /// Wire format version this frame was encoded in.
    version: u8,
    /// The v2 flags word (0 for v1 frames, which have none).
    flags: u32,
    ref_count: usize,
    payload_count: usize,
    /// Byte offset of the ref table (the header length of `version`).
    tables: usize,
    /// Byte offset of the payload table.
    payload_table: usize,
    /// Byte offset of the payload region.
    region: usize,
}

impl Frame {
    /// Parses and validates one encoded frame, dispatching on the version
    /// byte: v2 frames verify the word-parallel 4-lane digest (and, if
    /// flagged, its payload-region extension), v1 frames the byte-serial
    /// FNV-1a checksum, bit-exact with pre-v2 builds.
    ///
    /// # Errors
    ///
    /// Every malformation maps to a typed [`FrameError`]: short or
    /// overlong input, wrong magic, a version outside
    /// [`FRAME_VERSION_MIN`]`..=`[`FRAME_VERSION`], a checksum mismatch,
    /// unknown flag bits, or tables/payload entries that overrun their
    /// regions.
    pub fn decode(bytes: Bytes) -> Result<Frame, FrameError> {
        let data = bytes.as_slice();
        if data.len() < HEADER_LEN_V1 {
            return Err(FrameError::Truncated {
                needed: HEADER_LEN_V1,
                have: data.len(),
            });
        }
        if &data[..3] != MAGIC {
            return Err(FrameError::BadMagic);
        }
        let version = data[3];
        if !(FRAME_VERSION_MIN..=FRAME_VERSION).contains(&version) {
            return Err(FrameError::VersionMismatch {
                found: version,
                min: FRAME_VERSION_MIN,
                max: FRAME_VERSION,
            });
        }
        let head = header_len(version);
        if data.len() < head {
            return Err(FrameError::Truncated {
                needed: head,
                have: data.len(),
            });
        }
        let declared = le32(data, LEN_OFFSET) as usize;
        if declared > data.len() {
            return Err(FrameError::Truncated {
                needed: declared,
                have: data.len(),
            });
        }
        if declared < data.len() {
            return Err(FrameError::Malformed {
                detail: "bytes trail the declared frame length",
            });
        }
        let sender = le32(data, 8);
        let dest = le32(data, 12);
        let ref_count = le32(data, 16) as usize;
        let payload_count = le32(data, 20) as usize;
        let flags = if version >= 2 {
            le32(data, FLAGS_OFFSET)
        } else {
            0
        };
        let tables = (ref_count as u64) * (REF_BYTES as u64)
            + (payload_count as u64) * (PAYLOAD_BYTES as u64);
        let region = (head as u64).saturating_add(tables);
        if region > declared as u64 {
            return Err(FrameError::Malformed {
                detail: "tables overrun the frame",
            });
        }
        let region = region as usize;
        let payload_table = head + ref_count * REF_BYTES;
        let region_len = declared - region;
        // Verification: digest and structural validation share one pass
        // over the tables. The v2 lane digest's fused walks fold each
        // entry and check it in the same loop iteration; the v1 serial
        // digest streams the region, then separate branchless walks
        // accumulate the structural verdicts (no per-entry "already
        // failed?" test — that would serialize loops the compiler
        // otherwise vectorizes). Either way a structural violation
        // (unknown flag bits included) is only *recorded* — the checksum
        // verdict takes precedence (a corrupted frame reports
        // `ChecksumMismatch`, not whatever nonsense its flipped bits
        // happen to spell).
        let declared_sum = le32(data, CHECKSUM_OFFSET);
        let (computed, ref_past, ref_decreasing, payload_overrun) = if version >= 2 {
            let mut d = LaneDigest::new();
            d.update(&data[..CHECKSUM_OFFSET]);
            d.update(&data[FLAGS_OFFSET..HEADER_LEN_V2]);
            let (past, decreasing) = d.fold_ref_table(&data[head..payload_table], payload_count);
            let overrun = d.fold_payload_table(&data[payload_table..region], region_len as u64);
            if flags & FLAG_COVER_PAYLOAD != 0 {
                d.update_padded(&data[region..declared]);
            }
            (d.finish(), past, decreasing, overrun)
        } else {
            let computed = checksum(&data[..CHECKSUM_OFFSET], &data[head..region]);
            let (mut past, mut decreasing) = (false, false);
            for entry in data[head..payload_table].chunks_exact(REF_BYTES) {
                past |= le32(entry, 4) as usize >= payload_count;
                decreasing |= le32(entry, 8) > le32(entry, 12);
            }
            let mut overrun = false;
            for entry in data[payload_table..region].chunks_exact(PAYLOAD_BYTES) {
                // Widen before adding: offset + length can exceed u32
                // (and usize, on 32-bit targets) without either field
                // alone doing so, and a wrapped sum must not sneak past
                // the bound.
                overrun |=
                    u64::from(le32(entry, 0)) + u64::from(le32(entry, 4)) > region_len as u64;
            }
            (computed, past, decreasing, overrun)
        };
        let malformed = if flags & !FLAGS_KNOWN != 0 {
            Some("unknown frame flags")
        } else if ref_past {
            Some("ref points past the payload table")
        } else if ref_decreasing {
            Some("ref slot range is decreasing")
        } else if payload_overrun {
            Some("payload entry overruns the payload region")
        } else {
            None
        };
        if computed != declared_sum {
            return Err(FrameError::ChecksumMismatch {
                declared: declared_sum,
                computed,
            });
        }
        if let Some(detail) = malformed {
            return Err(FrameError::Malformed { detail });
        }
        Ok(Frame {
            bytes,
            sender,
            dest,
            version,
            flags,
            ref_count,
            payload_count,
            tables: head,
            payload_table,
            region,
        })
    }

    /// [`Frame::decode`], timing the validation: returns the frame and
    /// the nanoseconds the decode (dominated by the checksum verification
    /// walk) took, feeding [`crate::DeliveryWork::checksum_ns`].
    pub(crate) fn decode_timed(bytes: Bytes) -> Result<(Frame, u64), FrameError> {
        let start = std::time::Instant::now();
        let frame = Frame::decode(bytes)?;
        Ok((frame, start.elapsed().as_nanos() as u64))
    }

    /// The wire format version this frame was encoded in.
    #[must_use]
    pub fn version(&self) -> u8 {
        self.version
    }

    /// Whether this frame's digest also covered the payload region (v2
    /// frames with flag bit 0; always `false` for v1).
    #[must_use]
    pub fn covers_payload(&self) -> bool {
        self.flags & FLAG_COVER_PAYLOAD != 0
    }

    /// The shard that encoded this frame.
    #[must_use]
    pub fn sender_shard(&self) -> usize {
        self.sender as usize
    }

    /// The shard this frame is addressed to.
    #[must_use]
    pub fn dest_shard(&self) -> usize {
        self.dest as usize
    }

    /// Number of ref-table entries.
    #[must_use]
    pub fn ref_count(&self) -> usize {
        self.ref_count
    }

    /// Number of payload-table entries.
    #[must_use]
    pub fn payload_count(&self) -> usize {
        self.payload_count
    }

    /// Total encoded size in bytes.
    #[must_use]
    pub fn encoded_len(&self) -> usize {
        self.bytes.len()
    }

    /// The ref-table entries, in bucket (= delivery) order.
    pub fn refs(&self) -> impl Iterator<Item = FrameRef> + '_ {
        self.bytes.as_slice()[self.tables..self.payload_table]
            .chunks_exact(REF_BYTES)
            .map(|entry| FrameRef {
                from: le32(entry, 0),
                payload: le32(entry, 4),
                lo: le32(entry, 8),
                hi: le32(entry, 12),
            })
    }

    /// A zero-copy view of payload `idx` (bounds-checked at decode).
    ///
    /// # Panics
    ///
    /// Panics if `idx >= payload_count()`.
    #[must_use]
    pub fn payload(&self, idx: u32) -> Bytes {
        assert!(
            (idx as usize) < self.payload_count,
            "payload index in range"
        );
        let data = self.bytes.as_slice();
        let entry = self.payload_table + PAYLOAD_BYTES * idx as usize;
        let off = le32(data, entry) as usize;
        let len = le32(data, entry + 4) as usize;
        self.bytes.slice(self.region + off..self.region + off + len)
    }
}

/// One shard's sender side of the frame seam: encodes every router bucket
/// into a frame and ships it, recycling frame buffers on a two-round ring.
///
/// Why two rounds: a frame's payload slices sit in destination payload
/// slabs for exactly one round (registered in round `r`'s place, read by
/// round `r + 1`'s compute, dropped wholesale by its place's slab reset),
/// so the buffer shipped in round `r - 2` is uniquely referenced again by
/// round `r` and [`Bytes::try_into_mut`] reclaims it — steady-state
/// framing allocates nothing. A protocol that retains payload views
/// longer (via [`crate::IncomingRef::to_incoming`]) just makes the
/// reclaim miss and fall back to a fresh buffer; correctness is
/// unaffected.
///
/// Retained capacity is bounded with the same rolling-high-water policy
/// as [`Outbox`] and the router buckets: a reclaimed buffer whose
/// capacity sits above [`Outbox::RETAIN_FACTOR`] times the per-dest mark
/// is dropped, so one bursty round cannot pin `2 x shards` burst-sized
/// frame buffers per shard forever, while constant-volume rounds never
/// shrink (doubling growth stays under the factor) and stay zero-alloc.
#[derive(Debug, Default)]
pub(crate) struct FrameEncoder {
    /// `ring[dest][parity]`: this shard's retained handle to the frame it
    /// shipped to `dest` two rounds ago (reclaim candidate).
    ring: Vec<[Option<Bytes>; 2]>,
    /// Rolling high-water mark of encoded frame bytes, per destination.
    high_water: Vec<usize>,
    parity: usize,
    /// Wire format this encoder writes.
    config: FrameConfig,
    /// Frames shipped from inside the fused compute/account/ship phase
    /// (the overlapped schedule) rather than from a dedicated ship phase.
    overlap_ships: usize,
}

/// Floor of the frame-buffer retention mark, in bytes (a header-only
/// frame is 28–32 bytes; tiny frames must never thrash).
const FRAME_RETAIN_FLOOR: usize = 256;

impl FrameEncoder {
    pub(crate) fn new(shards: usize, config: FrameConfig) -> Self {
        FrameEncoder {
            ring: vec![[None, None]; shards],
            high_water: vec![0; shards],
            parity: 0,
            config,
            overlap_ships: 0,
        }
    }

    /// Frames this encoder shipped from the fused (overlapped) phase.
    pub(crate) fn overlap_ships(&self) -> usize {
        self.overlap_ships
    }

    /// Encodes shard `me`'s buckets — refs from `router`, payload bytes
    /// from the shard's own `outboxes` chunk (whose first sender is
    /// `base`) — and ships one frame per destination shard through
    /// `transport`. Each bucket goes through the single-pass
    /// [`encode_bucket`]: payload bytes are copied exactly once, straight
    /// to their final position in the (recycled) frame buffer.
    /// `overlapped` marks (for [`crate::DeliveryWork`]) whether this call
    /// ran inside the fused compute/account/ship phase.
    pub(crate) fn ship(
        &mut self,
        me: usize,
        router: &Router,
        outboxes: &[Outbox],
        base: VertexId,
        transport: &dyn Transport,
        overlapped: bool,
    ) {
        self.parity ^= 1;
        if overlapped {
            self.overlap_ships += self.ring.len();
        }
        for dest in 0..self.ring.len() {
            let cap = Outbox::RETAIN_FACTOR * self.high_water[dest].max(FRAME_RETAIN_FLOOR);
            let buf = match self.ring[dest][self.parity].take() {
                Some(old) => match old.try_into_mut() {
                    // Dropping an over-retained buffer (rather than
                    // shrinking in place) keeps the shim's `BytesMut`
                    // surface identical to the real crate's.
                    Ok(buf) if buf.capacity() <= cap => buf,
                    Ok(_) | Err(_) => BytesMut::new(),
                },
                None => BytesMut::new(),
            };
            let frame = encode_bucket(
                me,
                dest,
                router.bucket(dest),
                router.tally(dest),
                outboxes,
                base,
                self.config,
                buf,
            );
            let hw = &mut self.high_water[dest];
            *hw = (*hw - *hw / 4).max(frame.len());
            self.ring[dest][self.parity] = Some(frame.clone());
            transport.send(me, dest, frame);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Encoding configs the tests sweep: v1, v2, and v2 with payload
    /// coverage.
    fn all_configs() -> [FrameConfig; 3] {
        [
            FrameConfig {
                version: 1,
                cover_payload: false,
            },
            FrameConfig {
                version: 2,
                cover_payload: false,
            },
            FrameConfig {
                version: 2,
                cover_payload: true,
            },
        ]
    }

    #[test]
    fn empty_frame_round_trips_in_every_format() {
        for config in all_configs() {
            let mut b = FrameBuilder::new().with_config(config);
            b.begin(3, 5);
            let frame = b.finish();
            assert_eq!(frame.len(), header_len(config.version));
            let f = Frame::decode(frame).unwrap();
            assert_eq!(f.version(), config.version);
            assert_eq!(f.covers_payload(), config.cover_payload);
            assert_eq!(f.sender_shard(), 3);
            assert_eq!(f.dest_shard(), 5);
            assert_eq!(f.ref_count(), 0);
            assert_eq!(f.payload_count(), 0);
            assert_eq!(f.refs().count(), 0);
        }
    }

    /// The lane digest is independent of how the covered stream is split
    /// across `update` calls — the invariant the incremental encoder
    /// leans on.
    #[test]
    fn lane_digest_is_split_invariant() {
        let words: Vec<u8> = (0u8..96).collect();
        let mut whole = LaneDigest::new();
        whole.update(&words);
        for cut in (0..=words.len()).step_by(4) {
            let mut split = LaneDigest::new();
            split.update(&words[..cut]);
            split.update(&words[cut..]);
            assert_eq!(split.finish(), whole.finish(), "cut at {cut}");
        }
        // Padded tails behave like explicit zero padding.
        let mut padded = LaneDigest::new();
        padded.update_padded(&words[..93]);
        let mut explicit = LaneDigest::new();
        let mut zeroed = words[..93].to_vec();
        zeroed.extend_from_slice(&[0, 0, 0]);
        explicit.update(&zeroed);
        assert_eq!(padded.finish(), explicit.finish());
    }

    /// Payload coverage actually covers: flipping a payload byte fails a
    /// covered frame's decode and sails through an uncovered one.
    #[test]
    fn payload_coverage_flag_extends_the_digest() {
        for cover in [false, true] {
            let mut b = FrameBuilder::new().with_config(FrameConfig {
                version: 2,
                cover_payload: cover,
            });
            b.begin(0, 1);
            b.push(7, 3..4, b"fragile bytes");
            let encoded = b.finish();
            let f = Frame::decode(encoded.clone()).unwrap();
            assert_eq!(f.covers_payload(), cover);
            let mut bad = encoded.as_slice().to_vec();
            let last = bad.len() - 1;
            bad[last] ^= 0x40; // a payload-region byte (the padded tail)
            let verdict = Frame::decode(Bytes::from(bad));
            if cover {
                assert!(
                    matches!(verdict, Err(FrameError::ChecksumMismatch { .. })),
                    "covered payload corruption escaped: {verdict:?}"
                );
            } else {
                assert!(verdict.is_ok(), "uncovered payload rejected: {verdict:?}");
            }
        }
    }

    /// An unknown flag bit rejects the frame — but only after the digest
    /// verdict, so random corruption of the flags word still reads as a
    /// checksum failure.
    #[test]
    fn unknown_flag_bits_are_rejected() {
        let mut b = FrameBuilder::new().with_config(FrameConfig {
            version: 2,
            cover_payload: false,
        });
        b.begin(0, 1);
        let encoded = b.finish();
        let mut bad = encoded.as_slice().to_vec();
        bad[FLAGS_OFFSET] |= 0x02; // an undefined flag, digest not fixed up
        assert!(matches!(
            Frame::decode(Bytes::from(bad.clone())),
            Err(FrameError::ChecksumMismatch { .. })
        ));
        // With the digest recomputed over the bogus flag, the structural
        // rejection surfaces.
        let mut d = LaneDigest::new();
        d.update(&bad[..CHECKSUM_OFFSET]);
        d.update(&bad[FLAGS_OFFSET..HEADER_LEN_V2]);
        let sum = d.finish();
        bad[CHECKSUM_OFFSET..CHECKSUM_OFFSET + 4].copy_from_slice(&sum.to_le_bytes());
        assert_eq!(
            Frame::decode(Bytes::from(bad)),
            Err(FrameError::Malformed {
                detail: "unknown frame flags"
            })
        );
    }

    #[test]
    fn entries_round_trip_with_shared_payloads() {
        let mut b = FrameBuilder::new();
        b.begin(0, 1);
        b.push(7, 40..41, b"alpha");
        b.push_shared(7, 55..56); // same multicast payload, second target
        b.push(9, 10..14, b"bee");
        let f = Frame::decode(b.finish()).unwrap();
        let refs: Vec<_> = f.refs().collect();
        assert_eq!(refs.len(), 3);
        assert_eq!(f.payload_count(), 2);
        assert_eq!(refs[0].from, 7);
        assert_eq!((refs[0].lo, refs[0].hi), (40, 41));
        assert_eq!(refs[0].payload, refs[1].payload, "multicast shares bytes");
        assert_eq!(f.payload(refs[1].payload).as_slice(), b"alpha");
        assert_eq!(f.payload(refs[2].payload).as_slice(), b"bee");
        assert_eq!((refs[2].lo, refs[2].hi), (10, 14));
    }

    #[test]
    fn builder_scratch_is_reusable() {
        let mut b = FrameBuilder::new();
        b.begin(0, 0);
        b.push(1, 2..3, b"first");
        let one = b.finish();
        b.begin(2, 4);
        b.push(5, 6..7, b"second");
        let two = Frame::decode(b.finish()).unwrap();
        assert_eq!(two.sender_shard(), 2);
        assert_eq!(two.ref_count(), 1);
        assert_eq!(two.payload(0).as_slice(), b"second");
        // The first frame is unaffected by the rebuild.
        let one = Frame::decode(one).unwrap();
        assert_eq!(one.payload(0).as_slice(), b"first");
    }

    #[test]
    fn payload_views_share_the_frame_buffer() {
        let mut b = FrameBuilder::new();
        b.begin(0, 0);
        b.push(0, 0..1, b"shared-zero-copy");
        let encoded = b.finish();
        let f = Frame::decode(encoded.clone()).unwrap();
        let view = f.payload(0);
        drop(f);
        // The view keeps the frame alive; reclaiming must fail while it
        // (and our handle) exist, and succeed once the views are gone.
        let encoded = encoded.try_into_mut().expect_err("view still live");
        drop(view);
        assert!(encoded.try_into_mut().is_ok());
    }

    #[test]
    fn loopback_moves_frames_once() {
        let t = LoopbackTransport::new(2);
        let mut b = FrameBuilder::new();
        b.begin(1, 0);
        let frame = b.finish();
        t.send(1, 0, frame.clone());
        let mut got = vec![None, None];
        t.collect(0, &mut got).unwrap();
        assert!(got[0].is_none());
        assert_eq!(got[1].as_ref().unwrap().as_slice(), frame.as_slice());
        // A second collect finds the slots drained.
        let mut again = vec![None, None];
        t.collect(0, &mut again).unwrap();
        assert!(again.iter().all(Option::is_none));
    }

    #[test]
    fn channel_collects_one_frame_per_sender() {
        let t = ChannelTransport::new(3);
        let mut b = FrameBuilder::new();
        for from in 0..3 {
            b.begin(from, 2);
            b.push(from, from..from + 1, &[from as u8]);
            t.send(from, 2, b.finish());
        }
        let mut got = vec![None, None, None];
        t.collect(2, &mut got).unwrap();
        for (from, slot) in got.iter().enumerate() {
            let f = Frame::decode(slot.clone().expect("frame arrived")).unwrap();
            assert_eq!(f.sender_shard(), from);
        }
    }

    /// The satellite fix: a sender shard that dies mid-round (here: one
    /// that simply never ships) leaves its slot `None` after the bounded
    /// wait instead of parking the collecting thread forever. The place
    /// phase turns that `None` into [`FrameError::MissingFrame`].
    #[test]
    fn channel_collect_times_out_instead_of_hanging() {
        let t = ChannelTransport::with_timeout(3, std::time::Duration::from_millis(50));
        let mut b = FrameBuilder::new();
        b.begin(0, 2);
        t.send(0, 2, b.finish());
        // Sender shard 1 "died": nothing ever arrives from it.
        let start = Instant::now();
        let mut got = vec![None, None, None];
        t.collect(2, &mut got).unwrap();
        assert!(got[0].is_some(), "the live sender's frame still arrives");
        assert!(got[1].is_none(), "the dead sender's slot stays empty");
        assert!(
            start.elapsed() < std::time::Duration::from_secs(5),
            "collect must give up at the deadline"
        );
        assert!(
            t.health().collect_wait_ns > 0,
            "the bounded wait is measured"
        );
    }

    /// A duplicated sender tag must not displace another sender's frame;
    /// the duplicate is dropped and the remaining senders still land.
    #[test]
    fn channel_collect_drops_duplicates_without_displacing() {
        let t = ChannelTransport::with_timeout(2, std::time::Duration::from_millis(50));
        let mut b = FrameBuilder::new();
        b.begin(0, 0);
        b.push(9, 0..1, b"first");
        let first = b.finish();
        b.begin(0, 0);
        b.push(9, 0..1, b"duplicate");
        t.send(0, 0, first.clone());
        t.send(0, 0, b.finish());
        b.begin(1, 0);
        t.send(1, 0, b.finish());
        let mut got = vec![None, None];
        t.collect(0, &mut got).unwrap();
        assert_eq!(
            got[0].as_ref().unwrap().as_slice(),
            first.as_slice(),
            "the first frame from a sender wins"
        );
        assert!(got[1].is_some(), "other senders are not displaced");
    }

    #[test]
    fn encoder_ships_one_valid_frame_per_destination_per_round() {
        let t = LoopbackTransport::new(2);
        let mut router = Router::default();
        router.reset(2);
        let mut enc = FrameEncoder::new(2, FrameConfig::default());
        for round in 0..6 {
            enc.ship(0, &router, &[], 0, &t, false);
            for dest in 0..2 {
                let mut got = vec![None, None];
                t.collect(dest, &mut got).unwrap();
                let frame = Frame::decode(got[0].take().expect("frame arrived")).unwrap();
                assert_eq!(frame.sender_shard(), 0, "round {round} dest {dest}");
                assert_eq!(frame.dest_shard(), dest, "round {round} dest {dest}");
                assert_eq!(frame.ref_count(), 0);
                assert!(got[1].is_none(), "no frame from a nonexistent sender");
            }
        }
    }

    /// The single-pass bucket encoder and the incremental builder are the
    /// same wire format, byte for byte — in every version/flag combination:
    /// same tables, same payload sharing, same checksum — only the number
    /// of payload copies made to produce them differs.
    #[test]
    fn single_pass_encode_matches_the_incremental_builder_bit_for_bit() {
        use crate::shard::RouteRef;

        // Sender 0: a broadcast-style segment ref. Sender 1: a multicast
        // (two singleton refs sharing one payload) then a second message.
        let mut out0 = Outbox::new();
        out0.broadcast(Bytes::from(b"alpha".as_slice()));
        let mut out1 = Outbox::new();
        out1.multicast(vec![0, 2], Bytes::from(b"bee".as_slice()));
        out1.unicast(2, Bytes::new());
        let outboxes = [out0, out1];
        let bucket = [
            RouteRef {
                from: 0,
                msg: 0,
                lo: 0,
                hi: 3,
            },
            RouteRef {
                from: 1,
                msg: 0,
                lo: 3,
                hi: 4,
            },
            RouteRef {
                from: 1,
                msg: 0,
                lo: 5,
                hi: 6,
            },
            RouteRef {
                from: 1,
                msg: 1,
                lo: 5,
                hi: 6,
            },
        ];
        let tally = BucketTally::of(&bucket, |r| {
            outboxes[r.from as usize].messages()[r.msg as usize]
                .payload
                .len()
        });
        for config in all_configs() {
            let fast = encode_bucket(2, 5, &bucket, tally, &outboxes, 0, config, BytesMut::new());

            let mut b = FrameBuilder::new().with_config(config);
            b.begin(2, 5);
            let mut last = None;
            for r in &bucket {
                let slots = r.lo as usize..r.hi as usize;
                if last == Some((r.from, r.msg)) {
                    b.push_shared(r.from as usize, slots);
                } else {
                    let payload = &outboxes[r.from as usize].messages()[r.msg as usize].payload;
                    b.push(r.from as usize, slots, payload);
                    last = Some((r.from, r.msg));
                }
            }
            let slow = b.finish();
            assert_eq!(
                fast.as_slice(),
                slow.as_slice(),
                "wire formats diverged under {config:?}"
            );
            // And the result is a valid frame with the expected sharing.
            let f = Frame::decode(fast).unwrap();
            assert_eq!(f.version(), config.version);
            assert_eq!(f.ref_count(), 4);
            assert_eq!(f.payload_count(), 3);
            let refs: Vec<_> = f.refs().collect();
            assert_eq!(refs[1].payload, refs[2].payload, "multicast shares bytes");
            assert_eq!(f.payload(refs[0].payload).as_slice(), b"alpha");
        }
    }

    /// Empty buckets encode to the same header-only frame either way.
    #[test]
    fn single_pass_encode_matches_builder_on_empty_buckets() {
        for config in all_configs() {
            let fast = encode_bucket(
                1,
                3,
                &[],
                BucketTally::default(),
                &[],
                0,
                config,
                BytesMut::new(),
            );
            let mut b = FrameBuilder::new().with_config(config);
            b.begin(1, 3);
            assert_eq!(fast.as_slice(), b.finish().as_slice());
            assert_eq!(fast.len(), header_len(config.version));
        }
    }

    /// Satellite: the incremental builder's staging buffers follow the
    /// same decaying high-water retention policy as `Outbox` — a bursty
    /// frame's capacity is kept hot briefly, then released (mirrors
    /// `bursty_capacity_decays_toward_the_rolling_high_water_mark`).
    #[test]
    fn builder_staging_capacity_decays_after_a_burst() {
        let mut b = FrameBuilder::new();
        b.begin(0, 0);
        for i in 0..1024usize {
            b.push(i, i..i + 1, &[0u8; 64]);
        }
        let _ = b.finish();
        b.begin(0, 0);
        // The burst is still remembered right after it happened...
        assert!(b.refs.capacity() >= 512, "burst capacity kept hot");
        assert!(b.payload.capacity() >= 32 * 1024);
        // ...but dozens of small frames later every staging table has
        // decayed back to the steady volume's scale.
        for _ in 0..64 {
            b.push(0, 0..1, b"x");
            let _ = b.finish();
            b.begin(0, 0);
        }
        assert!(
            b.refs.capacity() <= Outbox::RETAIN_FACTOR * Outbox::RETAIN_FLOOR,
            "ref staging capacity {} still pinned after decay",
            b.refs.capacity()
        );
        assert!(
            b.payloads.capacity() <= Outbox::RETAIN_FACTOR * Outbox::RETAIN_FLOOR,
            "payload-table staging capacity {} still pinned after decay",
            b.payloads.capacity()
        );
        assert!(
            b.payload.capacity() <= Outbox::RETAIN_FACTOR * Outbox::RETAIN_FLOOR,
            "payload-region staging capacity {} still pinned after decay",
            b.payload.capacity()
        );
        // Steady volume never reallocates: the capacities are stable.
        let caps = (
            b.refs.capacity(),
            b.payloads.capacity(),
            b.payload.capacity(),
        );
        for _ in 0..32 {
            b.push(0, 0..1, b"x");
            let _ = b.finish();
            b.begin(0, 0);
            assert_eq!(
                caps,
                (
                    b.refs.capacity(),
                    b.payloads.capacity(),
                    b.payload.capacity()
                )
            );
        }
    }

    #[test]
    fn frame_buffer_capacity_decays_after_a_burst() {
        use crate::shard::RouteRef;

        let t = LoopbackTransport::new(1);
        let drain = |t: &LoopbackTransport| {
            let mut got = vec![None];
            t.collect(0, &mut got).unwrap();
        };
        let mut router = Router::default();
        router.reset(1);
        router.push(
            0,
            RouteRef {
                from: 0,
                msg: 0,
                lo: 0,
                hi: 1,
            },
            64 * 1024,
        );
        let mut outbox = crate::Outbox::new();
        outbox.unicast(0, Bytes::from(vec![7u8; 64 * 1024]));
        let outboxes = [outbox];
        let mut enc = FrameEncoder::new(1, FrameConfig::default());
        enc.ship(0, &router, &outboxes, 0, &t, false);
        drain(&t);
        assert!(enc.high_water[0] >= 64 * 1024, "burst mark recorded");
        // Dozens of empty rounds later, the mark — and with it the
        // retained buffer capacity the reclaim path will accept — has
        // decayed back to the steady scale (same policy as Outbox).
        router.reset(1);
        for _ in 0..64 {
            enc.ship(0, &router, &[], 0, &t, false);
            drain(&t);
        }
        assert!(
            enc.high_water[0] <= FRAME_RETAIN_FLOOR,
            "mark {} still pinned after decay",
            enc.high_water[0]
        );
    }

    #[test]
    fn recycle_ring_never_aliases_a_frame_a_receiver_still_holds() {
        // A receiver that keeps a frame (or a payload view) alive across
        // later rounds must see its bytes unchanged: the ring's reclaim
        // goes through `Bytes::try_into_mut`, which refuses shared
        // buffers, so the encoder falls back to a fresh buffer instead of
        // rewriting one in place. Exercised far past the two-round parity
        // window.
        let t = LoopbackTransport::new(1);
        let mut router = Router::default();
        router.reset(1);
        let mut enc = FrameEncoder::new(1, FrameConfig::default());
        enc.ship(0, &router, &[], 0, &t, false);
        let mut got = vec![None];
        t.collect(0, &mut got).unwrap();
        let held = got[0].take().unwrap();
        let snapshot = held.as_slice().to_vec();
        for _ in 0..6 {
            enc.ship(0, &router, &[], 0, &t, false);
            let mut later = vec![None];
            t.collect(0, &mut later).unwrap();
            assert_eq!(
                held.as_slice(),
                &snapshot[..],
                "a held frame was rewritten in place"
            );
        }
    }
}

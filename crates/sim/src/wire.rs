//! Fixed-width wire encoding helpers over [`bytes`].
//!
//! Protocols encode their payloads through [`WireWriter`] and decode through
//! [`WireReader`]; all integers are little-endian, floats are IEEE-754 bit
//! patterns. Keeping the encoding fixed-width makes the CONGEST byte
//! accounting directly interpretable as "words".

use bytes::{BufMut, Bytes, BytesMut};

/// Builder for a fixed-width binary payload.
///
/// # Example
///
/// ```
/// use netdecomp_sim::wire::{WireReader, WireWriter};
///
/// let payload = WireWriter::new().u32(7).f64(2.5).finish();
/// let mut r = WireReader::new(&payload);
/// assert_eq!(r.u32(), Some(7));
/// assert_eq!(r.f64(), Some(2.5));
/// assert!(r.is_exhausted());
/// ```
#[derive(Debug, Default)]
pub struct WireWriter {
    buf: BytesMut,
}

impl WireWriter {
    /// Creates an empty writer.
    #[must_use]
    pub fn new() -> Self {
        WireWriter::default()
    }

    /// Appends a `u16`.
    #[must_use]
    pub fn u16(mut self, x: u16) -> Self {
        self.buf.put_u16_le(x);
        self
    }

    /// Appends a `u32`.
    #[must_use]
    pub fn u32(mut self, x: u32) -> Self {
        self.buf.put_u32_le(x);
        self
    }

    /// Appends a `u64`.
    #[must_use]
    pub fn u64(mut self, x: u64) -> Self {
        self.buf.put_u64_le(x);
        self
    }

    /// Appends an `f64` as its IEEE-754 bit pattern.
    #[must_use]
    pub fn f64(mut self, x: f64) -> Self {
        self.buf.put_f64_le(x);
        self
    }

    /// Finalizes into an immutable payload.
    #[must_use]
    pub fn finish(self) -> Bytes {
        self.buf.freeze()
    }
}

/// Cursor decoding a payload written by [`WireWriter`].
///
/// Every accessor returns `None` once the payload is exhausted, so malformed
/// (truncated) messages surface as decode failures rather than panics.
///
/// The reader *borrows* its input: decoding advances a slice, so wrapping
/// a delivered payload costs nothing — no handle clone, no reference-count
/// traffic — which is what keeps the typed read path's per-copy cost at
/// zero alongside the engine's slab-backed inboxes.
#[derive(Debug)]
pub struct WireReader<'a> {
    buf: &'a [u8],
}

impl<'a> WireReader<'a> {
    /// Wraps a payload for reading (accepts `&Bytes` through deref).
    #[must_use]
    pub fn new(buf: &'a [u8]) -> Self {
        WireReader { buf }
    }

    /// Reads the next `N` bytes as a fixed-size array, if they remain.
    fn take<const N: usize>(&mut self) -> Option<[u8; N]> {
        let (head, rest) = self.buf.split_first_chunk::<N>()?;
        self.buf = rest;
        Some(*head)
    }

    /// Reads a `u16`, if enough bytes remain.
    pub fn u16(&mut self) -> Option<u16> {
        self.take().map(u16::from_le_bytes)
    }

    /// Reads a `u32`, if enough bytes remain.
    pub fn u32(&mut self) -> Option<u32> {
        self.take().map(u32::from_le_bytes)
    }

    /// Reads a `u64`, if enough bytes remain.
    pub fn u64(&mut self) -> Option<u64> {
        self.take().map(u64::from_le_bytes)
    }

    /// Reads an `f64`, if enough bytes remain.
    pub fn f64(&mut self) -> Option<f64> {
        self.u64().map(f64::from_bits)
    }

    /// `true` when every byte has been consumed.
    #[must_use]
    pub fn is_exhausted(&self) -> bool {
        self.buf.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_all_types() {
        let payload = WireWriter::new()
            .u16(65535)
            .u32(123_456)
            .u64(u64::MAX)
            .f64(-0.125)
            .finish();
        assert_eq!(payload.len(), 2 + 4 + 8 + 8);
        let mut r = WireReader::new(&payload);
        assert_eq!(r.u16(), Some(65535));
        assert_eq!(r.u32(), Some(123_456));
        assert_eq!(r.u64(), Some(u64::MAX));
        assert_eq!(r.f64(), Some(-0.125));
        assert!(r.is_exhausted());
    }

    #[test]
    fn truncated_reads_return_none() {
        let payload = WireWriter::new().u16(1).finish();
        let mut r = WireReader::new(&payload);
        assert_eq!(r.u32(), None); // only 2 bytes available
        assert_eq!(r.u16(), Some(1));
        assert_eq!(r.u16(), None);
    }

    #[test]
    fn nan_round_trips_bitwise() {
        let payload = WireWriter::new().f64(f64::NAN).finish();
        let mut r = WireReader::new(&payload);
        assert!(r.f64().unwrap().is_nan());
    }

    #[test]
    fn empty_payload_is_exhausted() {
        let r = WireReader::new(&[]);
        assert!(r.is_exhausted());
    }
}

//! Message types exchanged through the simulator.

use bytes::Bytes;
use netdecomp_graph::VertexId;

/// Addressing of an outgoing message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Recipient {
    /// Send to one specific neighbor.
    Neighbor(VertexId),
    /// Send a copy to each listed neighbor, in list order (multicast).
    ///
    /// Every target must be a neighbor of the sender; a repeated target
    /// receives — and is CONGEST-charged for — one copy per occurrence,
    /// exactly as the same number of unicasts would be.
    Neighbors(Vec<VertexId>),
    /// Send a copy along every incident edge.
    AllNeighbors,
}

/// A message handed to the engine for delivery next round.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Outgoing {
    /// Who receives the message.
    pub to: Recipient,
    /// Encoded payload; its length is what CONGEST accounting measures.
    pub payload: Bytes,
}

impl Outgoing {
    /// Message to a single neighbor.
    #[must_use]
    pub fn unicast(to: VertexId, payload: Bytes) -> Self {
        Outgoing {
            to: Recipient::Neighbor(to),
            payload,
        }
    }

    /// Message copied to each listed neighbor (multicast). The payload is
    /// shared by reference count; only the target list is owned.
    #[must_use]
    pub fn multicast(to: Vec<VertexId>, payload: Bytes) -> Self {
        Outgoing {
            to: Recipient::Neighbors(to),
            payload,
        }
    }

    /// Message copied along all incident edges.
    #[must_use]
    pub fn broadcast(payload: Bytes) -> Self {
        Outgoing {
            to: Recipient::AllNeighbors,
            payload,
        }
    }
}

/// A message as delivered to a node at the start of a round.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Incoming {
    /// The neighbor that sent it (previous round).
    pub from: VertexId,
    /// Encoded payload.
    pub payload: Bytes,
}

/// A node's per-round send buffer.
///
/// The engine hands every node a preallocated `Outbox` (one per vertex,
/// reused across rounds), so the compute phase allocates nothing in steady
/// state and can run over all nodes in parallel — each node writes only
/// its own slot.
///
/// Retained capacity is bounded: the buffer tracks a rolling high-water
/// mark of recent round sizes (decaying by a quarter per round toward the
/// current size), and a [`Outbox::clear`] that finds the capacity above
/// [`Outbox::RETAIN_FACTOR`] times that mark shrinks it back down. A
/// single bursty round therefore cannot pin a burst-sized buffer forever,
/// while constant-volume workloads never reallocate (capacity from
/// doubling growth stays under the factor), preserving the steady-state
/// zero-allocation invariant.
#[derive(Debug, Clone, Default)]
pub struct Outbox {
    msgs: Vec<Outgoing>,
    /// Rolling high-water mark of per-round message counts.
    high_water: usize,
}

/// Equality is over queued messages only; the capacity bookkeeping is
/// not observable behavior (`Determinism::Verify` compares live outboxes
/// against freshly allocated reference ones).
impl PartialEq for Outbox {
    fn eq(&self, other: &Self) -> bool {
        self.msgs == other.msgs
    }
}

impl Eq for Outbox {}

impl Outbox {
    /// An empty outbox (the engine preallocates these; protocols normally
    /// never construct one).
    #[must_use]
    pub fn new() -> Self {
        Outbox::default()
    }

    /// Queues a message to a single neighbor.
    pub fn unicast(&mut self, to: VertexId, payload: Bytes) {
        self.msgs.push(Outgoing::unicast(to, payload));
    }

    /// Queues one copy of `payload` to each listed neighbor (multicast).
    ///
    /// The payload is encoded once and shared by all copies; unlike the
    /// rest of the send surface this allocates for the target list, which
    /// the engine drops when the outbox is cleared next round.
    pub fn multicast(&mut self, to: Vec<VertexId>, payload: Bytes) {
        self.msgs.push(Outgoing::multicast(to, payload));
    }

    /// Queues a copy of `payload` along every incident edge.
    ///
    /// The payload is encoded once; delivery hands each recipient a
    /// reference-counted view of the same bytes (zero-copy broadcast).
    pub fn broadcast(&mut self, payload: Bytes) {
        self.msgs.push(Outgoing::broadcast(payload));
    }

    /// Queues an already-addressed message.
    pub fn send(&mut self, msg: Outgoing) {
        self.msgs.push(msg);
    }

    /// Messages queued so far this round.
    #[must_use]
    pub fn len(&self) -> usize {
        self.msgs.len()
    }

    /// `true` when nothing is queued.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.msgs.is_empty()
    }

    /// The queued messages, in send order.
    #[must_use]
    pub fn messages(&self) -> &[Outgoing] {
        &self.msgs
    }

    /// Retained capacity is capped at this multiple of the rolling
    /// high-water mark (with a floor of [`Outbox::RETAIN_FLOOR`] entries,
    /// so tiny outboxes never thrash).
    pub const RETAIN_FACTOR: usize = 4;

    /// Minimum high-water mark used for the retention cap.
    pub const RETAIN_FLOOR: usize = 8;

    /// Drops all queued messages (the engine does this before each
    /// compute phase) and decays over-retained capacity.
    pub(crate) fn clear(&mut self) {
        clear_with_decay(&mut self.msgs, &mut self.high_water);
    }

    /// Currently retained buffer capacity, in messages (for tests and
    /// capacity diagnostics).
    #[must_use]
    pub fn retained_capacity(&self) -> usize {
        self.msgs.capacity()
    }
}

/// Shared retained-capacity policy for per-round recycled buffers
/// (outboxes, router buckets): decay the rolling high-water mark by a
/// quarter — but never below the round being discarded, so bursts are
/// remembered, then forgotten geometrically — clear the buffer, and
/// shrink capacity that sits above [`Outbox::RETAIN_FACTOR`] times the
/// mark. Constant-volume rounds never shrink (doubling growth stays
/// under the factor), preserving the steady-state zero-allocation
/// invariant.
pub(crate) fn clear_with_decay<T>(buf: &mut Vec<T>, high_water: &mut usize) {
    *high_water = (*high_water - *high_water / 4).max(buf.len());
    buf.clear();
    let cap = Outbox::RETAIN_FACTOR * (*high_water).max(Outbox::RETAIN_FLOOR);
    if buf.capacity() > cap {
        buf.shrink_to(cap);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_fields() {
        let u = Outgoing::unicast(3, Bytes::from_static(b"ab"));
        assert_eq!(u.to, Recipient::Neighbor(3));
        assert_eq!(u.payload.len(), 2);
        let b = Outgoing::broadcast(Bytes::new());
        assert_eq!(b.to, Recipient::AllNeighbors);
        assert!(b.payload.is_empty());
    }

    #[test]
    fn outbox_queues_in_send_order() {
        let mut out = Outbox::new();
        assert!(out.is_empty());
        out.unicast(2, Bytes::from_static(b"a"));
        out.broadcast(Bytes::from_static(b"b"));
        out.multicast(vec![4, 1], Bytes::from_static(b"c"));
        out.send(Outgoing::unicast(1, Bytes::new()));
        assert_eq!(out.len(), 4);
        assert_eq!(out.messages()[0].to, Recipient::Neighbor(2));
        assert_eq!(out.messages()[1].to, Recipient::AllNeighbors);
        assert_eq!(out.messages()[2].to, Recipient::Neighbors(vec![4, 1]));
        out.clear();
        assert!(out.is_empty());
    }

    #[test]
    fn multicast_constructor_sets_fields() {
        let m = Outgoing::multicast(vec![3, 5], Bytes::from_static(b"zz"));
        assert_eq!(m.to, Recipient::Neighbors(vec![3, 5]));
        assert_eq!(m.payload.len(), 2);
    }

    #[test]
    fn bursty_capacity_decays_toward_the_rolling_high_water_mark() {
        let mut out = Outbox::new();
        for _ in 0..1024 {
            out.broadcast(Bytes::new());
        }
        out.clear();
        // The burst is still remembered right after it happened.
        assert!(out.retained_capacity() >= 512, "burst capacity kept hot");
        // Dozens of small rounds later, the mark — and with it the
        // retained capacity — has decayed to the steady volume's scale.
        for _ in 0..64 {
            out.broadcast(Bytes::new());
            out.clear();
        }
        assert!(
            out.retained_capacity() <= Outbox::RETAIN_FACTOR * Outbox::RETAIN_FLOOR,
            "capacity {} still pinned after decay",
            out.retained_capacity()
        );
        // Steady volume never shrinks (no realloc churn): the mark equals
        // the round size, and doubling growth stays under the cap.
        let cap = out.retained_capacity();
        for _ in 0..32 {
            out.broadcast(Bytes::new());
            out.clear();
            assert_eq!(out.retained_capacity(), cap);
        }
    }

    #[test]
    fn equality_ignores_capacity_bookkeeping() {
        let mut bursty = Outbox::new();
        for _ in 0..100 {
            bursty.unicast(0, Bytes::new());
        }
        bursty.clear();
        // Same (empty) message queue, different high-water history.
        assert_eq!(bursty, Outbox::new());
        bursty.unicast(1, Bytes::from_static(b"a"));
        let mut fresh = Outbox::new();
        fresh.unicast(1, Bytes::from_static(b"a"));
        assert_eq!(bursty, fresh);
    }
}

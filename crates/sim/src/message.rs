//! Message types exchanged through the simulator.

use bytes::Bytes;
use netdecomp_graph::VertexId;

/// Addressing of an outgoing message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Recipient {
    /// Send to one specific neighbor.
    Neighbor(VertexId),
    /// Send a copy along every incident edge.
    AllNeighbors,
}

/// A message handed to the engine for delivery next round.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Outgoing {
    /// Who receives the message.
    pub to: Recipient,
    /// Encoded payload; its length is what CONGEST accounting measures.
    pub payload: Bytes,
}

impl Outgoing {
    /// Message to a single neighbor.
    #[must_use]
    pub fn unicast(to: VertexId, payload: Bytes) -> Self {
        Outgoing {
            to: Recipient::Neighbor(to),
            payload,
        }
    }

    /// Message copied along all incident edges.
    #[must_use]
    pub fn broadcast(payload: Bytes) -> Self {
        Outgoing {
            to: Recipient::AllNeighbors,
            payload,
        }
    }
}

/// A message as delivered to a node at the start of a round.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Incoming {
    /// The neighbor that sent it (previous round).
    pub from: VertexId,
    /// Encoded payload.
    pub payload: Bytes,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_fields() {
        let u = Outgoing::unicast(3, Bytes::from_static(b"ab"));
        assert_eq!(u.to, Recipient::Neighbor(3));
        assert_eq!(u.payload.len(), 2);
        let b = Outgoing::broadcast(Bytes::new());
        assert_eq!(b.to, Recipient::AllNeighbors);
        assert!(b.payload.is_empty());
    }
}

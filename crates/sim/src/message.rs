//! Message types exchanged through the simulator.

use bytes::Bytes;
use netdecomp_graph::VertexId;

/// Addressing of an outgoing message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Recipient {
    /// Send to one specific neighbor.
    Neighbor(VertexId),
    /// Send a copy to each listed neighbor, in list order (multicast).
    ///
    /// Every target must be a neighbor of the sender; a repeated target
    /// receives — and is CONGEST-charged for — one copy per occurrence,
    /// exactly as the same number of unicasts would be.
    Neighbors(Vec<VertexId>),
    /// Send a copy along every incident edge.
    AllNeighbors,
}

/// A message handed to the engine for delivery next round.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Outgoing {
    /// Who receives the message.
    pub to: Recipient,
    /// Encoded payload; its length is what CONGEST accounting measures.
    pub payload: Bytes,
}

impl Outgoing {
    /// Message to a single neighbor.
    #[must_use]
    pub fn unicast(to: VertexId, payload: Bytes) -> Self {
        Outgoing {
            to: Recipient::Neighbor(to),
            payload,
        }
    }

    /// Message copied to each listed neighbor (multicast). The payload is
    /// shared by reference count; only the target list is owned.
    #[must_use]
    pub fn multicast(to: Vec<VertexId>, payload: Bytes) -> Self {
        Outgoing {
            to: Recipient::Neighbors(to),
            payload,
        }
    }

    /// Message copied along all incident edges.
    #[must_use]
    pub fn broadcast(payload: Bytes) -> Self {
        Outgoing {
            to: Recipient::AllNeighbors,
            payload,
        }
    }
}

/// A message as delivered to a node at the start of a round.
///
/// This is the *owned* form: the engine's inboxes store compact
/// [`InboxSlot`]s resolved through a per-shard [`PayloadSlab`] instead
/// (see [`Inbox`]), so `Incoming` appears only where an owned copy is
/// genuinely wanted — the sequential reference merge `Determinism::Verify`
/// cross-checks against, and callers of [`IncomingRef::to_incoming`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Incoming {
    /// The neighbor that sent it (previous round).
    pub from: VertexId,
    /// Encoded payload.
    pub payload: Bytes,
}

/// Index of a payload registered in a shard's [`PayloadSlab`] this round.
pub type PayloadId = u32;

/// One delivered copy, in the engine's compact inbox representation:
/// eight bytes, no payload handle. The payload lives once per unique
/// `(sender, message)` in the owning shard's [`PayloadSlab`]; scattering a
/// slot is a plain write with zero reference-count traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub(crate) struct InboxSlot {
    /// Global sender vertex id.
    pub(crate) from: u32,
    /// The payload's slab index.
    pub(crate) payload: PayloadId,
}

/// A shard's per-round payload table: each unique `(sender, message)`
/// payload delivered to the shard is registered here exactly once, and
/// every [`InboxSlot`] copy refers to it by [`PayloadId`].
///
/// **Slab ownership rule:** the slab holds *read-only views* of sender
/// payloads — a reference-counted handle to the sender's outbox encoding
/// under the in-memory backends, a zero-copy slice of the decoded frame
/// under the framed ones. Senders never mutate a payload after shipping
/// it (outboxes are cleared, not edited, and frame buffers are reclaimed
/// only once unreferenced), so a view stays valid for the round its
/// recipients read it.
///
/// The table is recycled in place: [`PayloadSlab::reset`] drops last
/// round's handles and keeps the capacity (bounded by the same decaying
/// high-water policy as [`Outbox`]), so steady-state rounds register
/// without allocating.
#[derive(Debug, Default)]
pub struct PayloadSlab {
    payloads: Vec<Bytes>,
    /// Rolling high-water mark of per-round registration counts.
    high_water: usize,
}

impl PayloadSlab {
    /// Drops last round's payload handles, keeping (bounded) capacity.
    pub(crate) fn reset(&mut self) {
        clear_with_decay(&mut self.payloads, &mut self.high_water);
    }

    /// Registers one payload and returns its id (the slot scatter writes).
    pub(crate) fn register(&mut self, payload: Bytes) -> PayloadId {
        let id = self.payloads.len() as PayloadId;
        self.payloads.push(payload);
        id
    }

    /// Payloads registered so far this round.
    pub(crate) fn len(&self) -> usize {
        self.payloads.len()
    }

    /// The payload registered under `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not returned by this round's registrations.
    #[must_use]
    pub fn resolve(&self, id: PayloadId) -> &Bytes {
        &self.payloads[id as usize]
    }
}

/// The messages delivered to one node this round: a view over the owning
/// shard's compact slot range, resolved through its [`PayloadSlab`].
///
/// Iteration yields [`IncomingRef`]s in delivery order (sender id, then
/// send order, then target order). A broadcast's recipients all resolve
/// to the *same* slab entry — reading is zero-copy and touches no
/// reference counts; call [`IncomingRef::to_incoming`] for an owned
/// [`Incoming`] when one is needed.
#[derive(Debug, Clone, Copy)]
pub struct Inbox<'a> {
    slots: &'a [InboxSlot],
    slab: &'a PayloadSlab,
}

impl<'a> Inbox<'a> {
    /// Builds the view (engine-internal; protocols only consume it).
    pub(crate) fn new(slots: &'a [InboxSlot], slab: &'a PayloadSlab) -> Self {
        Inbox { slots, slab }
    }

    /// Number of messages delivered this round.
    #[must_use]
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// `true` when nothing was delivered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// The `i`-th delivered message, in delivery order.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    #[must_use]
    pub fn get(&self, i: usize) -> IncomingRef<'a> {
        let slot = self.slots[i];
        IncomingRef {
            from: slot.from,
            payload: self.slab.resolve(slot.payload),
        }
    }

    /// Iterates the delivered messages in delivery order.
    pub fn iter(&self) -> impl ExactSizeIterator<Item = IncomingRef<'a>> + '_ {
        let slab = self.slab;
        self.slots.iter().map(move |slot| IncomingRef {
            from: slot.from,
            payload: slab.resolve(slot.payload),
        })
    }

    /// Materializes the view as owned [`Incoming`] messages (one payload
    /// handle clone per copy — intended for tests and cold paths, not the
    /// hot read path).
    #[must_use]
    pub fn to_vec(&self) -> Vec<Incoming> {
        self.iter().map(|m| m.to_incoming()).collect()
    }
}

/// Inbox views compare equal to the owned reference representation when
/// every message matches in order, sender, and payload bytes (used by
/// `Determinism::Verify` to cross-check sharded delivery against the
/// sequential merge).
impl PartialEq<[Incoming]> for Inbox<'_> {
    fn eq(&self, other: &[Incoming]) -> bool {
        self.len() == other.len()
            && self
                .iter()
                .zip(other)
                .all(|(a, b)| a.from() == b.from && *a.payload() == b.payload)
    }
}

/// One delivered message, borrowed from the shard's slot table and
/// payload slab — the [`Incoming`]-compatible accessor the compact
/// representation is read through.
#[derive(Debug, Clone, Copy)]
pub struct IncomingRef<'a> {
    from: u32,
    payload: &'a Bytes,
}

impl<'a> IncomingRef<'a> {
    /// The neighbor that sent the message (previous round).
    #[must_use]
    pub fn from(&self) -> VertexId {
        self.from as VertexId
    }

    /// The encoded payload (a borrowed view; clone it for an owned
    /// reference-counted handle).
    #[must_use]
    pub fn payload(&self) -> &'a Bytes {
        self.payload
    }

    /// An owned [`Incoming`] (clones the payload handle — one refcount
    /// bump, no byte copy).
    #[must_use]
    pub fn to_incoming(&self) -> Incoming {
        Incoming {
            from: self.from(),
            payload: self.payload.clone(),
        }
    }
}

/// A node's per-round send buffer.
///
/// The engine hands every node a preallocated `Outbox` (one per vertex,
/// reused across rounds), so the compute phase allocates nothing in steady
/// state and can run over all nodes in parallel — each node writes only
/// its own slot.
///
/// Retained capacity is bounded: the buffer tracks a rolling high-water
/// mark of recent round sizes (decaying by a quarter per round toward the
/// current size), and a [`Outbox::clear`] that finds the capacity above
/// [`Outbox::RETAIN_FACTOR`] times that mark shrinks it back down. A
/// single bursty round therefore cannot pin a burst-sized buffer forever,
/// while constant-volume workloads never reallocate (capacity from
/// doubling growth stays under the factor), preserving the steady-state
/// zero-allocation invariant.
#[derive(Debug, Clone, Default)]
pub struct Outbox {
    msgs: Vec<Outgoing>,
    /// Rolling high-water mark of per-round message counts.
    high_water: usize,
}

/// Equality is over queued messages only; the capacity bookkeeping is
/// not observable behavior (`Determinism::Verify` compares live outboxes
/// against freshly allocated reference ones).
impl PartialEq for Outbox {
    fn eq(&self, other: &Self) -> bool {
        self.msgs == other.msgs
    }
}

impl Eq for Outbox {}

impl Outbox {
    /// An empty outbox (the engine preallocates these; protocols normally
    /// never construct one).
    #[must_use]
    pub fn new() -> Self {
        Outbox::default()
    }

    /// Queues a message to a single neighbor.
    pub fn unicast(&mut self, to: VertexId, payload: Bytes) {
        self.msgs.push(Outgoing::unicast(to, payload));
    }

    /// Queues one copy of `payload` to each listed neighbor (multicast).
    ///
    /// The payload is encoded once and shared by all copies; unlike the
    /// rest of the send surface this allocates for the target list, which
    /// the engine drops when the outbox is cleared next round.
    pub fn multicast(&mut self, to: Vec<VertexId>, payload: Bytes) {
        self.msgs.push(Outgoing::multicast(to, payload));
    }

    /// Queues a copy of `payload` along every incident edge.
    ///
    /// The payload is encoded once; delivery hands each recipient a
    /// reference-counted view of the same bytes (zero-copy broadcast).
    pub fn broadcast(&mut self, payload: Bytes) {
        self.msgs.push(Outgoing::broadcast(payload));
    }

    /// Queues an already-addressed message.
    pub fn send(&mut self, msg: Outgoing) {
        self.msgs.push(msg);
    }

    /// Messages queued so far this round.
    #[must_use]
    pub fn len(&self) -> usize {
        self.msgs.len()
    }

    /// `true` when nothing is queued.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.msgs.is_empty()
    }

    /// The queued messages, in send order.
    #[must_use]
    pub fn messages(&self) -> &[Outgoing] {
        &self.msgs
    }

    /// Retained capacity is capped at this multiple of the rolling
    /// high-water mark (with a floor of [`Outbox::RETAIN_FLOOR`] entries,
    /// so tiny outboxes never thrash).
    pub const RETAIN_FACTOR: usize = 4;

    /// Minimum high-water mark used for the retention cap.
    pub const RETAIN_FLOOR: usize = 8;

    /// Drops all queued messages (the engine does this before each
    /// compute phase) and decays over-retained capacity.
    pub(crate) fn clear(&mut self) {
        clear_with_decay(&mut self.msgs, &mut self.high_water);
    }

    /// Currently retained buffer capacity, in messages (for tests and
    /// capacity diagnostics).
    #[must_use]
    pub fn retained_capacity(&self) -> usize {
        self.msgs.capacity()
    }
}

/// Shared retained-capacity policy for per-round recycled buffers
/// (outboxes, router buckets): decay the rolling high-water mark by a
/// quarter — but never below the round being discarded, so bursts are
/// remembered, then forgotten geometrically — clear the buffer, and
/// shrink capacity that sits above [`Outbox::RETAIN_FACTOR`] times the
/// mark. Constant-volume rounds never shrink (doubling growth stays
/// under the factor), preserving the steady-state zero-allocation
/// invariant.
pub(crate) fn clear_with_decay<T>(buf: &mut Vec<T>, high_water: &mut usize) {
    *high_water = (*high_water - *high_water / 4).max(buf.len());
    buf.clear();
    let cap = Outbox::RETAIN_FACTOR * (*high_water).max(Outbox::RETAIN_FLOOR);
    if buf.capacity() > cap {
        buf.shrink_to(cap);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_fields() {
        let u = Outgoing::unicast(3, Bytes::from_static(b"ab"));
        assert_eq!(u.to, Recipient::Neighbor(3));
        assert_eq!(u.payload.len(), 2);
        let b = Outgoing::broadcast(Bytes::new());
        assert_eq!(b.to, Recipient::AllNeighbors);
        assert!(b.payload.is_empty());
    }

    #[test]
    fn outbox_queues_in_send_order() {
        let mut out = Outbox::new();
        assert!(out.is_empty());
        out.unicast(2, Bytes::from_static(b"a"));
        out.broadcast(Bytes::from_static(b"b"));
        out.multicast(vec![4, 1], Bytes::from_static(b"c"));
        out.send(Outgoing::unicast(1, Bytes::new()));
        assert_eq!(out.len(), 4);
        assert_eq!(out.messages()[0].to, Recipient::Neighbor(2));
        assert_eq!(out.messages()[1].to, Recipient::AllNeighbors);
        assert_eq!(out.messages()[2].to, Recipient::Neighbors(vec![4, 1]));
        out.clear();
        assert!(out.is_empty());
    }

    #[test]
    fn multicast_constructor_sets_fields() {
        let m = Outgoing::multicast(vec![3, 5], Bytes::from_static(b"zz"));
        assert_eq!(m.to, Recipient::Neighbors(vec![3, 5]));
        assert_eq!(m.payload.len(), 2);
    }

    #[test]
    fn bursty_capacity_decays_toward_the_rolling_high_water_mark() {
        let mut out = Outbox::new();
        for _ in 0..1024 {
            out.broadcast(Bytes::new());
        }
        out.clear();
        // The burst is still remembered right after it happened.
        assert!(out.retained_capacity() >= 512, "burst capacity kept hot");
        // Dozens of small rounds later, the mark — and with it the
        // retained capacity — has decayed to the steady volume's scale.
        for _ in 0..64 {
            out.broadcast(Bytes::new());
            out.clear();
        }
        assert!(
            out.retained_capacity() <= Outbox::RETAIN_FACTOR * Outbox::RETAIN_FLOOR,
            "capacity {} still pinned after decay",
            out.retained_capacity()
        );
        // Steady volume never shrinks (no realloc churn): the mark equals
        // the round size, and doubling growth stays under the cap.
        let cap = out.retained_capacity();
        for _ in 0..32 {
            out.broadcast(Bytes::new());
            out.clear();
            assert_eq!(out.retained_capacity(), cap);
        }
    }

    #[test]
    fn inbox_view_resolves_slots_through_the_slab() {
        let mut slab = PayloadSlab::default();
        let shared = slab.register(Bytes::from_static(b"broadcast"));
        let solo = slab.register(Bytes::from_static(b"unicast"));
        let slots = [
            InboxSlot {
                from: 3,
                payload: shared,
            },
            InboxSlot {
                from: 3,
                payload: solo,
            },
            InboxSlot {
                from: 9,
                payload: shared,
            },
        ];
        let inbox = Inbox::new(&slots, &slab);
        assert_eq!(inbox.len(), 3);
        assert!(!inbox.is_empty());
        let collected: Vec<_> = inbox
            .iter()
            .map(|m| (m.from(), m.payload().clone()))
            .collect();
        assert_eq!(collected[0], (3, Bytes::from_static(b"broadcast")));
        assert_eq!(collected[1], (3, Bytes::from_static(b"unicast")));
        assert_eq!(collected[2], (9, Bytes::from_static(b"broadcast")));
        assert_eq!(inbox.get(2).from(), 9);
        // The owned materialization and the reference comparison agree.
        let owned = inbox.to_vec();
        assert_eq!(owned[1].payload.as_slice(), b"unicast");
        assert!(inbox == *owned.as_slice());
        let mut reordered = owned.clone();
        reordered.swap(0, 2);
        assert!(inbox != *reordered.as_slice(), "order must matter");
    }

    #[test]
    fn slab_recycles_in_place_and_decays_after_a_burst() {
        let mut slab = PayloadSlab::default();
        for _ in 0..1024 {
            slab.register(Bytes::new());
        }
        slab.reset();
        assert_eq!(slab.len(), 0);
        // The burst is remembered right after it happened, then decays to
        // the steady volume's scale (same policy as Outbox).
        assert!(slab.payloads.capacity() >= 512);
        for _ in 0..64 {
            slab.register(Bytes::new());
            slab.reset();
        }
        assert!(
            slab.payloads.capacity() <= Outbox::RETAIN_FACTOR * Outbox::RETAIN_FLOOR,
            "slab capacity {} still pinned after decay",
            slab.payloads.capacity()
        );
        // Steady volume registers without reallocating.
        let cap = slab.payloads.capacity();
        for round in 0..32 {
            let id = slab.register(Bytes::from_static(b"p"));
            assert_eq!(id, 0, "ids restart each round (round {round})");
            assert_eq!(slab.resolve(id).as_slice(), b"p");
            slab.reset();
            assert_eq!(slab.payloads.capacity(), cap);
        }
    }

    #[test]
    fn equality_ignores_capacity_bookkeeping() {
        let mut bursty = Outbox::new();
        for _ in 0..100 {
            bursty.unicast(0, Bytes::new());
        }
        bursty.clear();
        // Same (empty) message queue, different high-water history.
        assert_eq!(bursty, Outbox::new());
        bursty.unicast(1, Bytes::from_static(b"a"));
        let mut fresh = Outbox::new();
        fresh.unicast(1, Bytes::from_static(b"a"));
        assert_eq!(bursty, fresh);
    }
}

//! Recipient-range sharding of the delivery phase, with sender-side
//! message routing.
//!
//! A [`ShardPlan`] partitions the vertex set into contiguous ranges. Each
//! shard owns, exclusively:
//!
//! - the **inbox slice** of its vertices (a per-shard CSR: local offsets
//!   plus a flat slot table of compact `{from, payload id}` pairs) and
//!   the **payload slab** those slots resolve through, written only by
//!   the owning shard during placement and read only by the owning shard
//!   during the next compute phase;
//! - the **per-recipient count/cursor table** backing the bucket sort;
//! - the **per-edge CONGEST counters** of the directed-edge slots leaving
//!   its vertices. Edge accounting is *sender-owned*: the slot of the
//!   directed edge `from -> to` lives in `from`'s CSR row, and because a
//!   shard is a contiguous vertex range its slots form one contiguous
//!   block of `0..2m` — sharding needs no counter merge at all;
//! - the **[`Router`]** of its vertex range: outgoing message references
//!   bucketed by destination shard, written by the owning shard during
//!   the account pass and read by every destination shard during
//!   placement (after a phase barrier).
//!
//! # Who writes which bucket, and when
//!
//! The routing index is built and consumed strictly phase-by-phase:
//!
//! 1. **Account (sender side).** Shard `k` — and only shard `k` — writes
//!    `routers[k]`: while validating and CONGEST-charging each of its own
//!    outgoing messages, it appends one [`RouteRef`] per destination shard
//!    the message touches. Unicasts and multicast targets are resolved to
//!    their (sender-owned) directed-edge slot and routed through a flat
//!    O(1) vertex→shard table; broadcasts reuse the [`RouteIndex`]'s
//!    precomputed per-vertex adjacency segmentation, one ref per
//!    destination-shard segment rather than one per copy.
//! 2. **Place (recipient side).** After the barrier, shard `j` reads
//!    bucket `j` of *every* router — `routers[k].bucket(j)` for all `k` —
//!    and nothing else. It never touches a bucket addressed to another
//!    shard, so buckets are single-writer, then frozen, then
//!    multi-reader; no lock is ever contended.
//!
//! Because shard `k`'s senders are scanned in local id order, bucket
//! entries are ordered by (sender id, send order, target order), and
//! concatenating buckets for `j` across `k = 0, 1, …` preserves global
//! sender order — per-recipient delivery order stays bit-identical to the
//! sequential single-buffer reference merge that `Determinism::Verify`
//! cross-checks.
//!
//! # Delivery complexity
//!
//! With `S` shards, `M` queued messages, and `C` delivered copies
//! (`C >= M`; a broadcast counts one copy per incident edge), the place
//! phase used to rescan every outbox from every shard. Sender-side
//! routing removes the cross-shard rescan entirely:
//!
//! | pass                      | rescan (PR 2)            | routed (now)      |
//! |---------------------------|--------------------------|-------------------|
//! | route (fused in account)  | —                        | `O(M + segments)` |
//! | count                     | `O(S×M)` headers + `O(C)`| `O(refs) + O(C)`  |
//! | scatter                   | `O(S×M)` headers + `O(C)`| `O(refs) + O(C)`  |
//!
//! where `refs <= M + C` in total across all buckets (a unicast or
//! multicast target is one ref; a broadcast contributes at most
//! `min(degree, S)` segment refs). Header work no longer carries a
//! shard-count multiplier — the gating property for running shards on
//! separate processes, where a cross-shard rescan would become a
//! cross-process one.
//!
//! The remaining `O(C)` scatter term is a *cache-linear 8-byte write* per
//! copy, not a payload-handle operation: the inbox stores compact
//! `{from: u32, payload: PayloadId}` slots, and each unique
//! `(sender, message)` payload is registered **once per shard per round**
//! in the shard's [`crate::PayloadSlab`]. Payload-handle traffic
//! (reference-count bumps under the in-memory backends, zero-copy frame
//! slices under the framed ones) is therefore proportional to *messages*,
//! never to *copies* — a broadcast to ten thousand neighbors costs one
//! slab registration and ten thousand plain slot writes.
//!
//! # The slab ownership rule
//!
//! A shard's slab holds **read-only views of sender payloads**; senders
//! never mutate a shipped payload. Concretely: under the in-memory
//! backends a slab entry is a reference-counted handle to the sender's
//! own outbox encoding, which the sender only ever *clears* (next
//! round's compute) — clearing drops the sender's handle but cannot
//! touch the bytes while recipients still hold theirs. Under the framed
//! backends a slab entry is a zero-copy slice of the decoded frame, and
//! the sender-side recycle ring reclaims a frame buffer only once every
//! such view has been dropped ([`bytes::Bytes::try_into_mut`] refuses
//! shared buffers). Slab entries live exactly one round: registered by
//! placement, read by the next compute phase, dropped wholesale by the
//! following placement's [`crate::PayloadSlab::reset`].
//!
//! # The frame seam
//!
//! A per-`(sender, destination)` bucket is exactly the batch a transport
//! ships, and under the framed backends it is shipped: after account,
//! each shard's [`crate::frame::FrameEncoder`] serializes every bucket —
//! refs plus the payload bytes they reference, copied out of the shard's
//! *own* outbox chunk — into one self-delimiting, checksummed frame per
//! destination shard, and [`DeliveryShard::place_frames`] consumes
//! decoded frames instead of reading other shards' outboxes or routers.
//! The two placement paths walk identical refs in identical (sender
//! shard, bucket) order, so delivery order — and therefore every result —
//! is bit-identical across backends; `Determinism::Verify` cross-checks
//! the framed paths against the same sequential reference merge.
//!
//! All routing buffers (buckets, counters, the inbox, frame buffers and
//! gather/decode tables under the loopback transport) are recycled in
//! place across rounds, so steady-state stepping stays allocation-free
//! (pinned by `crates/sim/tests/steady_state_alloc.rs`; the channel
//! transport's mailboxes allocate per send, bounded per round by the
//! shard topology rather than traffic — pinned there too).

use std::sync::RwLock;

use netdecomp_graph::{Graph, VertexId};

use crate::error::FrameError;
use crate::frame::{Frame, Transport};
use crate::message::{InboxSlot, PayloadSlab};
use crate::{
    CongestLimit, DeliveryWork, Inbox, Outbox, PayloadId, Recipient, RoundStats, SimError,
};

/// First directed-edge slot of `v`'s CSR row (`2m` for `v == n`, so the
/// expression is also valid as an exclusive upper bound).
fn slot_start(graph: &Graph, v: usize) -> usize {
    if v < graph.vertex_count() {
        graph.neighbor_slots(v).start
    } else {
        graph.directed_edge_count()
    }
}

/// A partition of the vertex set into contiguous recipient ranges.
///
/// Boundaries are degree-balanced: shard `k` covers
/// `boundaries()[k]..boundaries()[k + 1]`, chosen so every shard carries
/// roughly the same share of `2m + n` (directed-edge slots plus vertices —
/// the per-round delivery work is linear in both). Because adjacency is
/// CSR-sorted, a contiguous vertex range also owns one contiguous range of
/// directed-edge slots, which is what makes per-shard CONGEST counters a
/// plain slice instead of a merge problem.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardPlan {
    /// `count() + 1` non-decreasing vertex ids from `0` to `n`.
    boundaries: Vec<VertexId>,
}

impl ShardPlan {
    /// The trivial plan: one shard covering all of `0..n`.
    #[must_use]
    pub fn single(n: usize) -> Self {
        ShardPlan {
            boundaries: vec![0, n],
        }
    }

    /// A degree-balanced plan with (at most) `shards` shards.
    ///
    /// The requested count is clamped to `1..=max(n, 1)`; a shard may still
    /// end up empty on extremely skewed degree distributions (e.g. a star's
    /// center outweighing everything else), which the engine handles.
    #[must_use]
    pub fn degree_balanced(graph: &Graph, shards: usize) -> Self {
        let n = graph.vertex_count();
        let s = shards.clamp(1, n.max(1));
        let weight = |v: usize| slot_start(graph, v) + v;
        let total = weight(n);
        let mut boundaries = Vec::with_capacity(s + 1);
        boundaries.push(0);
        for k in 1..s {
            // Smallest v whose cumulative weight reaches the k-th share.
            let target = k * total / s;
            let (mut lo, mut hi) = (boundaries[k - 1], n);
            while lo < hi {
                let mid = lo + (hi - lo) / 2;
                if weight(mid) < target {
                    lo = mid + 1;
                } else {
                    hi = mid;
                }
            }
            boundaries.push(lo);
        }
        boundaries.push(n);
        ShardPlan { boundaries }
    }

    /// Number of shards.
    #[must_use]
    pub fn count(&self) -> usize {
        self.boundaries.len() - 1
    }

    /// The non-decreasing shard boundaries: `count() + 1` vertex ids from
    /// `0` to `n`.
    #[must_use]
    pub fn boundaries(&self) -> &[VertexId] {
        &self.boundaries
    }

    /// The contiguous vertex range owned by shard `k`.
    ///
    /// # Panics
    ///
    /// Panics if `k >= count()`.
    #[must_use]
    pub fn range(&self, k: usize) -> std::ops::Range<VertexId> {
        self.boundaries[k]..self.boundaries[k + 1]
    }

    /// The shard owning vertex `v`.
    ///
    /// This is a binary search over the boundaries; hot paths use the
    /// flat O(1) table a [`RouteIndex`] precomputes instead.
    ///
    /// # Panics
    ///
    /// Panics if `v` is at least the plan's vertex count.
    #[must_use]
    pub fn shard_of(&self, v: VertexId) -> usize {
        assert!(v < *self.boundaries.last().expect("non-empty boundaries"));
        // Last boundary <= v (empty shards share a boundary; the owner is
        // the unique shard whose half-open range contains v).
        self.boundaries.partition_point(|&b| b <= v) - 1
    }
}

/// A contiguous run of one vertex's adjacency whose targets all live in
/// the same destination shard.
///
/// `Graph::slot_target` of each slot in [`RouteSegment::slots`] is a
/// recipient, in adjacency order. Concatenating a vertex's segments in
/// order reproduces its `Graph::neighbor_slots` range exactly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RouteSegment {
    /// Destination shard owning every target of the run.
    pub shard: usize,
    /// The run's directed-edge slot range (within the sender's CSR row).
    pub slots: std::ops::Range<usize>,
}

/// Compact stored form of a [`RouteSegment`].
#[derive(Debug, Clone, Copy)]
struct Seg {
    shard: u32,
    lo: u32,
    hi: u32,
}

/// Precomputed routing tables for one `(graph, plan)` pair.
///
/// Built once per [`ShardPlan`] (not per round), this answers the two
/// questions the account pass asks of every outgoing message in O(1) per
/// message (unicast / multicast target) or O(segments) per broadcast:
///
/// - **Which shard owns vertex `v`?** A flat `n`-entry table, replacing a
///   per-message binary search over the plan boundaries.
/// - **How does `v`'s adjacency split by destination shard?** Adjacency is
///   CSR-sorted by target id and shard ranges are contiguous, so each
///   vertex's slot range splits into at most `min(degree, shards)`
///   contiguous [`RouteSegment`]s with strictly increasing shard — found
///   once here, not rediscovered per round per scan.
///
/// Slot positions are stored as `u32`: the flat per-slot counter arrays
/// bound practical graphs far below 4 billion directed edges.
#[derive(Debug, Clone)]
pub struct RouteIndex {
    /// Number of shards in the plan this index was built from.
    shards: usize,
    /// Owning shard of each vertex.
    shard_of: Vec<u32>,
    /// CSR offsets: vertex `v`'s segments are
    /// `segs[seg_offsets[v]..seg_offsets[v + 1]]`.
    seg_offsets: Vec<usize>,
    /// All vertices' adjacency segments, concatenated in vertex order.
    segs: Vec<Seg>,
}

impl RouteIndex {
    /// Builds the routing tables for `graph` partitioned by `plan`.
    ///
    /// Runs in `O(n + m)` (`O(n)` for a single-shard plan, whose
    /// segmentation is each vertex's whole row).
    ///
    /// # Panics
    ///
    /// Panics if the plan's vertex count differs from the graph's, or if
    /// the graph exceeds the `u32` slot-position bound (4 billion
    /// directed edges) — misrouting from a silent wrap is never an
    /// acceptable failure mode.
    #[must_use]
    pub fn new(graph: &Graph, plan: &ShardPlan) -> Self {
        let n = graph.vertex_count();
        assert_eq!(
            *plan.boundaries().last().expect("non-empty boundaries"),
            n,
            "plan must cover the graph's vertex set"
        );
        assert!(
            graph.directed_edge_count() <= u32::MAX as usize && n <= u32::MAX as usize,
            "graph exceeds the u32 routing bound"
        );
        let mut seg_offsets = Vec::with_capacity(n + 1);
        seg_offsets.push(0);
        let mut segs = Vec::new();
        if plan.count() == 1 {
            // Single shard: every non-empty row is one whole-row segment —
            // no per-neighbor shard scan needed.
            for v in 0..n {
                let slots = graph.neighbor_slots(v);
                if !slots.is_empty() {
                    segs.push(Seg {
                        shard: 0,
                        lo: slots.start as u32,
                        hi: slots.end as u32,
                    });
                }
                seg_offsets.push(segs.len());
            }
            return RouteIndex {
                shards: 1,
                shard_of: vec![0u32; n],
                seg_offsets,
                segs,
            };
        }
        let mut shard_of = vec![0u32; n];
        for k in 0..plan.count() {
            for v in plan.range(k) {
                shard_of[v] = k as u32;
            }
        }
        for v in 0..n {
            let base = graph.neighbor_slots(v).start;
            let nb = graph.neighbors(v);
            let mut i = 0;
            while i < nb.len() {
                let shard = shard_of[nb[i]];
                let mut j = i + 1;
                while j < nb.len() && shard_of[nb[j]] == shard {
                    j += 1;
                }
                segs.push(Seg {
                    shard,
                    lo: (base + i) as u32,
                    hi: (base + j) as u32,
                });
                i = j;
            }
            seg_offsets.push(segs.len());
        }
        RouteIndex {
            shards: plan.count(),
            shard_of,
            seg_offsets,
            segs,
        }
    }

    /// Number of shards in the plan this index was built from.
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.shards
    }

    /// The shard owning vertex `v` (flat table, O(1)).
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[must_use]
    pub fn shard_of(&self, v: VertexId) -> usize {
        self.shard_of[v] as usize
    }

    /// Vertex `v`'s adjacency segments, in adjacency (= ascending shard)
    /// order.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn segments(&self, v: VertexId) -> impl Iterator<Item = RouteSegment> + '_ {
        self.segs[self.seg_offsets[v]..self.seg_offsets[v + 1]]
            .iter()
            .map(|s| RouteSegment {
                shard: s.shard as usize,
                slots: s.lo as usize..s.hi as usize,
            })
    }

    /// Raw segments of `v` (internal, allocation- and conversion-free).
    fn raw_segments(&self, v: VertexId) -> &[Seg] {
        &self.segs[self.seg_offsets[v]..self.seg_offsets[v + 1]]
    }
}

/// One routed message reference: which sender, which outbox position, and
/// the contiguous directed-edge slot range carrying the copies addressed
/// to the destination shard.
///
/// `Graph::slot_target` of each slot in `lo..hi` is a recipient, in
/// delivery order; a unicast or a single multicast target is a singleton
/// range (its resolved edge slot), a broadcast ref covers one precomputed
/// adjacency segment.
#[derive(Debug, Clone, Copy)]
pub(crate) struct RouteRef {
    /// Global sender id.
    pub(crate) from: u32,
    /// Position in the sender's outbox (for the payload lookup).
    pub(crate) msg: u32,
    /// First directed-edge slot of the routed copies.
    pub(crate) lo: u32,
    /// One past the last slot.
    pub(crate) hi: u32,
}

/// Sender-side routing index of one shard: its outgoing message
/// references, bucketed by destination shard.
///
/// Rebuilt every round by the owning shard's account pass (single
/// writer), then read — after the phase barrier — by each destination
/// shard's place pass (multi-reader, each touching only its own bucket).
/// Bucket storage is recycled in place with the same bounded-retention
/// policy as [`Outbox`]: steady-state rounds allocate nothing, and a
/// bursty round cannot pin burst-sized buckets forever.
#[derive(Debug, Default)]
pub(crate) struct Router {
    /// `buckets[j]`: refs for destination shard `j`, in (sender id, send
    /// order, target order) — i.e. final delivery order.
    buckets: Vec<Vec<RouteRef>>,
    /// Per-bucket rolling high-water marks driving capacity decay.
    high_water: Vec<usize>,
    /// `tallies[j]`: running payload-section sizes of bucket `j`,
    /// maintained ref by ref as the account pass routes — this is what
    /// lets the frame encoder size a whole frame without re-walking the
    /// bucket (the tally compare is in-cache here; a rewalk at encode
    /// time costs a pass over the bucket plus a random outbox lookup per
    /// unique payload).
    tallies: Vec<BucketTally>,
}

/// Per-bucket payload-section tally: how many *unique* payloads the
/// bucket's refs name (refs of one message are pushed consecutively, so a
/// consecutive-pair compare is an exact dedup — the same invariant the
/// frame encoder and the placement slab lean on) and their total length.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub(crate) struct BucketTally {
    /// Unique payloads named by the bucket (= frame payload-table rows).
    pub(crate) payload_count: usize,
    /// Total bytes of those payloads (= frame payload-region length).
    pub(crate) region_len: usize,
    /// Last `(from, msg)` pushed, for the consecutive dedup.
    last: Option<(u32, u32)>,
}

impl BucketTally {
    /// Recomputes a finished bucket's tally from scratch — the reference
    /// the incremental bookkeeping is checked against (tests and debug
    /// assertions; the hot path never re-walks).
    pub(crate) fn of(bucket: &[RouteRef], mut len_of: impl FnMut(&RouteRef) -> usize) -> Self {
        let mut tally = BucketTally::default();
        for r in bucket {
            if tally.last != Some((r.from, r.msg)) {
                tally.payload_count += 1;
                tally.region_len += len_of(r);
                tally.last = Some((r.from, r.msg));
            }
        }
        tally
    }
}

impl Router {
    /// Clears all buckets (decaying over-retained capacity), resizing to
    /// `shards` buckets if the plan changed.
    pub(crate) fn reset(&mut self, shards: usize) {
        if self.buckets.len() != shards {
            self.buckets.resize_with(shards, Vec::new);
            self.high_water.resize(shards, 0);
        }
        self.tallies.clear();
        self.tallies.resize(shards, BucketTally::default());
        for (bucket, high_water) in self.buckets.iter_mut().zip(&mut self.high_water) {
            crate::message::clear_with_decay(bucket, high_water);
        }
    }

    /// Appends a ref to the bucket for `dest`; `len` is the payload's
    /// length, folded into the bucket's tally when the ref names a new
    /// `(from, msg)`.
    pub(crate) fn push(&mut self, dest: u32, route: RouteRef, len: usize) {
        let tally = &mut self.tallies[dest as usize];
        if tally.last != Some((route.from, route.msg)) {
            tally.payload_count += 1;
            tally.region_len += len;
            tally.last = Some((route.from, route.msg));
        }
        self.buckets[dest as usize].push(route);
    }

    /// The refs addressed to destination shard `dest`, in delivery order.
    pub(crate) fn bucket(&self, dest: usize) -> &[RouteRef] {
        &self.buckets[dest]
    }

    /// The payload-section tally of bucket `dest`.
    pub(crate) fn tally(&self, dest: usize) -> BucketTally {
        self.tallies[dest]
    }
}

/// Per-shard delivery state: everything one shard touches during a round,
/// so all shards can run every delivery phase concurrently.
///
/// Buffers are sized once (per [`ShardPlan`]) and recycled in place across
/// rounds: the slot table is overwritten 8 bytes at a time by the scatter
/// pass (no payload handles live there — those sit once-per-message in
/// the [`PayloadSlab`], reset wholesale each round), and every table only
/// grows when a round delivers more messages than any round before it.
#[derive(Debug)]
pub(crate) struct DeliveryShard {
    /// First owned vertex.
    start: VertexId,
    /// One past the last owned vertex.
    end: VertexId,
    /// First directed-edge slot of the owned (contiguous) slot range.
    slot_base: usize,
    /// Per-directed-edge bytes this round, indexed by `slot - slot_base`.
    edge_bytes: Vec<usize>,
    /// Locally-indexed slots dirtied this round (sparse reset).
    touched: Vec<usize>,
    /// Per-recipient counts, then scatter cursors (both local-indexed).
    counts: Vec<usize>,
    /// Local CSR offsets into [`DeliveryShard::slots`]: vertex `start + i`
    /// receives `slots[offsets[i]..offsets[i + 1]]`.
    pub(crate) offsets: Vec<usize>,
    /// Messages delivered to this shard's vertices, CSR-packed as compact
    /// `{from, payload id}` slots resolved through
    /// [`DeliveryShard::slab`].
    pub(crate) slots: Vec<InboxSlot>,
    /// This round's unique delivered payloads (one registration per
    /// `(sender, message)` per round — see the module docs' slab
    /// ownership rule).
    pub(crate) slab: PayloadSlab,
    /// This shard's slice of the round's accounting (merged by the engine).
    pub(crate) stats: RoundStats,
    /// Place-phase work counters for the last round (merged by the
    /// engine's [`DeliveryWork`] accessor).
    pub(crate) work: DeliveryWork,
    /// Flight-recorder ring of the last-K rounds' per-phase timings
    /// (disabled — zero-capacity — unless tracing is on; written only
    /// by whichever driver owns this shard's round loop).
    pub(crate) trace: crate::trace::TraceRing,
    /// First error this shard's account pass hit, if any.
    pub(crate) error: Option<SimError>,
    /// Framed backends: per-sender-shard frame slots filled by
    /// [`Transport::collect`] each round (recycled in place).
    gather: Vec<Option<bytes::Bytes>>,
    /// Framed backends: this round's decoded frames, in sender-shard
    /// order (cleared after scatter; recycled in place).
    decoded: Vec<Frame>,
}

impl DeliveryShard {
    pub(crate) fn new(graph: &Graph, start: VertexId, end: VertexId) -> Self {
        let slot_base = slot_start(graph, start);
        let slots = slot_start(graph, end) - slot_base;
        DeliveryShard {
            start,
            end,
            slot_base,
            edge_bytes: vec![0; slots],
            touched: Vec::new(),
            counts: vec![0; end - start],
            offsets: vec![0; end - start + 1],
            slots: Vec::new(),
            slab: PayloadSlab::default(),
            stats: RoundStats::default(),
            work: DeliveryWork::default(),
            trace: crate::trace::TraceRing::from_env(),
            error: None,
            gather: Vec::new(),
            decoded: Vec::new(),
        }
    }

    /// First owned vertex.
    pub(crate) fn start(&self) -> VertexId {
        self.start
    }

    /// Number of owned vertices.
    pub(crate) fn len(&self) -> usize {
        self.end - self.start
    }

    /// Messages delivered to owned vertex `start + local` last round.
    pub(crate) fn incoming(&self, local: usize) -> Inbox<'_> {
        Inbox::new(
            &self.slots[self.offsets[local]..self.offsets[local + 1]],
            &self.slab,
        )
    }

    /// **Checkpoint seam** (save side): serializes the pending inbox —
    /// the deliveries the next compute phase will consume — plus the
    /// sparse per-edge CONGEST counters into `out`. Together with every
    /// node's [`crate::Snapshot`] state this makes a round boundary a
    /// complete, restorable cut: nothing else in the shard survives a
    /// round (counts/offsets/slots/slab are rebuilt by every placement).
    pub(crate) fn save_delivery(&self, out: &mut Vec<u8>) {
        crate::checkpoint::put_u64(out, self.len() as u64);
        for local in 0..self.len() {
            let inbox = self.incoming(local);
            crate::checkpoint::put_u64(out, inbox.len() as u64);
            for m in inbox.iter() {
                crate::checkpoint::put_u64(out, m.from() as u64);
                crate::checkpoint::put_bytes(out, m.payload());
            }
        }
        crate::checkpoint::put_u64(out, self.touched.len() as u64);
        for &local in &self.touched {
            crate::checkpoint::put_u64(out, local as u64);
            crate::checkpoint::put_u64(out, self.edge_bytes[local] as u64);
        }
    }

    /// **Checkpoint seam** (restore side): rebuilds the pending inbox
    /// and CONGEST counters from a [`DeliveryShard::save_delivery`]
    /// section, re-registering each payload in this shard's slab (the
    /// reshard idiom — a cold path, so per-copy registration is fine).
    /// Returns `false` on any malformed input; the shard is then in an
    /// unspecified but safe state and the caller falls back to round 0.
    pub(crate) fn restore_delivery(&mut self, r: &mut crate::checkpoint::ByteReader<'_>) -> bool {
        let Some(vertices) = r.u64() else {
            return false;
        };
        if vertices as usize != self.len() {
            return false;
        }
        self.slots.clear();
        self.slab.reset();
        self.offsets[0] = 0;
        for local in 0..self.len() {
            let Some(count) = r.u64() else {
                return false;
            };
            for _ in 0..count {
                let (Some(from), Some(payload)) = (r.u64(), r.bytes()) else {
                    return false;
                };
                let Ok(from) = u32::try_from(from) else {
                    return false;
                };
                let payload = self.slab.register(bytes::Bytes::from(payload.to_vec()));
                self.slots.push(InboxSlot { from, payload });
            }
            self.offsets[local + 1] = self.slots.len();
        }
        // Sparse-reset whatever charges this (freshly built or reused)
        // shard held, then overlay the checkpointed counters.
        for &local in &self.touched {
            self.edge_bytes[local] = 0;
        }
        self.touched.clear();
        let Some(touched) = r.u64() else {
            return false;
        };
        for _ in 0..touched {
            let (Some(local), Some(bytes)) = (r.u64(), r.u64()) else {
                return false;
            };
            let Ok(local) = usize::try_from(local) else {
                return false;
            };
            if local >= self.edge_bytes.len() {
                return false;
            }
            self.edge_bytes[local] = bytes as usize;
            self.touched.push(local);
        }
        true
    }

    /// **Account phase** (sender side): validates addressing, charges
    /// CONGEST byte counters, *and builds the routing index* for every
    /// message sent *by* this shard's vertices. `outboxes` is the shard's
    /// own outbox chunk; `router` is the shard's own (exclusively owned)
    /// router, whose buckets the destination shards consume during
    /// placement.
    ///
    /// Returns `false` (with [`DeliveryShard::error`] set) on the first
    /// violation, mirroring the abort point of a sequential sender-order
    /// scan.
    pub(crate) fn account(
        &mut self,
        graph: &Graph,
        routes: &RouteIndex,
        limit: CongestLimit,
        round: usize,
        outboxes: &[Outbox],
        router: &mut Router,
    ) -> bool {
        // Sparse reset of last round's counters; also reached on the next
        // round after an aborted one, so partial charges never leak.
        for &local in &self.touched {
            self.edge_bytes[local] = 0;
        }
        self.touched.clear();
        self.stats = RoundStats {
            round,
            ..RoundStats::default()
        };
        self.error = None;
        router.reset(routes.shard_count());
        for (i, out) in outboxes.iter().enumerate() {
            let from = self.start + i;
            for (m, msg) in out.messages().iter().enumerate() {
                let len = msg.payload.len();
                let sent = match &msg.to {
                    Recipient::Neighbor(to) => {
                        self.route_edge(graph, routes, router, limit, round, from, m, *to, len)
                    }
                    Recipient::Neighbors(targets) => targets.iter().try_for_each(|&to| {
                        self.route_edge(graph, routes, router, limit, round, from, m, to, len)
                    }),
                    Recipient::AllNeighbors => graph
                        .neighbor_slots(from)
                        .try_for_each(|slot| {
                            let to = graph.slot_target(slot);
                            self.charge_slot(limit, round, slot, from, to, len)
                        })
                        .map(|()| {
                            // One ref per precomputed destination-shard
                            // segment — O(min(degree, shards)), not
                            // O(degree), routing work per broadcast.
                            for seg in routes.raw_segments(from) {
                                router.push(
                                    seg.shard,
                                    RouteRef {
                                        from: from as u32,
                                        msg: m as u32,
                                        lo: seg.lo,
                                        hi: seg.hi,
                                    },
                                    len,
                                );
                            }
                        }),
                };
                if let Err(e) = sent {
                    self.error = Some(e);
                    return false;
                }
            }
        }
        true
    }

    /// Resolves the (sender-owned) slot of `from -> to`, charges it, and
    /// routes the copy to `to`'s shard.
    #[allow(clippy::too_many_arguments)]
    fn route_edge(
        &mut self,
        graph: &Graph,
        routes: &RouteIndex,
        router: &mut Router,
        limit: CongestLimit,
        round: usize,
        from: VertexId,
        msg: usize,
        to: VertexId,
        len: usize,
    ) -> Result<(), SimError> {
        let slot = graph
            .edge_slot(from, to)
            .ok_or(SimError::NotNeighbor { from, to })?;
        self.charge_slot(limit, round, slot, from, to, len)?;
        router.push(
            routes.shard_of[to],
            RouteRef {
                from: from as u32,
                msg: msg as u32,
                lo: slot as u32,
                hi: slot as u32 + 1,
            },
            len,
        );
        Ok(())
    }

    /// Charges one delivered message against a directed-edge slot.
    fn charge_slot(
        &mut self,
        limit: CongestLimit,
        round: usize,
        slot: usize,
        from: VertexId,
        to: VertexId,
        len: usize,
    ) -> Result<(), SimError> {
        let bytes = &mut self.edge_bytes[slot - self.slot_base];
        if *bytes == 0 {
            self.touched.push(slot - self.slot_base);
        }
        *bytes += len;
        if let CongestLimit::PerEdgeBytes(limit) = limit {
            if *bytes > limit {
                return Err(SimError::CongestViolation {
                    from,
                    to,
                    bytes: *bytes,
                    limit,
                    round,
                });
            }
        }
        self.stats.messages += 1;
        self.stats.bytes += len;
        self.stats.max_edge_bytes = self.stats.max_edge_bytes.max(*bytes);
        Ok(())
    }

    /// **Placement phase** (recipient side): bucket-sorts every message
    /// addressed *to* this shard's vertices into the shard's own inbox
    /// slice — by walking only the route-ref buckets addressed to this
    /// shard (`me`), never scanning another shard's outbox headers.
    ///
    /// `bounds` are the plan boundaries and `chunks` the per-shard outbox
    /// chunks, so chunk `k`'s first sender is `bounds[k]`; chunks and
    /// routers are read-locked one at a time (writers finished at the
    /// phase barrier, so the locks are uncontended — and lock acquisition
    /// is allocation-free, keeping steady-state rounds zero-alloc).
    ///
    /// Buckets are walked in sender-shard order (count pass for the local
    /// CSR offsets, then scatter through cursors), so per-recipient
    /// delivery order is (sender id, send order, target order for
    /// multicasts, adjacency order for broadcasts) — identical to a
    /// global sequential merge.
    pub(crate) fn place(
        &mut self,
        graph: &Graph,
        me: usize,
        bounds: &[VertexId],
        chunks: &[RwLock<Vec<Outbox>>],
        routers: &[RwLock<Router>],
    ) {
        let lo = self.start;
        self.counts.fill(0);
        self.work = DeliveryWork::default();
        for router in routers {
            let router = router.read().expect("no poisoned router");
            for route in router.bucket(me) {
                self.work.refs_scanned += 1;
                for &to in graph.slot_targets(route.lo as usize..route.hi as usize) {
                    self.counts[to - lo] += 1;
                }
            }
        }

        // Local prefix sums; the slot table is recycled in place
        // (steady-state rounds reuse both the buffer and its slots, see
        // the type docs).
        self.offsets[0] = 0;
        for i in 0..self.len() {
            self.offsets[i + 1] = self.offsets[i] + self.counts[i];
        }
        let len = self.len();
        let total = self.offsets[len];
        self.slots.resize(total, InboxSlot::default());
        self.work.inbox_slot_bytes = total * std::mem::size_of::<InboxSlot>();
        self.counts.copy_from_slice(&self.offsets[..len]);

        // Scatter. Dropping last round's payload handles here (not one by
        // one during overwrite) is what frees the scatter loop of all
        // reference-count traffic: each unique (sender, message) payload
        // is registered once — refs for one message are consecutive
        // within a bucket, and sender ranges are disjoint across buckets,
        // so a consecutive-pair check is an exact dedup — and every copy
        // is a plain 8-byte slot write.
        self.slab.reset();
        let mut last: Option<(u32, u32)> = None;
        let mut payload_id: PayloadId = 0;
        for (k, (router, chunk)) in routers.iter().zip(chunks).enumerate() {
            let router = router.read().expect("no poisoned router");
            let outs = chunk.read().expect("no poisoned outbox chunk");
            let base = bounds[k];
            for route in router.bucket(me) {
                if last != Some((route.from, route.msg)) {
                    let payload =
                        &outs[route.from as usize - base].messages()[route.msg as usize].payload;
                    payload_id = self.slab.register(payload.clone());
                    last = Some((route.from, route.msg));
                }
                self.work.copies_delivered += (route.hi - route.lo) as usize;
                for &to in graph.slot_targets(route.lo as usize..route.hi as usize) {
                    self.deposit(to, route.from, payload_id);
                }
            }
        }
        self.work.payload_registrations = self.slab.len();
    }

    /// **Placement phase, framed backends**: like [`DeliveryShard::place`],
    /// but every bucket arrives as an encoded frame through `transport` —
    /// this shard reads *no other shard's memory* (no outbox chunks, no
    /// routers), exactly the information boundary of a process-per-shard
    /// deployment. Frames are collected and decoded in sender-shard
    /// order, so per-recipient delivery order is identical to the
    /// shared-memory path and to the sequential reference merge.
    ///
    /// Every frame is validated before any copy is counted: structure and
    /// checksum by [`Frame::decode`], link addressing against `(k, me)`,
    /// each ref's claimed sender against the sending shard's vertex range
    /// and its own CSR row (`bounds` are the plan boundaries), and every
    /// delivered target against this shard's vertex bounds — a corrupted
    /// or misrouted frame, or one fabricating a sender it does not own,
    /// sets a typed [`SimError::Frame`] on this shard instead of
    /// panicking or misdelivering.
    pub(crate) fn place_frames(
        &mut self,
        graph: &Graph,
        me: usize,
        round: usize,
        transport: &dyn Transport,
        bounds: &[VertexId],
    ) {
        // The decoded-frame scratch is moved out so the count and scatter
        // loops can borrow it alongside `self`'s tables; its capacity is
        // kept across rounds either way.
        let mut decoded = std::mem::take(&mut self.decoded);
        let result = self.place_frames_inner(graph, me, round, transport, bounds, &mut decoded);
        // Dropping the frame handles now releases the payload buffers for
        // the sender-side recycle ring; the slab's zero-copy views keep
        // what's needed for one round.
        decoded.clear();
        self.decoded = decoded;
        if let Err(e) = result {
            self.error = Some(e);
        }
    }

    /// Error path of the overlapped schedule: collects (and drops) the
    /// round's incoming frames without placing them, keeping the
    /// transport empty for the next round. The fused
    /// compute/account/ship phase ships every frame before any shard
    /// knows whether the round aborted, so an aborting round must still
    /// balance the transport's one-frame-per-link contract. Inboxes keep
    /// the previous round's content, exactly as when the non-overlapped
    /// schedule aborts before shipping.
    pub(crate) fn drain_frames(
        &mut self,
        me: usize,
        transport: &dyn Transport,
        shard_count: usize,
    ) {
        self.gather.resize(shard_count, None);
        // A transport failure while draining an already-aborting round is
        // moot — the round's real error is being reported; the drain only
        // best-effort balances the link.
        let _ = transport.collect(me, &mut self.gather);
        for slot in self.gather.iter_mut() {
            *slot = None;
        }
    }

    fn place_frames_inner(
        &mut self,
        graph: &Graph,
        me: usize,
        round: usize,
        transport: &dyn Transport,
        bounds: &[VertexId],
        decoded: &mut Vec<Frame>,
    ) -> Result<(), SimError> {
        let fail = |error: FrameError| SimError::Frame {
            shard: me,
            round,
            error,
        };
        let shard_count = bounds.len() - 1;
        let lo_v = self.start;
        self.counts.fill(0);
        self.work = DeliveryWork::default();
        self.gather.resize(shard_count, None);
        transport
            .collect(me, &mut self.gather)
            .map_err(|mut transport_error| {
                // The engine's round number is authoritative; transports
                // report their own internal counter.
                transport_error.round = round;
                SimError::Transport(transport_error)
            })?;
        for k in 0..shard_count {
            let bytes = self.gather[k]
                .take()
                .ok_or_else(|| fail(FrameError::MissingFrame { sender: k }))?;
            self.work.frame_bytes += bytes.len();
            let (frame, ns) = Frame::decode_timed(bytes).map_err(&fail)?;
            self.work.checksum_ns += ns;
            if frame.sender_shard() != k {
                return Err(fail(FrameError::Misrouted {
                    expected: k,
                    found: frame.sender_shard(),
                }));
            }
            if frame.dest_shard() != me {
                return Err(fail(FrameError::Misrouted {
                    expected: me,
                    found: frame.dest_shard(),
                }));
            }
            decoded.push(frame);
        }
        // Count pass. The checksum already rules out transport corruption
        // of the ref table; the checks here also rule out a well-formed
        // frame that routes into foreign inboxes or fabricates a sender:
        // the claimed sender must belong to the shard the frame came
        // from, the slot range must lie within that sender's own CSR row,
        // and every delivered target must be a vertex this shard owns.
        let max_slot = graph.directed_edge_count();
        for (k, frame) in decoded.iter().enumerate() {
            self.work.refs_scanned += frame.ref_count();
            let (sender_lo, sender_hi) = (bounds[k], bounds[k + 1]);
            for r in frame.refs() {
                let from = r.from as usize;
                let (slot_lo, slot_hi) = (r.lo as usize, r.hi as usize);
                let foreign = FrameError::ForeignSlots {
                    from,
                    lo: slot_lo,
                    hi: slot_hi,
                };
                if slot_hi > max_slot || from < sender_lo || from >= sender_hi {
                    return Err(fail(foreign));
                }
                if slot_lo < slot_hi {
                    let row = graph.neighbor_slots(from);
                    if slot_lo < row.start || slot_hi > row.end {
                        return Err(fail(foreign));
                    }
                }
                for &to in graph.slot_targets(slot_lo..slot_hi) {
                    // One bounds check per copy: the count table is
                    // exactly this shard's vertex range, so `get_mut` of
                    // the wrapping-shifted id *is* the ownership test
                    // (`to < lo_v` wraps to a huge index and misses too).
                    match self.counts.get_mut(to.wrapping_sub(lo_v)) {
                        Some(count) => *count += 1,
                        None => return Err(fail(foreign)),
                    }
                }
            }
        }

        // Local prefix sums; the slot table is recycled in place exactly
        // as in the shared-memory path.
        self.offsets[0] = 0;
        for i in 0..self.len() {
            self.offsets[i + 1] = self.offsets[i] + self.counts[i];
        }
        let len = self.len();
        let total = self.offsets[len];
        self.slots.resize(total, InboxSlot::default());
        self.work.inbox_slot_bytes = total * std::mem::size_of::<InboxSlot>();
        self.counts.copy_from_slice(&self.offsets[..len]);

        // Scatter pass. Each unique frame payload is registered in the
        // slab once as a zero-copy view into the frame buffer (refs
        // sharing a payload arrive consecutively from our own encoder; a
        // foreign encoder that interleaves them merely registers
        // duplicates), and every copy is a plain 8-byte slot write.
        self.slab.reset();
        for frame in decoded.iter() {
            let mut last: Option<u32> = None;
            let mut payload_id: PayloadId = 0;
            for r in frame.refs() {
                if last != Some(r.payload) {
                    payload_id = self.slab.register(frame.payload(r.payload));
                    last = Some(r.payload);
                }
                self.work.copies_delivered += (r.hi - r.lo) as usize;
                for &to in graph.slot_targets(r.lo as usize..r.hi as usize) {
                    self.deposit(to, r.from, payload_id);
                }
            }
        }
        self.work.payload_registrations = self.slab.len();
        Ok(())
    }

    /// Writes one compact slot through the recipient's scatter cursor —
    /// the entire per-copy cost of delivery (no payload handle moves
    /// here; the handle sits once in the slab).
    fn deposit(&mut self, to: VertexId, from: u32, payload: PayloadId) {
        let cursor = &mut self.counts[to - self.start];
        self.slots[*cursor] = InboxSlot { from, payload };
        *cursor += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netdecomp_graph::generators;

    fn weights(g: &Graph, plan: &ShardPlan) -> Vec<usize> {
        (0..plan.count())
            .map(|k| {
                let r = plan.range(k);
                r.clone().map(|v| g.degree(v) + 1).sum()
            })
            .collect()
    }

    /// The core segmentation invariants: every vertex's segments
    /// concatenate to exactly its CSR slot range, carry strictly
    /// increasing destination shards, and place every target in the shard
    /// they claim; and the flat `shard_of` table agrees with the plan.
    fn assert_route_index_is_consistent(g: &Graph, plan: &ShardPlan) {
        let idx = RouteIndex::new(g, plan);
        assert_eq!(idx.shard_count(), plan.count());
        for v in 0..g.vertex_count() {
            assert_eq!(idx.shard_of(v), plan.shard_of(v), "shard_of({v})");
            let slots = g.neighbor_slots(v);
            let mut next = slots.start;
            let mut prev_shard = None;
            for seg in idx.segments(v) {
                assert_eq!(seg.slots.start, next, "gap in vertex {v}'s segments");
                assert!(seg.slots.end > seg.slots.start, "empty segment");
                assert!(
                    prev_shard.is_none_or(|p| p < seg.shard),
                    "vertex {v}: shards not strictly increasing"
                );
                for slot in seg.slots.clone() {
                    let to = g.slot_target(slot);
                    assert!(
                        plan.range(seg.shard).contains(&to),
                        "vertex {v}: target {to} outside shard {}",
                        seg.shard
                    );
                }
                next = seg.slots.end;
                prev_shard = Some(seg.shard);
            }
            assert_eq!(
                next, slots.end,
                "vertex {v}'s segments do not cover its row"
            );
        }
    }

    #[test]
    fn plan_covers_all_vertices_contiguously() {
        let g = generators::grid2d(9, 7);
        for s in [1, 2, 3, 7, 63, 100] {
            let plan = ShardPlan::degree_balanced(&g, s);
            let b = plan.boundaries();
            assert_eq!(b[0], 0);
            assert_eq!(*b.last().unwrap(), g.vertex_count());
            assert!(b.windows(2).all(|w| w[0] <= w[1]), "monotone: {b:?}");
            assert_eq!(plan.count(), s.min(g.vertex_count()));
            for v in 0..g.vertex_count() {
                let k = plan.shard_of(v);
                assert!(plan.range(k).contains(&v), "vertex {v} shard {k}");
            }
        }
    }

    #[test]
    fn plan_balances_degree_weight() {
        let g = generators::grid2d(20, 20);
        let plan = ShardPlan::degree_balanced(&g, 4);
        let w = weights(&g, &plan);
        let total: usize = w.iter().sum();
        let ideal = total / 4;
        for (k, &wk) in w.iter().enumerate() {
            // Degree-balanced boundaries land within one max-weight vertex
            // of the ideal share; be generous and just require 2x.
            assert!(wk <= 2 * ideal + 8, "shard {k} weight {wk} vs {ideal}");
        }
    }

    #[test]
    fn plan_handles_skewed_degrees_and_tiny_graphs() {
        // A star's center carries half of all slots; shards may be empty
        // but boundaries stay valid.
        let g = generators::star(50);
        let plan = ShardPlan::degree_balanced(&g, 8);
        assert_eq!(*plan.boundaries().last().unwrap(), 50);
        // Requested shards clamp to the vertex count.
        let tiny = generators::path(3);
        assert_eq!(ShardPlan::degree_balanced(&tiny, 64).count(), 3);
        let empty = Graph::empty(0);
        let plan = ShardPlan::degree_balanced(&empty, 4);
        assert_eq!(plan.count(), 1);
        assert_eq!(plan.range(0), 0..0);
    }

    #[test]
    fn single_is_one_full_range() {
        let plan = ShardPlan::single(12);
        assert_eq!(plan.count(), 1);
        assert_eq!(plan.range(0), 0..12);
        assert_eq!(plan.shard_of(11), 0);
    }

    #[test]
    fn delivery_shard_owns_contiguous_slot_range() {
        let g = generators::grid2d(4, 4);
        let plan = ShardPlan::degree_balanced(&g, 3);
        let mut covered = 0;
        for k in 0..plan.count() {
            let r = plan.range(k);
            let shard = DeliveryShard::new(&g, r.start, r.end);
            assert_eq!(shard.slot_base, covered);
            covered += shard.edge_bytes.len();
        }
        assert_eq!(covered, g.directed_edge_count());
    }

    #[test]
    fn route_segments_cover_adjacency_on_regular_graphs() {
        let g = generators::grid2d(9, 7);
        for s in [1, 2, 3, 7, 63] {
            assert_route_index_is_consistent(&g, &ShardPlan::degree_balanced(&g, s));
        }
    }

    #[test]
    fn route_index_handles_empty_graph() {
        let g = Graph::empty(0);
        let plan = ShardPlan::degree_balanced(&g, 4);
        let idx = RouteIndex::new(&g, &plan);
        assert_eq!(idx.shard_count(), 1);
        assert_route_index_is_consistent(&g, &plan);
    }

    #[test]
    fn route_index_handles_more_shards_than_vertices() {
        let g = generators::path(3);
        let plan = ShardPlan::degree_balanced(&g, 64);
        assert_eq!(plan.count(), 3);
        assert_route_index_is_consistent(&g, &plan);
        // Each path vertex's neighbors land in their own single-vertex
        // shards: the middle vertex splits into two singleton segments.
        let idx = RouteIndex::new(&g, &plan);
        assert_eq!(idx.segments(1).count(), 2);
    }

    #[test]
    fn route_index_handles_high_degree_hub() {
        // A star's center adjacency spans every other shard; its segments
        // must tile the full row, one per destination shard with leaves.
        let g = generators::star(50);
        for s in [2, 7, 8] {
            let plan = ShardPlan::degree_balanced(&g, s);
            assert_route_index_is_consistent(&g, &plan);
            let idx = RouteIndex::new(&g, &plan);
            let hub_segments: Vec<_> = idx.segments(0).collect();
            let covered: usize = hub_segments.iter().map(|s| s.slots.len()).sum();
            assert_eq!(covered, g.degree(0), "hub row fully covered");
            // Leaves see a one-segment row pointing at the hub's shard.
            assert_eq!(idx.segments(1).count(), 1);
        }
    }

    #[test]
    fn router_bucket_capacity_decays_after_a_burst() {
        let route = RouteRef {
            from: 0,
            msg: 0,
            lo: 0,
            hi: 1,
        };
        let mut router = Router::default();
        router.reset(2);
        for _ in 0..1024 {
            router.push(1, route, 0);
        }
        router.reset(2);
        // The burst is still remembered right after it happened...
        assert!(router.buckets[1].capacity() >= 512);
        // ...but dozens of small rounds later the retained capacity has
        // decayed to the steady volume's scale (same policy as Outbox).
        for _ in 0..64 {
            router.push(1, route, 0);
            router.reset(2);
        }
        assert!(
            router.buckets[1].capacity() <= 32,
            "bucket capacity {} still pinned after decay",
            router.buckets[1].capacity()
        );
        assert!(router.bucket(1).is_empty());
    }

    /// Corrupted, missing, and misrouted frames must set a typed
    /// [`SimError::Frame`] on the receiving shard — never panic, never
    /// deliver into the wrong inbox.
    #[test]
    fn bad_frames_surface_typed_errors_instead_of_panicking() {
        use crate::frame::{FrameBuilder, LoopbackTransport, Transport};
        use bytes::Bytes;

        let g = generators::path(4); // adjacency 0:[1] 1:[0,2] 2:[1,3] 3:[2]
        let frame_err = |shard: &DeliveryShard| match &shard.error {
            Some(SimError::Frame { error, .. }) => *error,
            other => panic!("expected a frame error, got {other:?}"),
        };

        // A bit flip in the ref table fails the header checksum.
        let mut shard = DeliveryShard::new(&g, 0, 4);
        let t = LoopbackTransport::new(1);
        let mut b = FrameBuilder::new();
        b.begin(0, 0);
        b.push(0, g.neighbor_slots(0), b"x");
        let good = b.finish();
        let mut bad = good.as_slice().to_vec();
        bad[28] ^= 0xff;
        t.send(0, 0, Bytes::from(bad));
        shard.place_frames(&g, 0, 0, &t, &[0, 4]);
        assert!(matches!(
            frame_err(&shard),
            crate::FrameError::ChecksumMismatch { .. }
        ));

        // A frame that never arrives is a MissingFrame for its sender.
        let t = LoopbackTransport::new(1);
        shard.place_frames(&g, 0, 3, &t, &[0, 4]);
        assert_eq!(
            shard.error,
            Some(SimError::Frame {
                shard: 0,
                round: 3,
                error: crate::FrameError::MissingFrame { sender: 0 },
            })
        );

        // A checksummed frame whose header claims another destination.
        let t = LoopbackTransport::new(1);
        b.begin(0, 5);
        t.send(0, 0, b.finish());
        shard.place_frames(&g, 0, 0, &t, &[0, 4]);
        assert!(matches!(
            frame_err(&shard),
            crate::FrameError::Misrouted {
                expected: 0,
                found: 5
            }
        ));

        // A well-formed frame routing into vertices this shard does not
        // own (vertex 3's slot targets vertex 2, outside 0..2).
        let mut shard = DeliveryShard::new(&g, 0, 2);
        let t = LoopbackTransport::new(1);
        b.begin(0, 0);
        b.push(3, g.neighbor_slots(3), b"x");
        t.send(0, 0, b.finish());
        shard.place_frames(&g, 0, 0, &t, &[0, 4]);
        assert!(matches!(
            frame_err(&shard),
            crate::FrameError::ForeignSlots { from: 3, .. }
        ));

        // A slot range past the graph's directed-edge count.
        let t = LoopbackTransport::new(1);
        b.begin(0, 0);
        b.push(0, 900..901, b"x");
        t.send(0, 0, b.finish());
        shard.place_frames(&g, 0, 0, &t, &[0, 4]);
        assert!(matches!(
            frame_err(&shard),
            crate::FrameError::ForeignSlots { lo: 900, .. }
        ));

        // A fabricated sender: the claimed vertex is not owned by the
        // shard the frame came from (sender shard 0 covers only 0..2).
        let mut shard = DeliveryShard::new(&g, 0, 2);
        let t = LoopbackTransport::new(1);
        b.begin(0, 0);
        b.push(3, g.neighbor_slots(3), b"x");
        t.send(0, 0, b.finish());
        shard.place_frames(&g, 0, 0, &t, &[0, 2]);
        assert!(matches!(
            frame_err(&shard),
            crate::FrameError::ForeignSlots { from: 3, .. }
        ));

        // A sender claiming another vertex's slots: vertex 0 shipping
        // vertex 2's CSR row (whose targets 1 and 3 are otherwise valid)
        // must be rejected by the row-ownership check, not delivered with
        // a spoofed `from`.
        let mut shard = DeliveryShard::new(&g, 0, 4);
        let t = LoopbackTransport::new(1);
        b.begin(0, 0);
        b.push(0, g.neighbor_slots(2), b"x");
        t.send(0, 0, b.finish());
        shard.place_frames(&g, 0, 0, &t, &[0, 4]);
        assert!(matches!(
            frame_err(&shard),
            crate::FrameError::ForeignSlots { from: 0, .. }
        ));
    }

    #[test]
    fn route_index_handles_isolated_vertices() {
        // Vertices 3 and 4 are isolated: no segments, but still owned by
        // exactly one shard.
        let g = Graph::from_edges(5, &[(0, 1), (1, 2)]).unwrap();
        let plan = ShardPlan::degree_balanced(&g, 3);
        assert_route_index_is_consistent(&g, &plan);
        let idx = RouteIndex::new(&g, &plan);
        for v in 3..5 {
            assert_eq!(idx.segments(v).count(), 0, "isolated vertex {v}");
            assert_eq!(idx.shard_of(v), plan.shard_of(v));
        }
        // Degree balance stays sane: no shard carries more than the whole
        // weight, and all weight is accounted for.
        let w = weights(&g, &plan);
        assert_eq!(w.iter().sum::<usize>(), 2 * g.edge_count() + 5);
    }
}

//! Recipient-range sharding of the delivery phase.
//!
//! A [`ShardPlan`] partitions the vertex set into contiguous ranges. Each
//! shard owns, exclusively:
//!
//! - the **inbox slice** of its vertices (a per-shard CSR: local offsets
//!   plus a flat `Vec<Incoming>`), written only by the owning shard during
//!   placement and read only by the owning shard during the next compute
//!   phase;
//! - the **per-recipient count/cursor table** backing the bucket sort;
//! - the **per-edge CONGEST counters** of the directed-edge slots leaving
//!   its vertices. Edge accounting is *sender-owned*: the slot of the
//!   directed edge `from -> to` lives in `from`'s CSR row, and because a
//!   shard is a contiguous vertex range its slots form one contiguous
//!   block of `0..2m` — sharding needs no counter merge at all.
//!
//! This ownership split is what lets every phase of delivery run on all
//! shards concurrently with no synchronization beyond a barrier between
//! phases: accounting scans only the shard's own outboxes (sender side),
//! while counting and scatter scan all outboxes but write only the shard's
//! own inbox slice (recipient side). Only the per-shard [`RoundStats`] are
//! merged at the end of a round.

use std::sync::RwLock;

use netdecomp_graph::{Graph, VertexId};

use crate::{CongestLimit, Incoming, Outbox, Recipient, RoundStats, SimError};

/// First directed-edge slot of `v`'s CSR row (`2m` for `v == n`, so the
/// expression is also valid as an exclusive upper bound).
fn slot_start(graph: &Graph, v: usize) -> usize {
    if v < graph.vertex_count() {
        graph.neighbor_slots(v).start
    } else {
        graph.directed_edge_count()
    }
}

/// A partition of the vertex set into contiguous recipient ranges.
///
/// Boundaries are degree-balanced: shard `k` covers
/// `boundaries()[k]..boundaries()[k + 1]`, chosen so every shard carries
/// roughly the same share of `2m + n` (directed-edge slots plus vertices —
/// the per-round delivery work is linear in both). Because adjacency is
/// CSR-sorted, a contiguous vertex range also owns one contiguous range of
/// directed-edge slots, which is what makes per-shard CONGEST counters a
/// plain slice instead of a merge problem.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardPlan {
    /// `count() + 1` non-decreasing vertex ids from `0` to `n`.
    boundaries: Vec<VertexId>,
}

impl ShardPlan {
    /// The trivial plan: one shard covering all of `0..n`.
    #[must_use]
    pub fn single(n: usize) -> Self {
        ShardPlan {
            boundaries: vec![0, n],
        }
    }

    /// A degree-balanced plan with (at most) `shards` shards.
    ///
    /// The requested count is clamped to `1..=max(n, 1)`; a shard may still
    /// end up empty on extremely skewed degree distributions (e.g. a star's
    /// center outweighing everything else), which the engine handles.
    #[must_use]
    pub fn degree_balanced(graph: &Graph, shards: usize) -> Self {
        let n = graph.vertex_count();
        let s = shards.clamp(1, n.max(1));
        let weight = |v: usize| slot_start(graph, v) + v;
        let total = weight(n);
        let mut boundaries = Vec::with_capacity(s + 1);
        boundaries.push(0);
        for k in 1..s {
            // Smallest v whose cumulative weight reaches the k-th share.
            let target = k * total / s;
            let (mut lo, mut hi) = (boundaries[k - 1], n);
            while lo < hi {
                let mid = lo + (hi - lo) / 2;
                if weight(mid) < target {
                    lo = mid + 1;
                } else {
                    hi = mid;
                }
            }
            boundaries.push(lo);
        }
        boundaries.push(n);
        ShardPlan { boundaries }
    }

    /// Number of shards.
    #[must_use]
    pub fn count(&self) -> usize {
        self.boundaries.len() - 1
    }

    /// The non-decreasing shard boundaries: `count() + 1` vertex ids from
    /// `0` to `n`.
    #[must_use]
    pub fn boundaries(&self) -> &[VertexId] {
        &self.boundaries
    }

    /// The contiguous vertex range owned by shard `k`.
    ///
    /// # Panics
    ///
    /// Panics if `k >= count()`.
    #[must_use]
    pub fn range(&self, k: usize) -> std::ops::Range<VertexId> {
        self.boundaries[k]..self.boundaries[k + 1]
    }

    /// The shard owning vertex `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is at least the plan's vertex count.
    #[must_use]
    pub fn shard_of(&self, v: VertexId) -> usize {
        assert!(v < *self.boundaries.last().expect("non-empty boundaries"));
        // Last boundary <= v (empty shards share a boundary; the owner is
        // the unique shard whose half-open range contains v).
        self.boundaries.partition_point(|&b| b <= v) - 1
    }
}

/// Per-shard delivery state: everything one shard touches during a round,
/// so all shards can run every delivery phase concurrently.
///
/// Buffers are sized once (per [`ShardPlan`]) and recycled in place across
/// rounds: the inbox is overwritten slot by slot by the scatter pass —
/// payload handles are reference-counted, so an overwrite retires the old
/// round's handle and installs the new one with no allocation — and only
/// grows when a round delivers more messages than any round before it.
#[derive(Debug)]
pub(crate) struct DeliveryShard {
    /// First owned vertex.
    start: VertexId,
    /// One past the last owned vertex.
    end: VertexId,
    /// First directed-edge slot of the owned (contiguous) slot range.
    slot_base: usize,
    /// Per-directed-edge bytes this round, indexed by `slot - slot_base`.
    edge_bytes: Vec<usize>,
    /// Locally-indexed slots dirtied this round (sparse reset).
    touched: Vec<usize>,
    /// Per-recipient counts, then scatter cursors (both local-indexed).
    counts: Vec<usize>,
    /// Local CSR offsets into [`DeliveryShard::inbox`]: vertex `start + i`
    /// receives `inbox[offsets[i]..offsets[i + 1]]`.
    pub(crate) offsets: Vec<usize>,
    /// Messages delivered to this shard's vertices, CSR-packed.
    pub(crate) inbox: Vec<Incoming>,
    /// This shard's slice of the round's accounting (merged by the engine).
    pub(crate) stats: RoundStats,
    /// First error this shard's account pass hit, if any.
    pub(crate) error: Option<SimError>,
}

impl DeliveryShard {
    pub(crate) fn new(graph: &Graph, start: VertexId, end: VertexId) -> Self {
        let slot_base = slot_start(graph, start);
        let slots = slot_start(graph, end) - slot_base;
        DeliveryShard {
            start,
            end,
            slot_base,
            edge_bytes: vec![0; slots],
            touched: Vec::new(),
            counts: vec![0; end - start],
            offsets: vec![0; end - start + 1],
            inbox: Vec::new(),
            stats: RoundStats::default(),
            error: None,
        }
    }

    /// First owned vertex.
    pub(crate) fn start(&self) -> VertexId {
        self.start
    }

    /// Number of owned vertices.
    pub(crate) fn len(&self) -> usize {
        self.end - self.start
    }

    /// Messages delivered to owned vertex `start + local` last round.
    pub(crate) fn incoming(&self, local: usize) -> &[Incoming] {
        &self.inbox[self.offsets[local]..self.offsets[local + 1]]
    }

    /// **Account phase** (sender side): validates addressing and charges
    /// CONGEST byte counters for every message sent *by* this shard's
    /// vertices. `outboxes` is the shard's own outbox chunk.
    ///
    /// Returns `false` (with [`DeliveryShard::error`] set) on the first
    /// violation, mirroring the abort point of a sequential sender-order
    /// scan.
    pub(crate) fn account(
        &mut self,
        graph: &Graph,
        limit: CongestLimit,
        round: usize,
        outboxes: &[Outbox],
    ) -> bool {
        // Sparse reset of last round's counters; also reached on the next
        // round after an aborted one, so partial charges never leak.
        for &local in &self.touched {
            self.edge_bytes[local] = 0;
        }
        self.touched.clear();
        self.stats = RoundStats {
            round,
            ..RoundStats::default()
        };
        self.error = None;
        for (i, out) in outboxes.iter().enumerate() {
            let from = self.start + i;
            for msg in out.messages() {
                let len = msg.payload.len();
                let sent = match &msg.to {
                    Recipient::Neighbor(to) => {
                        self.charge_edge(graph, limit, round, from, *to, len)
                    }
                    Recipient::Neighbors(targets) => targets
                        .iter()
                        .try_for_each(|&to| self.charge_edge(graph, limit, round, from, to, len)),
                    Recipient::AllNeighbors => graph.neighbor_slots(from).try_for_each(|slot| {
                        let to = graph.slot_target(slot);
                        self.charge_slot(limit, round, slot, from, to, len)
                    }),
                };
                if let Err(e) = sent {
                    self.error = Some(e);
                    return false;
                }
            }
        }
        true
    }

    /// Resolves the (sender-owned) slot of `from -> to`, then charges it.
    fn charge_edge(
        &mut self,
        graph: &Graph,
        limit: CongestLimit,
        round: usize,
        from: VertexId,
        to: VertexId,
        len: usize,
    ) -> Result<(), SimError> {
        let slot = graph
            .edge_slot(from, to)
            .ok_or(SimError::NotNeighbor { from, to })?;
        self.charge_slot(limit, round, slot, from, to, len)
    }

    /// Charges one delivered message against a directed-edge slot.
    fn charge_slot(
        &mut self,
        limit: CongestLimit,
        round: usize,
        slot: usize,
        from: VertexId,
        to: VertexId,
        len: usize,
    ) -> Result<(), SimError> {
        let bytes = &mut self.edge_bytes[slot - self.slot_base];
        if *bytes == 0 {
            self.touched.push(slot - self.slot_base);
        }
        *bytes += len;
        if let CongestLimit::PerEdgeBytes(limit) = limit {
            if *bytes > limit {
                return Err(SimError::CongestViolation {
                    from,
                    to,
                    bytes: *bytes,
                    limit,
                    round,
                });
            }
        }
        self.stats.messages += 1;
        self.stats.bytes += len;
        self.stats.max_edge_bytes = self.stats.max_edge_bytes.max(*bytes);
        Ok(())
    }

    /// The sub-slice of `from`'s (sorted) adjacency that falls in this
    /// shard's recipient range.
    fn owned_targets<'g>(&self, graph: &'g Graph, from: VertexId, full: bool) -> &'g [VertexId] {
        let nb = graph.neighbors(from);
        if full {
            return nb;
        }
        let s = nb.partition_point(|&v| v < self.start);
        let e = nb.partition_point(|&v| v < self.end);
        &nb[s..e]
    }

    /// **Placement phase** (recipient side): bucket-sorts every message
    /// addressed *to* this shard's vertices into the shard's own inbox
    /// slice. `bounds` are the plan boundaries and `chunks` the per-shard
    /// outbox chunks, so chunk `k`'s first sender is `bounds[k]`; chunks
    /// are read-locked one at a time (writers finished at the phase
    /// barrier, so the locks are uncontended — and lock acquisition is
    /// allocation-free, keeping steady-state rounds zero-alloc).
    ///
    /// Two scans in sender-id order (count, then scatter through cursors),
    /// so per-recipient delivery order is (sender id, send order, adjacency
    /// order for broadcasts) — identical to a global sequential merge.
    pub(crate) fn place(
        &mut self,
        graph: &Graph,
        bounds: &[VertexId],
        chunks: &[RwLock<Vec<Outbox>>],
    ) {
        let (lo, hi) = (self.start, self.end);
        let full = lo == 0 && hi == graph.vertex_count();
        self.counts.fill(0);
        for (k, chunk) in chunks.iter().enumerate() {
            let outs = chunk.read().expect("no poisoned outbox chunk");
            for (i, out) in outs.iter().enumerate() {
                let from = bounds[k] + i;
                for msg in out.messages() {
                    match &msg.to {
                        Recipient::Neighbor(to) => {
                            if full || (lo..hi).contains(to) {
                                self.counts[to - lo] += 1;
                            }
                        }
                        Recipient::Neighbors(targets) => {
                            for &to in targets {
                                if full || (lo..hi).contains(&to) {
                                    self.counts[to - lo] += 1;
                                }
                            }
                        }
                        Recipient::AllNeighbors => {
                            for &to in self.owned_targets(graph, from, full) {
                                self.counts[to - lo] += 1;
                            }
                        }
                    }
                }
            }
        }

        // Local prefix sums; the inbox is recycled in place (steady-state
        // rounds reuse both the buffer and its slots, see the type docs).
        self.offsets[0] = 0;
        for i in 0..self.len() {
            self.offsets[i + 1] = self.offsets[i] + self.counts[i];
        }
        let len = self.len();
        let total = self.offsets[len];
        self.inbox.resize(total, Incoming::default());
        self.counts.copy_from_slice(&self.offsets[..len]);

        for (k, chunk) in chunks.iter().enumerate() {
            let outs = chunk.read().expect("no poisoned outbox chunk");
            for (i, out) in outs.iter().enumerate() {
                let from = bounds[k] + i;
                for msg in out.messages() {
                    match &msg.to {
                        Recipient::Neighbor(to) => {
                            if full || (lo..hi).contains(to) {
                                self.deposit(*to, from, msg.payload.clone());
                            }
                        }
                        Recipient::Neighbors(targets) => {
                            for &to in targets {
                                if full || (lo..hi).contains(&to) {
                                    self.deposit(to, from, msg.payload.clone());
                                }
                            }
                        }
                        Recipient::AllNeighbors => {
                            for &to in self.owned_targets(graph, from, full) {
                                self.deposit(to, from, msg.payload.clone());
                            }
                        }
                    }
                }
            }
        }
    }

    /// Writes one message through the recipient's scatter cursor.
    fn deposit(&mut self, to: VertexId, from: VertexId, payload: bytes::Bytes) {
        let cursor = &mut self.counts[to - self.start];
        self.inbox[*cursor] = Incoming { from, payload };
        *cursor += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netdecomp_graph::generators;

    fn weights(g: &Graph, plan: &ShardPlan) -> Vec<usize> {
        (0..plan.count())
            .map(|k| {
                let r = plan.range(k);
                r.clone().map(|v| g.degree(v) + 1).sum()
            })
            .collect()
    }

    #[test]
    fn plan_covers_all_vertices_contiguously() {
        let g = generators::grid2d(9, 7);
        for s in [1, 2, 3, 7, 63, 100] {
            let plan = ShardPlan::degree_balanced(&g, s);
            let b = plan.boundaries();
            assert_eq!(b[0], 0);
            assert_eq!(*b.last().unwrap(), g.vertex_count());
            assert!(b.windows(2).all(|w| w[0] <= w[1]), "monotone: {b:?}");
            assert_eq!(plan.count(), s.min(g.vertex_count()));
            for v in 0..g.vertex_count() {
                let k = plan.shard_of(v);
                assert!(plan.range(k).contains(&v), "vertex {v} shard {k}");
            }
        }
    }

    #[test]
    fn plan_balances_degree_weight() {
        let g = generators::grid2d(20, 20);
        let plan = ShardPlan::degree_balanced(&g, 4);
        let w = weights(&g, &plan);
        let total: usize = w.iter().sum();
        let ideal = total / 4;
        for (k, &wk) in w.iter().enumerate() {
            // Degree-balanced boundaries land within one max-weight vertex
            // of the ideal share; be generous and just require 2x.
            assert!(wk <= 2 * ideal + 8, "shard {k} weight {wk} vs {ideal}");
        }
    }

    #[test]
    fn plan_handles_skewed_degrees_and_tiny_graphs() {
        // A star's center carries half of all slots; shards may be empty
        // but boundaries stay valid.
        let g = generators::star(50);
        let plan = ShardPlan::degree_balanced(&g, 8);
        assert_eq!(*plan.boundaries().last().unwrap(), 50);
        // Requested shards clamp to the vertex count.
        let tiny = generators::path(3);
        assert_eq!(ShardPlan::degree_balanced(&tiny, 64).count(), 3);
        let empty = Graph::empty(0);
        let plan = ShardPlan::degree_balanced(&empty, 4);
        assert_eq!(plan.count(), 1);
        assert_eq!(plan.range(0), 0..0);
    }

    #[test]
    fn single_is_one_full_range() {
        let plan = ShardPlan::single(12);
        assert_eq!(plan.count(), 1);
        assert_eq!(plan.range(0), 0..12);
        assert_eq!(plan.shard_of(11), 0);
    }

    #[test]
    fn delivery_shard_owns_contiguous_slot_range() {
        let g = generators::grid2d(4, 4);
        let plan = ShardPlan::degree_balanced(&g, 3);
        let mut covered = 0;
        for k in 0..plan.count() {
            let r = plan.range(k);
            let shard = DeliveryShard::new(&g, r.start, r.end);
            assert_eq!(shard.slot_base, covered);
            covered += shard.edge_bytes.len();
        }
        assert_eq!(covered, g.directed_edge_count());
    }
}

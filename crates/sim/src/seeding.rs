//! Deterministic derivation of independent RNG streams.
//!
//! Every randomized algorithm in the workspace takes one root `u64` seed;
//! per-(phase, vertex) randomness is derived by mixing the root with stream
//! tags through SplitMix64. Identical tags yield identical streams, which is
//! what lets the centralized and distributed implementations of the paper's
//! algorithm draw *the same* exponential shifts and produce bit-identical
//! decompositions.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// SplitMix64 finalizer: a high-quality 64-bit mixing function.
#[must_use]
pub(crate) fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives a deterministic RNG for the stream identified by `tags` under
/// `root_seed`.
///
/// Different tag vectors yield statistically independent streams; equal tag
/// vectors yield identical streams.
///
/// # Example
///
/// ```
/// use netdecomp_sim::stream_rng;
/// use rand::Rng;
///
/// let mut a = stream_rng(42, &[1, 7]);
/// let mut b = stream_rng(42, &[1, 7]);
/// let mut c = stream_rng(42, &[1, 8]);
/// let (x, y, z): (u64, u64, u64) = (a.gen(), b.gen(), c.gen());
/// assert_eq!(x, y);
/// assert_ne!(x, z);
/// ```
#[must_use]
pub fn stream_rng(root_seed: u64, tags: &[u64]) -> StdRng {
    let mut acc = splitmix64(root_seed);
    for &t in tags {
        // Feed each tag through the mixer, chaining the accumulator so that
        // (a, b) and (b, a) land in different streams.
        acc = splitmix64(acc ^ splitmix64(t.wrapping_add(0xA5A5_A5A5_A5A5_A5A5)));
    }
    StdRng::seed_from_u64(acc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn identical_tags_identical_streams() {
        let xs: Vec<u32> = stream_rng(9, &[3, 1, 4])
            .sample_iter(rand::distributions::Standard)
            .take(8)
            .collect();
        let ys: Vec<u32> = stream_rng(9, &[3, 1, 4])
            .sample_iter(rand::distributions::Standard)
            .take(8)
            .collect();
        assert_eq!(xs, ys);
    }

    #[test]
    fn order_of_tags_matters() {
        let a: u64 = stream_rng(9, &[1, 2]).gen();
        let b: u64 = stream_rng(9, &[2, 1]).gen();
        assert_ne!(a, b);
    }

    #[test]
    fn seed_matters() {
        let a: u64 = stream_rng(1, &[5]).gen();
        let b: u64 = stream_rng(2, &[5]).gen();
        assert_ne!(a, b);
    }

    #[test]
    fn empty_tags_allowed() {
        let a: u64 = stream_rng(7, &[]).gen();
        let b: u64 = stream_rng(7, &[]).gen();
        assert_eq!(a, b);
    }

    #[test]
    fn splitmix_is_not_identity() {
        assert_ne!(splitmix64(0), 0);
        assert_ne!(splitmix64(1), splitmix64(2));
    }
}

//! The single-shard round driver a worker process runs.
//!
//! A distributed run puts one OS process on each shard. Every worker
//! loads the graph independently, computes the same
//! [`ShardPlan::degree_balanced`] partition, and drives only its own
//! vertex range through the engine's compute → account → ship → place
//! phases, with a [`HubClient`] as the delivery fabric. The phase code
//! is the *same* code the in-process engine runs
//! ([`crate::transport::worker`] calls into the engine's shard
//! machinery, not a reimplementation), which is what makes the
//! process-per-shard deployment bit-identical to the shared-memory
//! backends.
//!
//! Failure contract: a local violation (CONGEST overrun, frame decode
//! failure) is reported to the fabric as an `Error` control frame before
//! the worker exits, so peers stop on the structured error instead of a
//! timeout; a peer or link failure arrives as a typed
//! [`SimError::Transport`] out of the collect path. Either way
//! [`run_worker`] returns the error — it never hangs and never panics on
//! runtime failures.

use std::path::PathBuf;

use bytes::Bytes;
use netdecomp_graph::{Graph, VertexId};

use crate::checkpoint::{
    decode_worker_payload, encode_worker_payload, load_newest_checkpoint, write_checkpoint,
    Checkpoint,
};
use crate::engine::{compute_shard, Ctx, Protocol, Snapshot};
use crate::frame::{FrameConfig, FrameEncoder, Transport};
use crate::shard::{DeliveryShard, RouteIndex, Router, ShardPlan};
use crate::{CongestLimit, Outbox, RunStats, SimError, TransportCause, TransportError};

use super::control::{EVENT_CHECKPOINT_LOAD, EVENT_CHECKPOINT_REJECT, EVENT_CHECKPOINT_WRITE};
use super::HubClient;

/// What one worker needs to know to drive its shard.
#[derive(Debug, Clone)]
pub struct WorkerConfig {
    /// This worker's shard index.
    pub shard: usize,
    /// Total shard (= worker) count of the run.
    pub shards: usize,
    /// Number of rounds to execute.
    pub rounds: usize,
    /// CONGEST byte budget, enforced identically to the in-process
    /// engine.
    pub limit: CongestLimit,
}

/// What a worker hands back after its run.
#[derive(Debug, Clone, Default)]
pub struct WorkerReport {
    /// Rounds fully committed before return.
    pub rounds_run: usize,
    /// This shard's accumulated message statistics (the launcher can sum
    /// reports across workers; per-round message counts partition over
    /// sender shards).
    pub stats: RunStats,
}

/// A worker's checkpoint configuration plus whatever it recovered from
/// disk *before* dialing the hub.
///
/// The resume round rides in the `Hello` frame, so the newest valid
/// checkpoint must be loaded before the handshake — build the plan
/// first, pass [`CheckpointPlan::resume_round`] to
/// [`HubClient::connect_resuming`], [`reconcile`](Self::reconcile) the
/// granted round, then hand the plan to [`run_worker_checkpointed`].
/// Flight-recorder events staged while offline (one per rejected file,
/// one for the winning load) are flushed to the hub right after the
/// round loop connects.
#[derive(Debug, Default)]
pub struct CheckpointPlan {
    /// Where checkpoints live; `None` disables both restore and writes.
    dir: Option<PathBuf>,
    /// Write a checkpoint every this many committed rounds (0 = never).
    interval: u64,
    /// The graph fingerprint stamped into every checkpoint header.
    graph_digest: u64,
    /// The newest on-disk checkpoint that survived validation, if any.
    loaded: Option<Checkpoint>,
    /// `(round, code, detail)` events staged for the flight recorder.
    pending: Vec<(u64, u8, String)>,
}

impl CheckpointPlan {
    /// Builds the plan from the launcher environment
    /// (`NETDECOMP_CHECKPOINT_DIR` / `NETDECOMP_CHECKPOINT_INTERVAL`).
    /// Disabled (a no-op plan) unless both are set and the interval is
    /// positive. Only a *relaunched* worker (`ENV_ATTEMPT` > 0) scans
    /// for checkpoints: a first launch is a fresh run, and any files
    /// already in the directory are leftovers it must not resume from.
    pub fn from_env(shard: usize, shards: usize, graph_digest: u64, rounds: usize) -> Self {
        let interval = super::checkpoint_interval();
        let dir = super::checkpoint_dir();
        let mut plan = CheckpointPlan {
            dir,
            interval,
            graph_digest,
            loaded: None,
            pending: Vec::new(),
        };
        if plan.interval == 0 {
            plan.dir = None;
            return plan;
        }
        let Some(dir) = plan.dir.as_deref() else {
            return plan;
        };
        if crate::trace::worker_attempt() == 0 {
            return plan;
        }
        let (loaded, rejected) =
            load_newest_checkpoint(dir, shard, shards, graph_digest, rounds as u64);
        for reject in rejected {
            plan.pending.push((
                0,
                EVENT_CHECKPOINT_REJECT,
                format!("{}: {}", reject.path.display(), reject.reason),
            ));
        }
        if let Some(ckpt) = &loaded {
            plan.pending.push((
                ckpt.round,
                EVENT_CHECKPOINT_LOAD,
                format!(
                    "{}: resuming at round {}",
                    crate::checkpoint::checkpoint_path(dir, shard, ckpt.round).display(),
                    ckpt.round
                ),
            ));
        }
        plan.loaded = loaded;
        plan
    }

    /// The round this plan can resume from: the loaded checkpoint's cut,
    /// or 0 when starting fresh. Pass it to
    /// [`HubClient::connect_resuming`].
    pub fn resume_round(&self) -> u64 {
        self.loaded.as_ref().map_or(0, |c| c.round)
    }

    /// Reconciles the plan with the round the hub actually granted. A
    /// grant below the checkpoint round means the hub refused the resume
    /// (a fresh hub after a whole-run restart knows nothing of our
    /// history — the checkpoint is stale) and admitted us at `granted`
    /// instead; the restored state is discarded and the refusal staged
    /// for the flight recorder. Determinism makes the discard safe: the
    /// re-run recomputes bit-identical state.
    pub fn reconcile(&mut self, granted: u64) {
        let claimed = self.resume_round();
        if granted >= claimed {
            return;
        }
        self.loaded = None;
        self.pending.push((
            granted,
            EVENT_CHECKPOINT_REJECT,
            format!(
                "stale resume: hub granted round {granted}, not the checkpoint's \
                 round {claimed} — restarting from the granted round"
            ),
        ));
    }

    /// Whether the round loop should write checkpoints.
    fn writes(&self) -> bool {
        self.interval > 0 && self.dir.is_some()
    }
}

/// Adapts a [`HubClient`] (one shard's fabric endpoint) to the
/// [`Transport`] seam the engine's shard machinery expects.
#[derive(Debug)]
struct ClientTransport<'a> {
    client: &'a HubClient,
}

impl Transport for ClientTransport<'_> {
    fn send(&self, from: usize, to: usize, frame: Bytes) {
        debug_assert_eq!(
            from,
            self.client.shard(),
            "a worker ships only its own frames"
        );
        self.client.send(to, frame);
    }

    fn collect(&self, _to: usize, into: &mut [Option<Bytes>]) -> Result<(), TransportError> {
        self.client.collect(into)
    }
}

/// Runs `config.rounds` rounds of protocol `P` for one shard of the
/// fabric, returning the report and the shard's final node states (in
/// vertex-id order over the shard's range).
///
/// `make_node` sees exactly what [`crate::Simulator::new`]'s closure
/// sees, so the same constructor drives both deployments.
///
/// # Errors
///
/// The first [`SimError`] the round loop hits: this shard's own CONGEST
/// or frame violation (reported to peers before returning), a peer's
/// structured error relayed by the hub, or a typed
/// [`SimError::Transport`] when the fabric times out, disconnects, or
/// desyncs.
pub fn run_worker<P, F>(
    graph: &Graph,
    client: &HubClient,
    config: &WorkerConfig,
    make_node: F,
) -> Result<(WorkerReport, Vec<P>), SimError>
where
    P: Protocol,
    F: FnMut(VertexId, &Ctx<'_>) -> P,
{
    run_worker_reporting(graph, client, config, make_node, |_| 0)
}

/// [`run_worker`] plus end-of-run reporting: on success the worker
/// streams its [`RunStats`] and a caller-computed result digest to the
/// hub as a `Stats` control frame *before* the `Shutdown` frame (the
/// hub stops reading this connection at `Shutdown`, so order matters).
/// The launcher merges the reports instead of parsing worker stdout,
/// and the digest lets it cross-check that restarted workers converged
/// on the same result.
///
/// # Errors
///
/// As [`run_worker`].
pub fn run_worker_reporting<P, F, D>(
    graph: &Graph,
    client: &HubClient,
    config: &WorkerConfig,
    make_node: F,
    digest_of: D,
) -> Result<(WorkerReport, Vec<P>), SimError>
where
    P: Protocol,
    F: FnMut(VertexId, &Ctx<'_>) -> P,
    D: FnOnce(&[P]) -> u64,
{
    drive_worker(
        graph,
        client,
        config,
        make_node,
        digest_of,
        |_, _, _, _| Ok(0),
        |_, _, _, _| (),
    )
}

/// [`run_worker_reporting`] with deterministic checkpoint/restore: every
/// `plan` interval rounds the worker writes its full round-boundary
/// state (node snapshots, pending inbox, CONGEST counters, accumulated
/// stats) to an atomically-renamed checkpoint file, and a relaunched
/// worker whose plan recovered a checkpoint starts the round loop at the
/// checkpoint round instead of round 0 — crash recovery costs one
/// interval plus the replay window, not the whole run.
///
/// The caller must have dialed with
/// [`HubClient::connect_resuming`]`(…, plan.resume_round())` and
/// [`reconcile`](CheckpointPlan::reconcile)d the granted round: the hub
/// only replays frames from the round the handshake claimed, so loop
/// start and handshake round must agree.
///
/// # Errors
///
/// As [`run_worker`], plus a typed handshake error if the recovered
/// checkpoint's payload does not overlay this worker's shard (a digest
/// collision or a `Snapshot` impl that changed between builds — the
/// handshake already promised the checkpoint round, so running from 0
/// instead would desync the fabric).
pub fn run_worker_checkpointed<P, F, D>(
    graph: &Graph,
    client: &HubClient,
    config: &WorkerConfig,
    plan: CheckpointPlan,
    make_node: F,
    digest_of: D,
) -> Result<(WorkerReport, Vec<P>), SimError>
where
    P: Protocol + Snapshot,
    F: FnMut(VertexId, &Ctx<'_>) -> P,
    D: FnOnce(&[P]) -> u64,
{
    let writes = plan.writes();
    let CheckpointPlan {
        dir,
        interval,
        graph_digest,
        mut loaded,
        mut pending,
    } = plan;
    let me = config.shard;
    let shards = config.shards;
    drive_worker(
        graph,
        client,
        config,
        make_node,
        digest_of,
        |client: &HubClient,
         nodes: &mut [P],
         shard: &mut DeliveryShard,
         report: &mut WorkerReport| {
            // The fabric is up: flush the events staged while offline.
            for (round, code, detail) in pending.drain(..) {
                client.send_event(round, code, detail);
            }
            let Some(ckpt) = loaded.take() else {
                return Ok(0);
            };
            if !decode_worker_payload(&ckpt.payload, nodes, shard, &mut report.stats) {
                return Err(SimError::Transport(TransportError {
                    shard: me,
                    round: ckpt.round as usize,
                    cause: TransportCause::Handshake {
                        detail: format!(
                            "checkpoint for round {} passed its digest but does not \
                             overlay shard {me}'s state (mismatched build?)",
                            ckpt.round
                        ),
                    },
                }));
            }
            let start = ckpt.round as usize;
            report.rounds_run = start;
            Ok(start)
        },
        |client: &HubClient, nodes: &[P], shard: &DeliveryShard, report: &WorkerReport| {
            if !writes || !(report.rounds_run as u64).is_multiple_of(interval) {
                return;
            }
            let dir = dir.as_deref().expect("writes() checked dir");
            let round = report.rounds_run as u64;
            let ckpt = Checkpoint {
                shard: me,
                shards,
                round,
                graph_digest,
                payload: encode_worker_payload(nodes, shard, &report.stats),
            };
            // Best-effort, like stats and traces: a full disk must not
            // kill a healthy run, but the flight record names it.
            match write_checkpoint(dir, &ckpt) {
                Ok(path) => {
                    client.send_event(round, EVENT_CHECKPOINT_WRITE, path.display().to_string());
                }
                Err(error) => {
                    client.send_event(round, EVENT_CHECKPOINT_WRITE, format!("failed: {error}"));
                }
            }
        },
    )
}

/// The shared round loop behind [`run_worker_reporting`] and
/// [`run_worker_checkpointed`]. `prologue` runs once after the shard
/// state is built and returns the round to start from (restoring state
/// and setting `report.rounds_run` if it resumes); `after_round` runs
/// at every round boundary — `report.rounds_run` rounds are committed,
/// `shard` holds the next round's pending inbox — which is exactly the
/// consistent cut a checkpoint captures.
#[allow(clippy::too_many_arguments)]
fn drive_worker<P, F, D, R, A>(
    graph: &Graph,
    client: &HubClient,
    config: &WorkerConfig,
    mut make_node: F,
    digest_of: D,
    prologue: R,
    mut after_round: A,
) -> Result<(WorkerReport, Vec<P>), SimError>
where
    P: Protocol,
    F: FnMut(VertexId, &Ctx<'_>) -> P,
    D: FnOnce(&[P]) -> u64,
    R: FnOnce(
        &HubClient,
        &mut [P],
        &mut DeliveryShard,
        &mut WorkerReport,
    ) -> Result<usize, SimError>,
    A: FnMut(&HubClient, &[P], &DeliveryShard, &WorkerReport),
{
    let plan = ShardPlan::degree_balanced(graph, config.shards);
    if plan.count() != config.shards || config.shard >= config.shards {
        // The plan clamps to the vertex count; a fabric larger than the
        // graph (or a shard index outside it) cannot agree on a
        // partition, and every worker must fail the same typed way.
        return Err(SimError::Transport(TransportError {
            shard: config.shard,
            round: 0,
            cause: TransportCause::Handshake {
                detail: format!(
                    "no {}-shard plan over {} vertices (plan has {} shards)",
                    config.shards,
                    graph.vertex_count(),
                    plan.count()
                ),
            },
        }));
    }
    let me = config.shard;
    let n = graph.vertex_count();
    let routes = RouteIndex::new(graph, &plan);
    let bounds = plan.boundaries().to_vec();
    let range = plan.range(me);
    let mut shard = DeliveryShard::new(graph, range.start, range.end);
    let mut nodes: Vec<P> = range
        .clone()
        .map(|id| make_node(id, &Ctx::new(id, n, graph)))
        .collect();
    let mut outboxes = vec![Outbox::new(); nodes.len()];
    let mut router = Router::default();
    let mut encoder = FrameEncoder::new(config.shards, FrameConfig::from_env());
    let transport = ClientTransport { client };
    let mut report = WorkerReport::default();
    // Restart generation for the trace plane: 0 on a first launch, the
    // supervisor's attempt count on a relaunch (via `ENV_ATTEMPT`).
    let attempt = crate::trace::worker_attempt();

    let fail = |client: &HubClient, local: SimError| {
        // A structured peer error beats our local rendering of it; a
        // local diagnosis (CONGEST, decode, even a collect timeout) is
        // news the fabric should halt on — report it best-effort (the
        // hub keeps the first error, so echoes are harmless).
        match client.remote_error() {
            Some(remote) => {
                client.send_shutdown();
                remote
            }
            None => {
                client.report_error(&local);
                client.send_shutdown();
                local
            }
        }
    };

    let start = match prologue(client, &mut nodes, &mut shard, &mut report) {
        Ok(start) => start,
        Err(error) => return Err(fail(client, error)),
    };

    for round in start..config.rounds {
        if let Some(error) = client.remote_error() {
            client.send_shutdown();
            return Err(error);
        }
        let t = shard.trace.begin();
        compute_shard(graph, round > 0, &shard, &mut nodes, &mut outboxes);
        shard.trace.note_compute(t);
        let t = shard.trace.begin();
        let ok = shard.account(graph, &routes, config.limit, round, &outboxes, &mut router);
        shard.trace.note_account(t);
        // Ship even when accounting failed: peers expect exactly one
        // frame per link per round (partial buckets hold only refs
        // charged before the violation), and the `Error` broadcast that
        // follows is what actually stops them.
        let t = shard.trace.begin();
        encoder.ship(me, &router, &outboxes, bounds[me], &transport, false);
        shard.trace.note_ship(t);
        if !ok {
            let error = shard.error.take().expect("failed account sets the error");
            return Err(fail(client, error));
        }
        let t = shard.trace.begin();
        shard.place_frames(graph, me, round, &transport, &bounds);
        shard.trace.note_place(t);
        if let Some(error) = shard.error.take() {
            return Err(fail(client, error));
        }
        if shard.trace.enabled() {
            // Commit the round and stream it to the hub immediately —
            // the hub-side copy is what survives a SIGKILL between this
            // round and the next.
            let frame_bytes = shard.work.frame_bytes as u64;
            let checksum_ns = shard.work.checksum_ns;
            shard
                .trace
                .commit(round as u64, frame_bytes, checksum_ns, attempt);
            if let Some(last) = shard.trace.last() {
                client.send_trace(std::slice::from_ref(last));
            }
        }
        report.stats.absorb(shard.stats);
        report.rounds_run += 1;
        after_round(client, &nodes, &shard, &report);
    }
    client.send_stats(report.rounds_run as u64, digest_of(&nodes), &report.stats);
    client.send_shutdown();
    Ok((report, nodes))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::{graph_digest, HubAddr};
    use crate::{Inbox, Simulator};
    use netdecomp_graph::GraphBuilder;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::time::Duration;

    /// Max-id flooding: every node ends with the maximum vertex id of
    /// its connected component. Deterministic, messages every round.
    #[derive(Debug, Clone, PartialEq, Eq)]
    struct MaxFlood {
        best: u64,
    }

    impl Protocol for MaxFlood {
        fn start(&mut self, _ctx: &Ctx<'_>, out: &mut Outbox) {
            out.broadcast(Bytes::from(self.best.to_le_bytes().to_vec()));
        }

        fn round(&mut self, _ctx: &Ctx<'_>, incoming: Inbox<'_>, out: &mut Outbox) {
            let mut grew = false;
            for msg in incoming.iter() {
                let heard = u64::from_le_bytes(
                    msg.payload().as_slice().try_into().expect("8-byte payload"),
                );
                if heard > self.best {
                    self.best = heard;
                    grew = true;
                }
            }
            if grew {
                out.broadcast(Bytes::from(self.best.to_le_bytes().to_vec()));
            }
        }
    }

    fn ladder(n: usize) -> netdecomp_graph::Graph {
        let mut b = GraphBuilder::new(n);
        for v in 1..n {
            b.add_edge(v - 1, v).unwrap();
            if v >= 2 {
                b.add_edge(v - 2, v).unwrap();
            }
        }
        b.build()
    }

    fn unix_addr(tag: &str) -> HubAddr {
        static SEQ: AtomicUsize = AtomicUsize::new(0);
        let n = SEQ.fetch_add(1, Ordering::Relaxed);
        HubAddr::Unix(std::env::temp_dir().join(format!(
            "netdecomp-worker-{}-{tag}-{n}.sock",
            std::process::id()
        )))
    }

    #[test]
    fn distributed_workers_match_the_sequential_engine() {
        let graph = ladder(23);
        let shards = 3;
        let rounds = 12;
        let digest = graph_digest(&graph);
        let timeout = Duration::from_secs(10);
        let (hub, addr) = crate::transport::socket::Hub::listen(
            &unix_addr("equiv"),
            shards,
            timeout,
            Some(digest),
        )
        .unwrap();
        let distributed: Vec<MaxFlood> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..shards)
                .map(|k| {
                    let graph = &graph;
                    let addr = addr.clone();
                    scope.spawn(move || {
                        let client = HubClient::connect(&addr, k, shards, digest, timeout).unwrap();
                        let config = WorkerConfig {
                            shard: k,
                            shards,
                            rounds,
                            limit: CongestLimit::Unlimited,
                        };
                        run_worker(graph, &client, &config, |id, _ctx| MaxFlood {
                            best: id as u64,
                        })
                        .unwrap()
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().unwrap().1)
                .collect()
        });
        drop(hub);
        let mut reference = Simulator::new(&graph, |id, _ctx| MaxFlood { best: id as u64 });
        reference.run_rounds(rounds).unwrap();
        // Shard ranges are contiguous and ascending, so concatenation is
        // already vertex-id order.
        assert_eq!(distributed.len(), graph.vertex_count());
        assert_eq!(&distributed[..], reference.nodes(), "deployments diverged");
    }

    #[test]
    fn a_worker_that_dies_mid_run_fails_peers_typed() {
        let graph = ladder(12);
        let shards = 2;
        let digest = graph_digest(&graph);
        let timeout = Duration::from_millis(600);
        let (hub, addr) = crate::transport::socket::Hub::listen(
            &unix_addr("death"),
            shards,
            timeout,
            Some(digest),
        )
        .unwrap();
        let error = std::thread::scope(|scope| {
            let survivor = {
                let graph = &graph;
                let addr = addr.clone();
                scope.spawn(move || {
                    let client = HubClient::connect(&addr, 0, shards, digest, timeout).unwrap();
                    let config = WorkerConfig {
                        shard: 0,
                        shards,
                        rounds: 50,
                        limit: CongestLimit::Unlimited,
                    };
                    run_worker(graph, &client, &config, |id, _ctx| MaxFlood {
                        best: id as u64,
                    })
                    .unwrap_err()
                })
            };
            // Shard 1 handshakes, then "crashes": the connection drops
            // without a shutdown frame.
            let casualty = HubClient::connect(&addr, 1, shards, digest, timeout).unwrap();
            drop(casualty);
            survivor.join().unwrap()
        });
        assert!(
            matches!(error, SimError::Transport(_)),
            "want a typed transport error, got {error:?}"
        );
        drop(hub);
    }

    #[test]
    fn an_oversized_fabric_is_a_typed_refusal() {
        let graph = ladder(3);
        let mesh = crate::transport::SocketTransport::unix_mesh_with_timeout(
            1,
            Duration::from_millis(200),
        );
        let config = WorkerConfig {
            shard: 0,
            shards: 64,
            rounds: 1,
            limit: CongestLimit::Unlimited,
        };
        let error = run_worker(&graph, mesh.client(0), &config, |id, _ctx| MaxFlood {
            best: id as u64,
        })
        .unwrap_err();
        assert!(
            matches!(
                &error,
                SimError::Transport(TransportError {
                    cause: TransportCause::Handshake { .. },
                    ..
                })
            ),
            "got {error:?}"
        );
    }
}

//! Control frames: the non-data half of the wire protocol.
//!
//! Data frames (magic `b"NDF"`, see [`crate::frame`]) carry bucket
//! payloads; **control frames** (magic `b"NDC"`) carry everything a
//! process-per-shard deployment previously did through shared memory:
//! the connect-time handshake, round barriers, typed error propagation,
//! and orderly shutdown. Both frame families are self-delimiting with
//! the total length at byte offset 4, so one stream reader peels either
//! kind without knowing which is coming.
//!
//! # Control frame layout
//!
//! All integers little-endian:
//!
//! ```text
//! offset  bytes  field
//! ------  -----  ---------------------------------------------
//!      0      3  magic  b"NDC"
//!      3      1  kind   (1 Hello, 2 RoundBarrier, 3 Error, 4 Shutdown,
//!                        5 Heartbeat, 6 Stats, 7 Trace, 8 Event)
//!      4      4  total frame length (self-delimiting)
//!      8      4  FNV-1a checksum over bytes [0, 8) ++ [12, len)
//!     12      …  kind-specific payload
//! ```
//!
//! Payloads:
//!
//! - `Hello { shard: u32, frame_version: u32, graph_digest: u64,
//!   resume_round: u64, next_ship_round: u64 }` — sent by a client right
//!   after connecting (and after a reconnect); echoed by the hub as the
//!   handshake acknowledgement. `resume_round` asks the hub to replay
//!   this shard's inbound traffic from that round (0 for a freshly
//!   restarted worker, the in-progress collect round for a surviving
//!   client whose link was severed); `next_ship_round` declares the
//!   round this client will ship next, so the hub can discard the
//!   deterministic re-sends of already-relayed rounds.
//! - `RoundBarrier { round: u64 }` — sent by each shard after shipping
//!   a round's data frames; broadcast back by the hub once all shards
//!   have, releasing everyone's collect.
//! - `Error { origin: u32, error: SimError }` — a shard's (or the
//!   hub's) typed failure, binary-encoded; relayed to every peer.
//! - `Shutdown { origin: u32 }` — orderly end of run.
//! - `Heartbeat { shard: u32, round: u64 }` — periodic liveness beacon
//!   a worker's pacer thread writes between data frames; the hub
//!   records the arrival time and reported round so a supervisor can
//!   tell a wedged worker from a slow one.
//! - `Stats { shard: u32, rounds_run: u64, result_digest: u64,
//!   stats: RunStats }` — a worker's end-of-run accounting, streamed
//!   through the fabric (sent *before* `Shutdown`, so the hub's reader
//!   is still alive) instead of being scraped out of stdout; carries
//!   the full per-round breakdown so the launcher can merge reports
//!   with [`crate::RunStats::merge`].
//! - `Trace { shard: u32, records }` — flight-recorder round records
//!   ([`crate::RoundTrace`], nine `u64`s each, preceded by a `u64`
//!   count) streamed by a traced worker as rounds commit; the hub keeps
//!   the last-K per shard so a supervisor's postmortem dump covers a
//!   worker that died mid-run. Sent only under `NETDECOMP_TRACE=1`.
//! - `Event { shard: u32, round: u64, code: u8, detail }` — a
//!   worker-side flight-recorder annotation (checkpoint writes, loads,
//!   and rejections — the [`EVENT_CHECKPOINT_WRITE`] code family),
//!   relayed best-effort like `Trace` so the supervisor's postmortem
//!   timeline covers decisions made inside worker processes.
//!
//! [`SimError`] crosses the wire through a small tagged binary codec
//! ([`encode_sim_error`] / [`decode_sim_error`]). The only lossy corner
//! is [`FrameError::Malformed`]'s `&'static str` detail: the decoder
//! restores it by matching the closed set of detail strings this build
//! emits ([`MALFORMED_DETAILS`]); an unknown detail (a newer peer)
//! falls back to [`MALFORMED_DETAIL_FALLBACK`] rather than failing.

use bytes::Bytes;

use crate::error::{FrameError, SimError, TransportCause, TransportError};
use crate::frame::{fnv1a, FNV_INIT};
use crate::stats::{RoundStats, RunStats};
use crate::trace::RoundTrace;

/// Magic prefix of every control frame.
pub(crate) const CONTROL_MAGIC: &[u8; 3] = b"NDC";

/// Fixed bytes before a control frame's payload.
pub(crate) const CONTROL_HEADER_LEN: usize = 12;

/// Largest control or data frame the stream reader will accept, a
/// desync guard: a corrupted length word must not trigger a
/// multi-gigabyte allocation or an endless read.
pub(crate) const MAX_WIRE_FRAME: usize = 1 << 30;

const KIND_HELLO: u8 = 1;
const KIND_ROUND_BARRIER: u8 = 2;
const KIND_ERROR: u8 = 3;
const KIND_SHUTDOWN: u8 = 4;
const KIND_HEARTBEAT: u8 = 5;
const KIND_STATS: u8 = 6;
const KIND_TRACE: u8 = 7;
const KIND_EVENT: u8 = 8;

/// Encoded size of one [`RoundTrace`] record: nine `u64` fields.
const TRACE_RECORD_LEN: usize = 72;

/// The known [`FrameError::Malformed`] detail strings, used to restore
/// the `&'static str` when an error crosses the wire.
pub(crate) const MALFORMED_DETAILS: &[&str] = &[
    "bytes trail the declared frame length",
    "tables overrun the frame",
    "unknown frame flags",
    "ref points past the payload table",
    "ref slot range is decreasing",
    "payload entry overruns the payload region",
];

/// What a malformed-frame detail decodes to when the sender's string is
/// not in this build's table (a peer from a different build).
pub(crate) const MALFORMED_DETAIL_FALLBACK: &str =
    "malformed frame (remote detail not in this build's table)";

/// One parsed control frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ControlFrame {
    /// Connect-time handshake: who is connecting and what world it
    /// loaded.
    Hello {
        /// The connecting shard's index.
        shard: u32,
        /// The newest data-frame format version the shard encodes.
        frame_version: u32,
        /// Digest of the graph the shard loaded (see
        /// [`crate::transport::graph_digest`]); every shard of a run
        /// must agree.
        graph_digest: u64,
        /// First round of inbound traffic the hub should replay on this
        /// connection: 0 for a fresh process (first connect or a
        /// supervised restart, which recomputes every round), the
        /// in-flight collect round for a surviving client that lost
        /// only its link.
        resume_round: u64,
        /// The round this client will ship next. A restarted worker
        /// deterministically re-ships rounds the hub already relayed;
        /// the hub uses this to count those re-sends as echoes instead
        /// of double-delivering them to peers.
        next_ship_round: u64,
    },
    /// A shard finished shipping `round` (client → hub), or every shard
    /// did and collects may proceed (hub → clients).
    RoundBarrier {
        /// The round the barrier closes.
        round: u64,
    },
    /// A typed failure, relayed so the whole fabric stops with the same
    /// error.
    Error {
        /// Shard that failed (or `u32::MAX` for the hub itself).
        origin: u32,
        /// The failure.
        error: SimError,
    },
    /// Orderly end of run.
    Shutdown {
        /// Shard that finished (or `u32::MAX` for the hub).
        origin: u32,
    },
    /// Periodic liveness beacon from a worker's pacer thread; the hub
    /// records arrival time and round for the supervisor.
    Heartbeat {
        /// Shard that is beating.
        shard: u32,
        /// The round the shard is currently shipping or collecting.
        round: u64,
    },
    /// A worker's end-of-run accounting, sent just before `Shutdown`.
    Stats {
        /// Shard reporting.
        shard: u32,
        /// Rounds the shard fully committed.
        rounds_run: u64,
        /// Protocol-level digest of the shard's final node states (the
        /// launcher cross-checks it against a reference run); semantics
        /// are up to the protocol driver, 0 when unused.
        result_digest: u64,
        /// The shard's accumulated message statistics.
        stats: RunStats,
    },
    /// Flight-recorder round records streamed by a traced worker (one
    /// per committed round in steady state; a burst after a reconnect).
    Trace {
        /// Shard reporting.
        shard: u32,
        /// The records, oldest first.
        records: Vec<RoundTrace>,
    },
    /// A worker-side flight-recorder annotation (checkpoint writes,
    /// loads, and rejections), relayed so the supervisor's postmortem
    /// timeline covers decisions made inside worker processes. Sent
    /// best-effort, like `Trace`.
    Event {
        /// Shard reporting.
        shard: u32,
        /// The round the event is about.
        round: u64,
        /// Event class (an [`EVENT_CHECKPOINT_WRITE`]-family code; the
        /// hub maps unknown codes to a generic kind rather than
        /// refusing the frame).
        code: u8,
        /// Free-form detail for the JSONL record.
        detail: String,
    },
}

/// [`ControlFrame::Event`] class: a checkpoint file was written.
pub const EVENT_CHECKPOINT_WRITE: u8 = 1;
/// [`ControlFrame::Event`] class: a checkpoint was loaded for resume.
pub const EVENT_CHECKPOINT_LOAD: u8 = 2;
/// [`ControlFrame::Event`] class: a checkpoint file failed validation
/// and was skipped.
pub const EVENT_CHECKPOINT_REJECT: u8 = 3;

impl ControlFrame {
    /// Serializes this control frame (checksummed, self-delimiting).
    #[must_use]
    pub fn encode(&self) -> Bytes {
        let mut payload = Vec::new();
        let kind = match self {
            ControlFrame::Hello {
                shard,
                frame_version,
                graph_digest,
                resume_round,
                next_ship_round,
            } => {
                payload.extend_from_slice(&shard.to_le_bytes());
                payload.extend_from_slice(&frame_version.to_le_bytes());
                payload.extend_from_slice(&graph_digest.to_le_bytes());
                payload.extend_from_slice(&resume_round.to_le_bytes());
                payload.extend_from_slice(&next_ship_round.to_le_bytes());
                KIND_HELLO
            }
            ControlFrame::RoundBarrier { round } => {
                payload.extend_from_slice(&round.to_le_bytes());
                KIND_ROUND_BARRIER
            }
            ControlFrame::Error { origin, error } => {
                payload.extend_from_slice(&origin.to_le_bytes());
                encode_sim_error(error, &mut payload);
                KIND_ERROR
            }
            ControlFrame::Shutdown { origin } => {
                payload.extend_from_slice(&origin.to_le_bytes());
                KIND_SHUTDOWN
            }
            ControlFrame::Heartbeat { shard, round } => {
                payload.extend_from_slice(&shard.to_le_bytes());
                payload.extend_from_slice(&round.to_le_bytes());
                KIND_HEARTBEAT
            }
            ControlFrame::Stats {
                shard,
                rounds_run,
                result_digest,
                stats,
            } => {
                payload.extend_from_slice(&shard.to_le_bytes());
                payload.extend_from_slice(&rounds_run.to_le_bytes());
                payload.extend_from_slice(&result_digest.to_le_bytes());
                encode_run_stats(stats, &mut payload);
                KIND_STATS
            }
            ControlFrame::Trace { shard, records } => {
                payload.extend_from_slice(&shard.to_le_bytes());
                put_usize(&mut payload, records.len());
                for record in records {
                    put_u64(&mut payload, record.round);
                    put_u64(&mut payload, record.compute_ns);
                    put_u64(&mut payload, record.account_ns);
                    put_u64(&mut payload, record.ship_ns);
                    put_u64(&mut payload, record.place_ns);
                    put_u64(&mut payload, record.barrier_wait_ns);
                    put_u64(&mut payload, record.frame_bytes);
                    put_u64(&mut payload, record.checksum_ns);
                    put_u64(&mut payload, record.restarts_seen);
                }
                KIND_TRACE
            }
            ControlFrame::Event {
                shard,
                round,
                code,
                detail,
            } => {
                payload.extend_from_slice(&shard.to_le_bytes());
                payload.extend_from_slice(&round.to_le_bytes());
                payload.push(*code);
                put_string(&mut payload, detail);
                KIND_EVENT
            }
        };
        let total = CONTROL_HEADER_LEN + payload.len();
        let mut buf = Vec::with_capacity(total);
        buf.extend_from_slice(CONTROL_MAGIC);
        buf.push(kind);
        buf.extend_from_slice(&(total as u32).to_le_bytes());
        buf.extend_from_slice(&[0; 4]); // checksum, patched below
        buf.extend_from_slice(&payload);
        let sum = fnv1a(fnv1a(FNV_INIT, &buf[..8]), &buf[CONTROL_HEADER_LEN..]);
        buf[8..12].copy_from_slice(&sum.to_le_bytes());
        Bytes::from(buf)
    }

    /// Parses and validates one control frame (full bytes, magic
    /// included).
    ///
    /// # Errors
    ///
    /// Typed [`FrameError`]s, reusing the data-frame vocabulary: bad
    /// magic, truncation, checksum mismatch, unknown kind or a payload
    /// of the wrong shape (`Malformed`).
    pub fn decode(bytes: &[u8]) -> Result<ControlFrame, FrameError> {
        if bytes.len() < CONTROL_HEADER_LEN {
            return Err(FrameError::Truncated {
                needed: CONTROL_HEADER_LEN,
                have: bytes.len(),
            });
        }
        if &bytes[..3] != CONTROL_MAGIC {
            return Err(FrameError::BadMagic);
        }
        let declared = u32::from_le_bytes(bytes[4..8].try_into().expect("4 bytes")) as usize;
        if declared > bytes.len() {
            return Err(FrameError::Truncated {
                needed: declared,
                have: bytes.len(),
            });
        }
        if declared < bytes.len() {
            return Err(FrameError::Malformed {
                detail: "bytes trail the declared frame length",
            });
        }
        let declared_sum = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
        let computed = fnv1a(fnv1a(FNV_INIT, &bytes[..8]), &bytes[CONTROL_HEADER_LEN..]);
        if computed != declared_sum {
            return Err(FrameError::ChecksumMismatch {
                declared: declared_sum,
                computed,
            });
        }
        let mut r = Reader {
            data: &bytes[CONTROL_HEADER_LEN..],
        };
        let malformed = FrameError::Malformed {
            detail: "control payload has the wrong shape",
        };
        let frame = match bytes[3] {
            KIND_HELLO => ControlFrame::Hello {
                shard: r.u32().ok_or(malformed)?,
                frame_version: r.u32().ok_or(malformed)?,
                graph_digest: r.u64().ok_or(malformed)?,
                resume_round: r.u64().ok_or(malformed)?,
                next_ship_round: r.u64().ok_or(malformed)?,
            },
            KIND_ROUND_BARRIER => ControlFrame::RoundBarrier {
                round: r.u64().ok_or(malformed)?,
            },
            KIND_ERROR => ControlFrame::Error {
                origin: r.u32().ok_or(malformed)?,
                error: decode_sim_error(&mut r).ok_or(malformed)?,
            },
            KIND_SHUTDOWN => ControlFrame::Shutdown {
                origin: r.u32().ok_or(malformed)?,
            },
            KIND_HEARTBEAT => ControlFrame::Heartbeat {
                shard: r.u32().ok_or(malformed)?,
                round: r.u64().ok_or(malformed)?,
            },
            KIND_STATS => ControlFrame::Stats {
                shard: r.u32().ok_or(malformed)?,
                rounds_run: r.u64().ok_or(malformed)?,
                result_digest: r.u64().ok_or(malformed)?,
                stats: decode_run_stats(&mut r).ok_or(malformed)?,
            },
            KIND_TRACE => ControlFrame::Trace {
                shard: r.u32().ok_or(malformed)?,
                records: decode_trace_records(&mut r).ok_or(malformed)?,
            },
            KIND_EVENT => ControlFrame::Event {
                shard: r.u32().ok_or(malformed)?,
                round: r.u64().ok_or(malformed)?,
                code: r.u8().ok_or(malformed)?,
                detail: r.string().ok_or(malformed)?,
            },
            _ => {
                return Err(FrameError::Malformed {
                    detail: "unknown control frame kind",
                })
            }
        };
        if !r.data.is_empty() {
            return Err(FrameError::Malformed {
                detail: "bytes trail the control payload",
            });
        }
        Ok(frame)
    }
}

/// Cursor over a control payload.
struct Reader<'a> {
    data: &'a [u8],
}

impl Reader<'_> {
    fn bytes(&mut self, n: usize) -> Option<&[u8]> {
        if self.data.len() < n {
            return None;
        }
        let (head, rest) = self.data.split_at(n);
        self.data = rest;
        Some(head)
    }

    fn u8(&mut self) -> Option<u8> {
        self.bytes(1).map(|b| b[0])
    }

    fn u32(&mut self) -> Option<u32> {
        self.bytes(4)
            .map(|b| u32::from_le_bytes(b.try_into().expect("4 bytes")))
    }

    fn u64(&mut self) -> Option<u64> {
        self.bytes(8)
            .map(|b| u64::from_le_bytes(b.try_into().expect("8 bytes")))
    }

    fn usize64(&mut self) -> Option<usize> {
        self.u64().and_then(|v| usize::try_from(v).ok())
    }

    fn string(&mut self) -> Option<String> {
        let len = self.u32()? as usize;
        let raw = self.bytes(len)?;
        String::from_utf8(raw.to_vec()).ok()
    }
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_usize(out: &mut Vec<u8>, v: usize) {
    put_u64(out, v as u64);
}

fn put_string(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

fn encode_run_stats(stats: &RunStats, out: &mut Vec<u8>) {
    put_usize(out, stats.rounds);
    put_usize(out, stats.total_messages);
    put_usize(out, stats.total_bytes);
    put_usize(out, stats.max_edge_bytes);
    put_usize(out, stats.per_round.len());
    for r in &stats.per_round {
        put_usize(out, r.round);
        put_usize(out, r.messages);
        put_usize(out, r.bytes);
        put_usize(out, r.max_edge_bytes);
    }
}

fn decode_run_stats(r: &mut Reader<'_>) -> Option<RunStats> {
    let mut stats = RunStats {
        rounds: r.usize64()?,
        total_messages: r.usize64()?,
        total_bytes: r.usize64()?,
        max_edge_bytes: r.usize64()?,
        per_round: Vec::new(),
    };
    let entries = r.usize64()?;
    // The frame length (≤ MAX_WIRE_FRAME) already bounds the entry
    // count; reject counts the remaining payload cannot hold so a
    // corrupt count cannot trigger a huge reservation.
    if entries > r.data.len() / 32 {
        return None;
    }
    stats.per_round.reserve(entries);
    for _ in 0..entries {
        stats.per_round.push(RoundStats {
            round: r.usize64()?,
            messages: r.usize64()?,
            bytes: r.usize64()?,
            max_edge_bytes: r.usize64()?,
        });
    }
    Some(stats)
}

fn decode_trace_records(r: &mut Reader<'_>) -> Option<Vec<RoundTrace>> {
    let entries = r.usize64()?;
    // Same allocation guard as the stats decoder: a corrupt count the
    // remaining payload cannot hold is rejected, not reserved.
    if entries > r.data.len() / TRACE_RECORD_LEN {
        return None;
    }
    let mut records = Vec::with_capacity(entries);
    for _ in 0..entries {
        records.push(RoundTrace {
            round: r.u64()?,
            compute_ns: r.u64()?,
            account_ns: r.u64()?,
            ship_ns: r.u64()?,
            place_ns: r.u64()?,
            barrier_wait_ns: r.u64()?,
            frame_bytes: r.u64()?,
            checksum_ns: r.u64()?,
            restarts_seen: r.u64()?,
        });
    }
    Some(records)
}

/// Binary-encodes a [`SimError`] into `out` (appended).
pub(crate) fn encode_sim_error(error: &SimError, out: &mut Vec<u8>) {
    match error {
        SimError::NotNeighbor { from, to } => {
            out.push(1);
            put_usize(out, *from);
            put_usize(out, *to);
        }
        SimError::CongestViolation {
            from,
            to,
            bytes,
            limit,
            round,
        } => {
            out.push(2);
            put_usize(out, *from);
            put_usize(out, *to);
            put_usize(out, *bytes);
            put_usize(out, *limit);
            put_usize(out, *round);
        }
        SimError::RoundLimitExceeded { limit } => {
            out.push(3);
            put_usize(out, *limit);
        }
        SimError::Nondeterminism { round, vertex } => {
            out.push(4);
            put_usize(out, *round);
            put_usize(out, *vertex);
        }
        SimError::Frame {
            shard,
            round,
            error,
        } => {
            out.push(5);
            put_usize(out, *shard);
            put_usize(out, *round);
            encode_frame_error(error, out);
        }
        SimError::Transport(TransportError {
            shard,
            round,
            cause,
        }) => {
            out.push(6);
            put_usize(out, *shard);
            put_usize(out, *round);
            encode_cause(cause, out);
        }
    }
}

fn encode_frame_error(error: &FrameError, out: &mut Vec<u8>) {
    match error {
        FrameError::Truncated { needed, have } => {
            out.push(1);
            put_usize(out, *needed);
            put_usize(out, *have);
        }
        FrameError::BadMagic => out.push(2),
        FrameError::VersionMismatch { found, min, max } => {
            out.push(3);
            out.extend_from_slice(&[*found, *min, *max]);
        }
        FrameError::ChecksumMismatch { declared, computed } => {
            out.push(4);
            out.extend_from_slice(&declared.to_le_bytes());
            out.extend_from_slice(&computed.to_le_bytes());
        }
        FrameError::Malformed { detail } => {
            out.push(5);
            put_string(out, detail);
        }
        FrameError::Misrouted { expected, found } => {
            out.push(6);
            put_usize(out, *expected);
            put_usize(out, *found);
        }
        FrameError::MissingFrame { sender } => {
            out.push(7);
            put_usize(out, *sender);
        }
        FrameError::ForeignSlots { from, lo, hi } => {
            out.push(8);
            put_usize(out, *from);
            put_usize(out, *lo);
            put_usize(out, *hi);
        }
    }
}

fn encode_cause(cause: &TransportCause, out: &mut Vec<u8>) {
    match cause {
        TransportCause::Timeout { waited_ms } => {
            out.push(1);
            put_u64(out, *waited_ms);
        }
        TransportCause::Disconnected => out.push(2),
        TransportCause::Handshake { detail } => {
            out.push(3);
            put_string(out, detail);
        }
        TransportCause::Io { detail } => {
            out.push(4);
            put_string(out, detail);
        }
        TransportCause::Remote { message } => {
            out.push(5);
            put_string(out, message);
        }
    }
}

fn decode_sim_error(r: &mut Reader<'_>) -> Option<SimError> {
    Some(match r.u8()? {
        1 => SimError::NotNeighbor {
            from: r.usize64()?,
            to: r.usize64()?,
        },
        2 => SimError::CongestViolation {
            from: r.usize64()?,
            to: r.usize64()?,
            bytes: r.usize64()?,
            limit: r.usize64()?,
            round: r.usize64()?,
        },
        3 => SimError::RoundLimitExceeded {
            limit: r.usize64()?,
        },
        4 => SimError::Nondeterminism {
            round: r.usize64()?,
            vertex: r.usize64()?,
        },
        5 => SimError::Frame {
            shard: r.usize64()?,
            round: r.usize64()?,
            error: decode_frame_error(r)?,
        },
        6 => SimError::Transport(TransportError {
            shard: r.usize64()?,
            round: r.usize64()?,
            cause: decode_cause(r)?,
        }),
        _ => return None,
    })
}

fn decode_frame_error(r: &mut Reader<'_>) -> Option<FrameError> {
    Some(match r.u8()? {
        1 => FrameError::Truncated {
            needed: r.usize64()?,
            have: r.usize64()?,
        },
        2 => FrameError::BadMagic,
        3 => FrameError::VersionMismatch {
            found: r.u8()?,
            min: r.u8()?,
            max: r.u8()?,
        },
        4 => FrameError::ChecksumMismatch {
            declared: r.u32()?,
            computed: r.u32()?,
        },
        5 => {
            let detail = r.string()?;
            FrameError::Malformed {
                detail: MALFORMED_DETAILS
                    .iter()
                    .find(|known| ***known == detail)
                    .copied()
                    .unwrap_or(MALFORMED_DETAIL_FALLBACK),
            }
        }
        6 => FrameError::Misrouted {
            expected: r.usize64()?,
            found: r.usize64()?,
        },
        7 => FrameError::MissingFrame {
            sender: r.usize64()?,
        },
        8 => FrameError::ForeignSlots {
            from: r.usize64()?,
            lo: r.usize64()?,
            hi: r.usize64()?,
        },
        _ => return None,
    })
}

fn decode_cause(r: &mut Reader<'_>) -> Option<TransportCause> {
    Some(match r.u8()? {
        1 => TransportCause::Timeout {
            waited_ms: r.u64()?,
        },
        2 => TransportCause::Disconnected,
        3 => TransportCause::Handshake {
            detail: r.string()?,
        },
        4 => TransportCause::Io {
            detail: r.string()?,
        },
        5 => TransportCause::Remote {
            message: r.string()?,
        },
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_errors() -> Vec<SimError> {
        vec![
            SimError::NotNeighbor { from: 3, to: 9 },
            SimError::CongestViolation {
                from: 0,
                to: 1,
                bytes: 64,
                limit: 16,
                round: 3,
            },
            SimError::RoundLimitExceeded { limit: 40 },
            SimError::Nondeterminism {
                round: 4,
                vertex: 2,
            },
            SimError::Frame {
                shard: 3,
                round: 7,
                error: FrameError::ChecksumMismatch {
                    declared: 1,
                    computed: 2,
                },
            },
            SimError::Frame {
                shard: 0,
                round: 0,
                error: FrameError::Malformed {
                    detail: "tables overrun the frame",
                },
            },
            SimError::Frame {
                shard: 1,
                round: 2,
                error: FrameError::ForeignSlots {
                    from: 11,
                    lo: 4,
                    hi: 9,
                },
            },
            SimError::Transport(TransportError {
                shard: 2,
                round: 5,
                cause: TransportCause::Timeout { waited_ms: 750 },
            }),
            SimError::Transport(TransportError {
                shard: 1,
                round: 0,
                cause: TransportCause::Handshake {
                    detail: "graph digest mismatch".into(),
                },
            }),
        ]
    }

    #[test]
    fn control_frames_round_trip() {
        let mut sample_stats = RunStats::default();
        sample_stats.absorb(RoundStats {
            round: 0,
            messages: 12,
            bytes: 96,
            max_edge_bytes: 8,
        });
        sample_stats.absorb(RoundStats {
            round: 1,
            messages: 3,
            bytes: 24,
            max_edge_bytes: 8,
        });
        let mut frames = vec![
            ControlFrame::Hello {
                shard: 3,
                frame_version: 2,
                graph_digest: 0xdead_beef_cafe_f00d,
                resume_round: 17,
                next_ship_round: 18,
            },
            ControlFrame::RoundBarrier { round: 41 },
            ControlFrame::Shutdown { origin: 7 },
            ControlFrame::Heartbeat { shard: 2, round: 9 },
            ControlFrame::Stats {
                shard: 1,
                rounds_run: 2,
                result_digest: 0x1234_5678_9abc_def0,
                stats: sample_stats,
            },
            ControlFrame::Stats {
                shard: 0,
                rounds_run: 0,
                result_digest: 0,
                stats: RunStats::default(),
            },
            ControlFrame::Trace {
                shard: 2,
                records: vec![
                    RoundTrace {
                        round: 7,
                        compute_ns: 1200,
                        account_ns: 310,
                        ship_ns: 450,
                        place_ns: 980,
                        barrier_wait_ns: 150,
                        frame_bytes: 4096,
                        checksum_ns: 210,
                        restarts_seen: 1,
                    },
                    RoundTrace {
                        round: 8,
                        ..RoundTrace::default()
                    },
                ],
            },
            ControlFrame::Trace {
                shard: 0,
                records: Vec::new(),
            },
            ControlFrame::Event {
                shard: 1,
                round: 9,
                code: EVENT_CHECKPOINT_REJECT,
                detail: "digest mismatch: ckpt-s1-r00000009.ndk".into(),
            },
            ControlFrame::Event {
                shard: 0,
                round: 0,
                code: 200,
                detail: String::new(),
            },
        ];
        for error in sample_errors() {
            frames.push(ControlFrame::Error { origin: 1, error });
        }
        for frame in frames {
            let encoded = frame.encode();
            let decoded = ControlFrame::decode(encoded.as_slice()).unwrap();
            assert_eq!(decoded, frame);
        }
    }

    #[test]
    fn every_malformed_detail_survives_the_wire() {
        for &detail in MALFORMED_DETAILS {
            let error = SimError::Frame {
                shard: 0,
                round: 1,
                error: FrameError::Malformed { detail },
            };
            let encoded = ControlFrame::Error {
                origin: 0,
                error: error.clone(),
            }
            .encode();
            let ControlFrame::Error { error: back, .. } =
                ControlFrame::decode(encoded.as_slice()).unwrap()
            else {
                panic!("wrong kind");
            };
            assert_eq!(back, error, "detail {detail:?}");
        }
    }

    #[test]
    fn corruption_is_a_typed_rejection() {
        let encoded = ControlFrame::RoundBarrier { round: 9 }.encode();
        for i in 0..encoded.len() {
            let mut bad = encoded.as_slice().to_vec();
            bad[i] ^= 0x20;
            let verdict = ControlFrame::decode(&bad);
            assert!(
                verdict.is_err(),
                "flipping byte {i} went unnoticed: {verdict:?}"
            );
        }
    }

    #[test]
    fn an_absurd_stats_entry_count_is_rejected_not_allocated() {
        // A validly-checksummed frame whose per-round entry count far
        // exceeds what the payload can hold must fail typed instead of
        // reserving gigabytes.
        let encoded = ControlFrame::Stats {
            shard: 0,
            rounds_run: 1,
            result_digest: 0,
            stats: RunStats::default(),
        }
        .encode();
        let mut bad = encoded.as_slice().to_vec();
        // Payload layout: shard u32, rounds_run u64, result_digest u64,
        // rounds u64, total_messages u64, total_bytes u64,
        // max_edge_bytes u64, entry count u64.
        let count_at = CONTROL_HEADER_LEN + 4 + 8 + 8 + 4 * 8;
        bad[count_at..count_at + 8].copy_from_slice(&u64::MAX.to_le_bytes());
        let sum = fnv1a(fnv1a(FNV_INIT, &bad[..8]), &bad[CONTROL_HEADER_LEN..]);
        bad[8..12].copy_from_slice(&sum.to_le_bytes());
        assert!(matches!(
            ControlFrame::decode(&bad),
            Err(FrameError::Malformed { .. })
        ));
    }

    #[test]
    fn an_absurd_trace_record_count_is_rejected_not_allocated() {
        let encoded = ControlFrame::Trace {
            shard: 0,
            records: Vec::new(),
        }
        .encode();
        let mut bad = encoded.as_slice().to_vec();
        // Payload layout: shard u32, then the record count u64.
        let count_at = CONTROL_HEADER_LEN + 4;
        bad[count_at..count_at + 8].copy_from_slice(&u64::MAX.to_le_bytes());
        let sum = fnv1a(fnv1a(FNV_INIT, &bad[..8]), &bad[CONTROL_HEADER_LEN..]);
        bad[8..12].copy_from_slice(&sum.to_le_bytes());
        assert!(matches!(
            ControlFrame::decode(&bad),
            Err(FrameError::Malformed { .. })
        ));
    }

    #[test]
    fn data_frame_magic_is_rejected_here() {
        let mut b = crate::frame::FrameBuilder::new();
        b.begin(0, 1);
        let data = b.finish();
        assert_eq!(
            ControlFrame::decode(data.as_slice()),
            Err(FrameError::BadMagic)
        );
    }
}

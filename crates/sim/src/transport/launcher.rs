//! Process-per-shard orchestration: bind a hub, spawn workers, reap
//! them with a deadline.
//!
//! The launcher owns the lifecycle the ISSUE's robustness contract
//! hinges on: **no child outcome can wedge the parent**. The hub
//! notices a dead or silent worker within the fabric timeout and halts
//! with a typed error; the launcher waits out at most its own deadline,
//! kills whatever is still running, reaps every child, and returns the
//! most structured error available — the fabric's first
//! [`SimError`] if one was broadcast, a synthesized
//! [`SimError::Transport`] otherwise.
//!
//! The launcher does not know how to start a worker — the caller
//! supplies a spawn closure mapping `(shard, hub address)` to a
//! [`Child`]. The `netdecomp` binary's worker mode reads the
//! environment variables named by the `ENV_*` constants here.
//!
//! [`launch`] is the one-shot lifecycle: any worker failure ends the
//! run with a typed error. [`supervise`] is the self-healing lifecycle:
//! a crashed or wedged worker is killed (if needed), relaunched with
//! exponential backoff and deterministic jitter up to a restart budget,
//! and re-admitted by the hub's replay log so the run still completes
//! bit-identically; only an exhausted budget or an unrecoverable
//! protocol error surfaces to the caller.

use std::io;
use std::path::PathBuf;
use std::process::Child;
use std::time::{Duration, Instant};

use crate::error::{SimError, TransportCause, TransportError};
use crate::trace::FlightRecorder;

use super::fault::mix;
use super::socket::{Hub, HubOptions, EVICTED_DETAIL_PREFIX};
use super::{HubAddr, WorkerStats};

/// Environment variable carrying a worker's shard index.
pub const ENV_SHARD: &str = "NETDECOMP_WORKER_SHARD";
/// Environment variable carrying the fabric's shard count.
pub const ENV_SHARDS: &str = "NETDECOMP_WORKER_SHARDS";
/// Environment variable carrying the hub address
/// (`unix:<path>` or `tcp:<addr>`, the [`HubAddr`] string form).
pub const ENV_ADDR: &str = "NETDECOMP_WORKER_ADDR";
/// Environment variable carrying the round budget.
pub const ENV_ROUNDS: &str = "NETDECOMP_WORKER_ROUNDS";
/// Environment variable carrying the fabric timeout in whole
/// milliseconds — the same knob [`super::frame_timeout`] reads. A
/// launcher that was itself invoked with `--timeout-ms` propagates the
/// value to its workers through this variable so both ends of every
/// link agree on the deadline.
pub const ENV_TIMEOUT: &str = "NETDECOMP_FRAME_TIMEOUT_MS";
/// Environment variable carrying the worker heartbeat interval in whole
/// milliseconds (0 or unset: no heartbeats).
pub const ENV_HEARTBEAT: &str = "NETDECOMP_HEARTBEAT_MS";
/// Environment variable carrying the hub replay window in rounds — the
/// same knob [`super::replay_window`] reads.
pub const ENV_REPLAY_WINDOW: &str = "NETDECOMP_REPLAY_WINDOW";
/// Environment variable carrying a worker's restart generation: 0 on
/// the initial spawn, the supervisor's attempt count on a relaunch. A
/// traced worker stamps the value into every [`crate::RoundTrace`] it
/// records (`restarts_seen`), so a postmortem can tell which process
/// generation produced a round. Read by
/// [`crate::trace::worker_attempt`].
pub const ENV_ATTEMPT: &str = "NETDECOMP_WORKER_ATTEMPT";
/// Environment variable carrying the checkpoint directory workers write
/// their periodic state snapshots into (and load them back from on a
/// restart). Unset or empty: no checkpointing. Read by
/// [`super::checkpoint_dir`].
pub const ENV_CHECKPOINT_DIR: &str = "NETDECOMP_CHECKPOINT_DIR";
/// Environment variable carrying the checkpoint interval in rounds —
/// every multiple of it, a worker writes a checkpoint at the barrier.
/// 0 or unset disables checkpointing. Read by
/// [`super::checkpoint_interval`].
pub const ENV_CHECKPOINT_INTERVAL: &str = "NETDECOMP_CHECKPOINT_INTERVAL";

/// A hub socket path in the system temp directory, unique to this
/// process and call.
#[must_use]
pub fn temp_hub_addr() -> HubAddr {
    use std::sync::atomic::{AtomicUsize, Ordering};
    static SEQ: AtomicUsize = AtomicUsize::new(0);
    let n = SEQ.fetch_add(1, Ordering::Relaxed);
    HubAddr::Unix(
        std::env::temp_dir().join(format!("netdecomp-hub-{}-{n}.sock", std::process::id())),
    )
}

/// Everything a launch needs beyond the spawn closure.
#[derive(Debug, Clone)]
pub struct LaunchOptions {
    /// Worker (= shard) count.
    pub shards: usize,
    /// The fabric timeout handed to the hub (per blocking point).
    pub timeout: Duration,
    /// Overall deadline for the whole run; stragglers are killed when it
    /// passes. Must comfortably exceed `timeout` plus the expected run
    /// time.
    pub deadline: Duration,
    /// Graph digest every worker must present ([`super::graph_digest`]);
    /// `None` accepts whatever the first worker presents and holds the
    /// rest to it.
    pub graph_digest: Option<u64>,
    /// Hub address to bind; `None` picks [`temp_hub_addr`].
    pub addr: Option<HubAddr>,
}

impl LaunchOptions {
    /// Defaults: fabric timeout from [`super::frame_timeout`], overall
    /// deadline six times that, temp-path Unix hub, digest unpinned.
    #[must_use]
    pub fn new(shards: usize) -> LaunchOptions {
        let timeout = super::frame_timeout();
        LaunchOptions {
            shards,
            timeout,
            deadline: timeout * 6,
            graph_digest: None,
            addr: None,
        }
    }
}

/// How one worker process ended.
#[derive(Debug)]
pub struct WorkerExit {
    /// The worker's shard index.
    pub shard: usize,
    /// Exit code; `None` when the worker died to a signal (including the
    /// launcher's own deadline kill).
    pub code: Option<i32>,
    /// Captured stdout (empty unless the spawn closure piped it).
    pub stdout: Vec<u8>,
    /// Captured stderr (empty unless the spawn closure piped it).
    pub stderr: Vec<u8>,
}

/// The outcome of a fully-successful launch.
#[derive(Debug)]
pub struct LaunchReport {
    /// Per-worker exits, indexed by shard.
    pub exits: Vec<WorkerExit>,
}

/// Binds the hub, spawns one worker per shard, and reaps the run.
///
/// The listener is bound *before* any worker starts, so a worker that
/// connects immediately queues in the accept backlog rather than
/// racing. Spawn order is shard order; a spawn failure kills the
/// already-started workers and returns immediately.
///
/// # Errors
///
/// - the fabric's first broadcast [`SimError`], when the hub halted on
///   one (a worker crashed, timed out, desynced, or reported a protocol
///   violation);
/// - [`TransportCause::Timeout`] when the fabric was still not halted at
///   the deadline;
/// - [`TransportCause::Io`] when the hub could not bind, a worker could
///   not be spawned, or a worker exited nonzero without reporting
///   anything.
pub fn launch(
    options: &LaunchOptions,
    mut spawn: impl FnMut(usize, &HubAddr) -> io::Result<Child>,
) -> Result<LaunchReport, SimError> {
    let requested = options.addr.clone().unwrap_or_else(temp_hub_addr);
    let synthesized = |shard: usize, cause: TransportCause| {
        SimError::Transport(TransportError {
            shard,
            round: 0,
            cause,
        })
    };
    let (mut hub, addr) = Hub::listen(
        &requested,
        options.shards,
        options.timeout,
        options.graph_digest,
    )
    .map_err(|e| {
        synthesized(
            0,
            TransportCause::Io {
                detail: format!("hub bind on {requested} failed: {e}"),
            },
        )
    })?;
    let mut children: Vec<(usize, Child)> = Vec::with_capacity(options.shards);
    for shard in 0..options.shards {
        match spawn(shard, &addr) {
            Ok(child) => children.push((shard, child)),
            Err(e) => {
                for (_, child) in &mut children {
                    let _ = child.kill();
                }
                for (_, child) in &mut children {
                    let _ = child.wait();
                }
                hub.stop_and_join();
                return Err(synthesized(
                    shard,
                    TransportCause::Io {
                        detail: format!("spawning worker {shard} failed: {e}"),
                    },
                ));
            }
        }
    }
    let started = Instant::now();
    let halted = hub.wait_halted(options.deadline);
    let fabric_error = hub.first_error();
    // Grace window: halted workers exit on their own; give them one
    // fabric timeout before the kill.
    let grace_end = Instant::now() + options.timeout;
    loop {
        let all_exited = children
            .iter_mut()
            .all(|(_, child)| matches!(child.try_wait(), Ok(Some(_))));
        if all_exited || Instant::now() >= grace_end {
            break;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    for (_, child) in &mut children {
        if !matches!(child.try_wait(), Ok(Some(_))) {
            let _ = child.kill();
        }
    }
    let mut exits = Vec::with_capacity(children.len());
    for (shard, child) in children {
        match child.wait_with_output() {
            Ok(output) => exits.push(WorkerExit {
                shard,
                code: output.status.code(),
                stdout: output.stdout,
                stderr: output.stderr,
            }),
            Err(_) => exits.push(WorkerExit {
                shard,
                code: None,
                stdout: Vec::new(),
                stderr: Vec::new(),
            }),
        }
    }
    hub.stop_and_join();
    if let Some(error) = fabric_error {
        return Err(error);
    }
    if !halted {
        return Err(synthesized(
            first_bad_exit(&exits).unwrap_or(0),
            TransportCause::Timeout {
                waited_ms: started.elapsed().as_millis() as u64,
            },
        ));
    }
    if let Some(shard) = first_bad_exit(&exits) {
        let exit = &exits[shard];
        return Err(synthesized(
            shard,
            TransportCause::Io {
                detail: match exit.code {
                    Some(code) => format!("worker {shard} exited with status {code}"),
                    None => format!("worker {shard} was killed by a signal"),
                },
            },
        ));
    }
    Ok(LaunchReport { exits })
}

fn first_bad_exit(exits: &[WorkerExit]) -> Option<usize> {
    exits.iter().position(|e| e.code != Some(0))
}

/// Everything a supervised launch needs beyond the spawn closure.
#[derive(Debug, Clone)]
pub struct SuperviseOptions {
    /// Worker (= shard) count.
    pub shards: usize,
    /// The fabric timeout handed to the hub (per blocking point).
    pub timeout: Duration,
    /// Overall wall-clock budget for the whole supervised run,
    /// restarts included. When it passes, everything is killed and the
    /// caller gets a typed timeout naming the least-advanced shard.
    pub deadline: Duration,
    /// Graph digest every worker must present; `None` accepts the first
    /// worker's and holds the rest to it.
    pub graph_digest: Option<u64>,
    /// Hub address to bind; `None` picks [`temp_hub_addr`].
    pub addr: Option<HubAddr>,
    /// Restart budget **per shard**: how many relaunches a single shard
    /// may consume before the supervisor declares it lost. Also bounds
    /// whole-run restarts (the evicted-replay-window fallback).
    pub max_restarts: usize,
    /// Base restart delay; attempt `n` waits `backoff × 2^(n-1)` plus
    /// deterministic jitter.
    pub backoff: Duration,
    /// Seed for the restart jitter, so a supervised chaos run is
    /// reproducible end to end.
    pub backoff_seed: u64,
    /// Expected worker heartbeat interval. A stalled fabric whose prime
    /// suspect has not beaten for longer than this counts a missed
    /// heartbeat before the kill. Zero disables the bookkeeping.
    pub heartbeat: Duration,
    /// How long the global barrier round may sit still (with live,
    /// unfinished workers) before the supervisor declares a wedge and
    /// kills the least-advanced shard. Must exceed the longest honest
    /// round, including replay after a restart — but stay well *under*
    /// the fabric timeout: surviving peers wait out at most one timeout
    /// per collect, and the whole kill + relaunch + re-run must land
    /// inside their patience or the wedge degrades into a typed timeout
    /// instead of healing.
    pub stall: Duration,
    /// Chaos hook: SIGKILL this shard the first time its committed (or
    /// heartbeat-reported) round reaches the given value. Exercises the
    /// crash-recovery path from the outside, no worker cooperation
    /// needed. Fires at most once per supervised run, and is sampled at
    /// the supervision tick — a run faster than the tick can finish
    /// before the kill lands, so pair it with slowed rounds when the
    /// kill must happen.
    pub kill_at: Option<(usize, u64)>,
    /// Rounds of replay history the hub retains (see
    /// [`super::replay_window`]).
    pub replay_window: u64,
    /// Where to write the flight-recorder JSONL dump (worker ring
    /// snapshots merged with the supervisor's restart / chaos / stall
    /// annotations — schema in the [`crate::trace`] module docs).
    /// Written on *every* outcome, healed or fatal; `None` disables the
    /// recorder. Defaults to `NETDECOMP_TRACE_OUT`.
    pub trace_out: Option<PathBuf>,
}

impl SuperviseOptions {
    /// Defaults: fabric timeout from [`super::frame_timeout`], deadline
    /// twelve times that (restarts need headroom), three restarts per
    /// shard, 50 ms base backoff, stall window of a third of a timeout
    /// (at least 250 ms), no chaos kill.
    #[must_use]
    pub fn new(shards: usize) -> SuperviseOptions {
        let timeout = super::frame_timeout();
        SuperviseOptions {
            shards,
            timeout,
            deadline: timeout * 12,
            graph_digest: None,
            addr: None,
            max_restarts: 3,
            backoff: Duration::from_millis(50),
            backoff_seed: 0,
            heartbeat: Duration::from_millis(100),
            stall: (timeout / 3).max(Duration::from_millis(250)),
            kill_at: None,
            replay_window: super::replay_window(),
            trace_out: crate::trace::trace_out(),
        }
    }
}

/// The outcome of a fully-successful supervised run.
#[derive(Debug)]
pub struct SuperviseReport {
    /// Per-shard end-of-run reports streamed to the hub as `Stats`
    /// control frames (replacing stdout parsing). `None` for a shard
    /// whose final frame never arrived.
    pub worker_stats: Vec<Option<WorkerStats>>,
    /// Per-shard relaunch counts (initial spawns not included).
    pub restarts: Vec<usize>,
    /// Whole-run restarts taken because a resume fell below the replay
    /// window.
    pub full_run_restarts: usize,
    /// Hub-side re-admissions (process restarts + link reconnects).
    pub workers_restarted: usize,
    /// Rounds replayed to reconnecting shards from the hub's logs.
    pub rounds_replayed: usize,
    /// Heartbeats judged overdue before a supervisor intervention.
    pub heartbeats_missed: usize,
    /// Workers that resumed from an on-disk checkpoint instead of
    /// re-running from round 0 (their `checkpoint_load` event reached
    /// the hub).
    pub checkpoint_restores: usize,
}

/// One supervised shard's lifecycle state.
enum Slot {
    Running(Child),
    /// Exited 0 but the hub has not yet seen its `Shutdown` — give the
    /// in-flight frame one settle window before calling it a crash.
    Settling(Instant),
    /// Relaunch scheduled (backoff + jitter).
    Backoff(Instant),
    Finished,
    Lost,
}

/// The poll cadence of the supervision loop.
const SUPERVISE_TICK: Duration = Duration::from_millis(10);

/// Binds the hub, spawns one worker per shard, and keeps the run alive
/// through worker crashes and wedges.
///
/// The spawn closure receives `(shard, hub address, attempt)` where
/// `attempt` is 0 for the initial spawn and counts up across restarts
/// (cumulative across whole-run restarts, so a chaos hook armed only
/// for attempt 0 stays disarmed on every relaunch). Restarted workers
/// are plain re-spawns: a worker re-runs deterministically from round
/// 0, re-handshakes, and the hub echo-discards re-shipped rounds while
/// replaying the inbound history the worker missed.
///
/// Do not pipe worker stdout/stderr through the spawn closure unless
/// something drains them — the supervisor only reaps exit statuses, so
/// a filled pipe would wedge the child (and then be killed as one).
///
/// # Errors
///
/// - the fabric's first broadcast [`SimError`] — including the typed
///   `Transport` error naming the shard whose restart budget ran out;
/// - [`TransportCause::Timeout`] naming the least-advanced shard when
///   the overall deadline passes first.
pub fn supervise(
    options: &SuperviseOptions,
    mut spawn: impl FnMut(usize, &HubAddr, usize) -> io::Result<Child>,
) -> Result<SuperviseReport, SimError> {
    let mut recorder = options.trace_out.as_ref().map(|_| FlightRecorder::new());
    let result = supervise_loop(options, &mut spawn, &mut recorder);
    if let (Some(recorder), Some(path)) = (&mut recorder, &options.trace_out) {
        match &result {
            Ok(report) => recorder.event(
                None,
                0,
                "halt",
                format!(
                    "run complete: restarts={:?} full_run_restarts={} rounds_replayed={}",
                    report.restarts, report.full_run_restarts, report.rounds_replayed
                ),
            ),
            Err(error) => recorder.event(None, 0, "fatal", error.to_string()),
        }
        // The dump is best-effort postmortem evidence; an unwritable
        // path must not turn a healed run into a failed one.
        let _ = recorder.dump_to(path);
    }
    result
}

/// The supervision loop proper: one hub generation per iteration,
/// re-entered on a whole-run restart.
fn supervise_loop(
    options: &SuperviseOptions,
    spawn: &mut impl FnMut(usize, &HubAddr, usize) -> io::Result<Child>,
    recorder: &mut Option<FlightRecorder>,
) -> Result<SuperviseReport, SimError> {
    let started = Instant::now();
    let mut attempts = vec![0usize; options.shards];
    let mut full_run_restarts = 0usize;
    let mut kill_at_armed = options.kill_at;
    loop {
        let outcome = supervise_one_hub(
            options,
            spawn,
            started,
            &mut attempts,
            &mut kill_at_armed,
            recorder,
        )?;
        match outcome {
            HubOutcome::Done(mut report) => {
                report.full_run_restarts = full_run_restarts;
                return Ok(report);
            }
            HubOutcome::RestartRun => {
                full_run_restarts += 1;
                if let Some(r) = recorder {
                    r.event(
                        None,
                        0,
                        "run_restart",
                        format!(
                            "whole-run restart #{full_run_restarts}: resume fell below the \
                             replay window"
                        ),
                    );
                }
                if full_run_restarts > options.max_restarts.max(1) {
                    return Err(SimError::Transport(TransportError {
                        shard: 0,
                        round: 0,
                        cause: TransportCause::Io {
                            detail: format!(
                                "whole-run restart budget exhausted after {full_run_restarts} \
                                 attempts (replay window repeatedly evicted)"
                            ),
                        },
                    }));
                }
                for a in &mut attempts {
                    *a += 1;
                }
            }
        }
    }
}

/// What one hub generation ended with.
enum HubOutcome {
    Done(SuperviseReport),
    /// A resume fell below the replay window: every committed round is
    /// still deterministic, so re-run the whole thing from round 0.
    RestartRun,
}

/// Drains the hub's per-shard trace streams and buffered worker
/// lifecycle events into the recorder — called before every hub
/// teardown, so the last-K rounds and the checkpoint write/load/reject
/// reports a crashed worker streamed survive into the dump.
fn absorb_worker_traces(recorder: &mut Option<FlightRecorder>, hub: &Hub) {
    if let Some(r) = recorder {
        for (shard, records) in hub.worker_traces().into_iter().enumerate() {
            r.absorb_ring(shard, records);
        }
        for event in hub.take_worker_events() {
            r.event(
                Some(event.shard as usize),
                event.round,
                worker_event_kind(event.code),
                event.detail,
            );
        }
    }
}

/// Maps a worker event code to the flight-recorder kind string it is
/// rendered under in the JSONL dump.
fn worker_event_kind(code: u8) -> &'static str {
    use super::control::{EVENT_CHECKPOINT_LOAD, EVENT_CHECKPOINT_REJECT, EVENT_CHECKPOINT_WRITE};
    match code {
        EVENT_CHECKPOINT_WRITE => "checkpoint_write",
        EVENT_CHECKPOINT_LOAD => "checkpoint_load",
        EVENT_CHECKPOINT_REJECT => "checkpoint_reject",
        _ => "worker_event",
    }
}

#[allow(clippy::too_many_lines)]
fn supervise_one_hub(
    options: &SuperviseOptions,
    spawn: &mut impl FnMut(usize, &HubAddr, usize) -> io::Result<Child>,
    started: Instant,
    attempts: &mut [usize],
    kill_at_armed: &mut Option<(usize, u64)>,
    recorder: &mut Option<FlightRecorder>,
) -> Result<HubOutcome, SimError> {
    let requested = options.addr.clone().unwrap_or_else(temp_hub_addr);
    let synthesized = |shard: usize, cause: TransportCause| {
        SimError::Transport(TransportError {
            shard,
            round: 0,
            cause,
        })
    };
    let mut hub_options = HubOptions::new(options.shards, options.timeout);
    hub_options.digest = options.graph_digest;
    hub_options.replay_window = options.replay_window;
    // A dead connection waits for its replacement for up to the whole
    // run budget — the deadline kill below is the real bound, and a
    // shorter grace would race the backoff schedule.
    hub_options.grace = options.deadline;
    let (mut hub, addr) = Hub::listen_with(&requested, hub_options).map_err(|e| {
        synthesized(
            0,
            TransportCause::Io {
                detail: format!("hub bind on {requested} failed: {e}"),
            },
        )
    })?;
    let settle = options.timeout.min(Duration::from_millis(300));
    let restarts_at_entry: Vec<usize> = attempts.to_vec();
    let mut slots: Vec<Slot> = Vec::with_capacity(options.shards);
    let kill_everything = |slots: &mut Vec<Slot>| {
        for slot in slots.iter_mut() {
            if let Slot::Running(child) = slot {
                let _ = child.kill();
                let _ = child.wait();
            }
        }
    };
    for (shard, &attempt) in attempts.iter().enumerate().take(options.shards) {
        match spawn(shard, &addr, attempt) {
            Ok(child) => slots.push(Slot::Running(child)),
            Err(e) => {
                kill_everything(&mut slots);
                hub.stop_and_join();
                return Err(synthesized(
                    shard,
                    TransportCause::Io {
                        detail: format!("spawning worker {shard} failed: {e}"),
                    },
                ));
            }
        }
    }
    let mut last_progress = (hub.barrier_round(), 0usize, 0u64);
    let mut last_progress_at = Instant::now();
    loop {
        if hub.wait_halted(SUPERVISE_TICK) {
            break;
        }
        if started.elapsed() >= options.deadline {
            let committed = hub.committed_rounds();
            let done = hub.done_flags();
            let suspect = (0..options.shards)
                .filter(|&s| !done.get(s).copied().unwrap_or(false))
                .min_by_key(|&s| committed.get(s).copied().unwrap_or(0))
                .unwrap_or(0);
            kill_everything(&mut slots);
            let error = hub.first_error().unwrap_or_else(|| {
                synthesized(
                    suspect,
                    TransportCause::Timeout {
                        waited_ms: started.elapsed().as_millis() as u64,
                    },
                )
            });
            if let Some(r) = recorder {
                r.event(
                    Some(suspect),
                    committed.get(suspect).copied().unwrap_or(0),
                    "deadline",
                    format!(
                        "overall deadline passed after {} ms; least-advanced shard killed",
                        started.elapsed().as_millis()
                    ),
                );
            }
            absorb_worker_traces(recorder, &hub);
            hub.stop_and_join();
            return Err(error);
        }
        let done = hub.done_flags();
        let now = Instant::now();
        for shard in 0..options.shards {
            let shard_done = done.get(shard).copied().unwrap_or(false);
            let next = match &mut slots[shard] {
                Slot::Running(child) => match child.try_wait() {
                    Ok(Some(status)) if status.success() && shard_done => Some(Slot::Finished),
                    Ok(Some(status)) if status.success() => Some(Slot::Settling(now + settle)),
                    Ok(Some(_)) => Some(schedule_restart(options, &hub, attempts, shard, recorder)),
                    Ok(None) => None,
                    Err(_) => Some(schedule_restart(options, &hub, attempts, shard, recorder)),
                },
                Slot::Settling(_) if shard_done => Some(Slot::Finished),
                Slot::Settling(deadline) if now >= *deadline => {
                    Some(schedule_restart(options, &hub, attempts, shard, recorder))
                }
                Slot::Backoff(due) if now >= *due => match spawn(shard, &addr, attempts[shard]) {
                    Ok(child) => Some(Slot::Running(child)),
                    Err(e) => {
                        hub.declare_lost(shard, format!("relaunching worker {shard} failed: {e}"));
                        Some(Slot::Lost)
                    }
                },
                _ => None,
            };
            if let Some(next) = next {
                slots[shard] = next;
            }
        }
        // Chaos: external SIGKILL once the victim reaches its round.
        if let Some((victim, at_round)) = *kill_at_armed {
            let committed = hub.committed_rounds();
            let beat_round = hub
                .beat_ages()
                .get(victim)
                .copied()
                .flatten()
                .map_or(0, |(_, round)| round);
            let reached =
                committed.get(victim).copied().unwrap_or(0) >= at_round || beat_round >= at_round;
            if reached {
                if let Some(Slot::Running(child)) = slots.get_mut(victim) {
                    let _ = child.kill();
                    *kill_at_armed = None;
                    if let Some(r) = recorder {
                        r.event(
                            Some(victim),
                            committed.get(victim).copied().unwrap_or(0),
                            "chaos_kill",
                            format!("SIGKILL armed for round {at_round} delivered"),
                        );
                    }
                }
            }
        }
        // Wedge detection: no global progress of any kind for a full
        // stall window means somebody is alive but stuck. Kill the
        // least-advanced unfinished shard; the crash path restarts it.
        let committed = hub.committed_rounds();
        let progress = (
            hub.barrier_round(),
            done.iter().filter(|&&d| d).count(),
            committed.iter().sum::<u64>(),
        );
        if progress != last_progress {
            last_progress = progress;
            last_progress_at = now;
        } else if now.duration_since(last_progress_at) >= options.stall {
            let victim = (0..options.shards)
                .filter(|&s| {
                    !done.get(s).copied().unwrap_or(false) && matches!(slots[s], Slot::Running(_))
                })
                .min_by_key(|&s| committed.get(s).copied().unwrap_or(0));
            if let Some(victim) = victim {
                let beat_stale = !options.heartbeat.is_zero()
                    && hub
                        .beat_ages()
                        .get(victim)
                        .copied()
                        .flatten()
                        .is_none_or(|(age, _)| age > options.heartbeat * 2);
                if beat_stale {
                    hub.note_missed_heartbeat();
                }
                if let Slot::Running(child) = &mut slots[victim] {
                    let _ = child.kill();
                    if let Some(r) = recorder {
                        let age_ms = hub
                            .beat_ages()
                            .get(victim)
                            .copied()
                            .flatten()
                            .map(|(age, _)| age.as_millis());
                        r.event(
                            Some(victim),
                            committed.get(victim).copied().unwrap_or(0),
                            "stall_kill",
                            format!(
                                "no fabric progress for {} ms; beat_age_ms={} beat_stale={}",
                                options.stall.as_millis(),
                                age_ms.map_or_else(|| "none".into(), |ms| ms.to_string()),
                                beat_stale,
                            ),
                        );
                    }
                }
            }
            last_progress_at = now;
        }
    }
    // Halted: orderly completion or a broadcast fatal. Give workers one
    // fabric timeout to exit on their own, then kill stragglers.
    let fabric_error = hub.first_error();
    let grace_end = Instant::now() + options.timeout;
    loop {
        let all_exited = slots.iter_mut().all(|slot| match slot {
            Slot::Running(child) => matches!(child.try_wait(), Ok(Some(_))),
            _ => true,
        });
        if all_exited || Instant::now() >= grace_end {
            break;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    kill_everything(&mut slots);
    let worker_stats = hub.worker_stats();
    let (workers_restarted, rounds_replayed, heartbeats_missed, checkpoint_restores) =
        hub.recovery_counters();
    absorb_worker_traces(recorder, &hub);
    hub.stop_and_join();
    if let Some(error) = fabric_error {
        // The hub usually halts on the evicted-window refusal before the
        // in-loop check sees it; either path answers with a whole-run
        // restart rather than the error.
        if let SimError::Transport(TransportError {
            cause: TransportCause::Handshake { detail },
            ..
        }) = &error
        {
            if detail.starts_with(EVICTED_DETAIL_PREFIX) {
                return Ok(HubOutcome::RestartRun);
            }
        }
        return Err(error);
    }
    Ok(HubOutcome::Done(SuperviseReport {
        worker_stats,
        restarts: attempts
            .iter()
            .zip(restarts_at_entry)
            .map(|(&total, entry)| total - entry)
            .collect(),
        full_run_restarts: 0,
        workers_restarted,
        rounds_replayed,
        heartbeats_missed,
        checkpoint_restores,
    }))
}

/// Books one more restart for `shard`: `Backoff` with exponential
/// delay and deterministic jitter, or `Lost` (with the typed fabric
/// error) when the budget is spent. Either decision is annotated onto
/// the flight-recorder timeline with the evidence it rested on — the
/// shard's committed round, last heartbeat age, and the fabric's replay
/// count so far.
fn schedule_restart(
    options: &SuperviseOptions,
    hub: &Hub,
    attempts: &mut [usize],
    shard: usize,
    recorder: &mut Option<FlightRecorder>,
) -> Slot {
    attempts[shard] += 1;
    let nth = attempts[shard];
    let committed = hub.committed_rounds().get(shard).copied().unwrap_or(0);
    let beat_age_ms = hub
        .beat_ages()
        .get(shard)
        .copied()
        .flatten()
        .map(|(age, _)| age.as_millis());
    let (_, rounds_replayed, _, _) = hub.recovery_counters();
    if nth > options.max_restarts {
        hub.declare_lost(
            shard,
            format!(
                "worker {shard} crashed and its restart budget ({}) is exhausted",
                options.max_restarts
            ),
        );
        if let Some(r) = recorder {
            r.event(
                Some(shard),
                committed,
                "lost",
                format!(
                    "restart budget ({}) exhausted at committed round {committed}",
                    options.max_restarts
                ),
            );
        }
        return Slot::Lost;
    }
    let base_ms = options.backoff.as_millis() as u64;
    let exp = base_ms.saturating_mul(1u64 << (nth.min(16) - 1));
    let jitter_span = base_ms / 2 + 1;
    let jitter = mix(options
        .backoff_seed
        .wrapping_add((shard as u64) << 32)
        .wrapping_add(nth as u64))
        % jitter_span;
    if let Some(r) = recorder {
        r.event(
            Some(shard),
            committed,
            "restart",
            format!(
                "worker {shard} down at committed round {committed}: attempt={nth} \
                 backoff_ms={} beat_age_ms={} rounds_replayed={rounds_replayed}",
                exp + jitter,
                beat_age_ms.map_or_else(|| "none".into(), |ms| ms.to_string()),
            ),
        );
    }
    Slot::Backoff(Instant::now() + Duration::from_millis(exp + jitter))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::process::{Command, Stdio};

    fn quick_options(shards: usize) -> LaunchOptions {
        LaunchOptions {
            shards,
            timeout: Duration::from_millis(200),
            deadline: Duration::from_millis(600),
            graph_digest: None,
            addr: None,
        }
    }

    #[test]
    fn workers_that_never_connect_hit_the_deadline_typed() {
        // `sleep` stands in for a worker that wedges before connecting.
        let started = Instant::now();
        let error = launch(&quick_options(2), |_, _| {
            Command::new("sleep")
                .arg("30")
                .stdout(Stdio::null())
                .stderr(Stdio::null())
                .spawn()
        })
        .unwrap_err();
        assert!(
            matches!(
                &error,
                SimError::Transport(TransportError {
                    cause: TransportCause::Timeout { .. },
                    ..
                })
            ),
            "got {error:?}"
        );
        assert!(
            started.elapsed() < Duration::from_secs(10),
            "the deadline must bound the whole launch, took {:?}",
            started.elapsed()
        );
    }

    #[test]
    fn a_spawn_failure_aborts_the_launch_typed() {
        let error = launch(&quick_options(2), |shard, _| {
            if shard == 1 {
                Err(io::Error::new(io::ErrorKind::NotFound, "no such worker"))
            } else {
                Command::new("sleep")
                    .arg("30")
                    .stdout(Stdio::null())
                    .stderr(Stdio::null())
                    .spawn()
            }
        })
        .unwrap_err();
        let SimError::Transport(TransportError { shard, cause, .. }) = &error else {
            panic!("got {error:?}");
        };
        assert_eq!(*shard, 1);
        assert!(matches!(cause, TransportCause::Io { .. }), "{error}");
    }

    #[test]
    fn nonzero_worker_exits_surface_when_nothing_was_reported() {
        // Workers that exit immediately without ever connecting: the
        // fabric never halts, the deadline fires, and the error is
        // typed (the bad exit is visible in the detail chain via the
        // fabric timeout).
        let error = launch(&quick_options(1), |_, _| {
            Command::new("false")
                .stdout(Stdio::null())
                .stderr(Stdio::null())
                .spawn()
        })
        .unwrap_err();
        assert!(matches!(error, SimError::Transport(_)), "got {error:?}");
    }

    #[test]
    fn temp_addresses_are_unique() {
        assert_ne!(temp_hub_addr(), temp_hub_addr());
    }
}

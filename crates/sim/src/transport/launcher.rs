//! Process-per-shard orchestration: bind a hub, spawn workers, reap
//! them with a deadline.
//!
//! The launcher owns the lifecycle the ISSUE's robustness contract
//! hinges on: **no child outcome can wedge the parent**. The hub
//! notices a dead or silent worker within the fabric timeout and halts
//! with a typed error; the launcher waits out at most its own deadline,
//! kills whatever is still running, reaps every child, and returns the
//! most structured error available — the fabric's first
//! [`SimError`] if one was broadcast, a synthesized
//! [`SimError::Transport`] otherwise.
//!
//! The launcher does not know how to start a worker — the caller
//! supplies a spawn closure mapping `(shard, hub address)` to a
//! [`Child`]. The `netdecomp` binary's worker mode reads the
//! environment variables named by the `ENV_*` constants here.

use std::io;
use std::process::Child;
use std::time::{Duration, Instant};

use crate::error::{SimError, TransportCause, TransportError};

use super::socket::Hub;
use super::HubAddr;

/// Environment variable carrying a worker's shard index.
pub const ENV_SHARD: &str = "NETDECOMP_WORKER_SHARD";
/// Environment variable carrying the fabric's shard count.
pub const ENV_SHARDS: &str = "NETDECOMP_WORKER_SHARDS";
/// Environment variable carrying the hub address
/// (`unix:<path>` or `tcp:<addr>`, the [`HubAddr`] string form).
pub const ENV_ADDR: &str = "NETDECOMP_WORKER_ADDR";
/// Environment variable carrying the round budget.
pub const ENV_ROUNDS: &str = "NETDECOMP_WORKER_ROUNDS";

/// A hub socket path in the system temp directory, unique to this
/// process and call.
#[must_use]
pub fn temp_hub_addr() -> HubAddr {
    use std::sync::atomic::{AtomicUsize, Ordering};
    static SEQ: AtomicUsize = AtomicUsize::new(0);
    let n = SEQ.fetch_add(1, Ordering::Relaxed);
    HubAddr::Unix(
        std::env::temp_dir().join(format!("netdecomp-hub-{}-{n}.sock", std::process::id())),
    )
}

/// Everything a launch needs beyond the spawn closure.
#[derive(Debug, Clone)]
pub struct LaunchOptions {
    /// Worker (= shard) count.
    pub shards: usize,
    /// The fabric timeout handed to the hub (per blocking point).
    pub timeout: Duration,
    /// Overall deadline for the whole run; stragglers are killed when it
    /// passes. Must comfortably exceed `timeout` plus the expected run
    /// time.
    pub deadline: Duration,
    /// Graph digest every worker must present ([`super::graph_digest`]);
    /// `None` accepts whatever the first worker presents and holds the
    /// rest to it.
    pub graph_digest: Option<u64>,
    /// Hub address to bind; `None` picks [`temp_hub_addr`].
    pub addr: Option<HubAddr>,
}

impl LaunchOptions {
    /// Defaults: fabric timeout from [`super::frame_timeout`], overall
    /// deadline six times that, temp-path Unix hub, digest unpinned.
    #[must_use]
    pub fn new(shards: usize) -> LaunchOptions {
        let timeout = super::frame_timeout();
        LaunchOptions {
            shards,
            timeout,
            deadline: timeout * 6,
            graph_digest: None,
            addr: None,
        }
    }
}

/// How one worker process ended.
#[derive(Debug)]
pub struct WorkerExit {
    /// The worker's shard index.
    pub shard: usize,
    /// Exit code; `None` when the worker died to a signal (including the
    /// launcher's own deadline kill).
    pub code: Option<i32>,
    /// Captured stdout (empty unless the spawn closure piped it).
    pub stdout: Vec<u8>,
    /// Captured stderr (empty unless the spawn closure piped it).
    pub stderr: Vec<u8>,
}

/// The outcome of a fully-successful launch.
#[derive(Debug)]
pub struct LaunchReport {
    /// Per-worker exits, indexed by shard.
    pub exits: Vec<WorkerExit>,
}

/// Binds the hub, spawns one worker per shard, and reaps the run.
///
/// The listener is bound *before* any worker starts, so a worker that
/// connects immediately queues in the accept backlog rather than
/// racing. Spawn order is shard order; a spawn failure kills the
/// already-started workers and returns immediately.
///
/// # Errors
///
/// - the fabric's first broadcast [`SimError`], when the hub halted on
///   one (a worker crashed, timed out, desynced, or reported a protocol
///   violation);
/// - [`TransportCause::Timeout`] when the fabric was still not halted at
///   the deadline;
/// - [`TransportCause::Io`] when the hub could not bind, a worker could
///   not be spawned, or a worker exited nonzero without reporting
///   anything.
pub fn launch(
    options: &LaunchOptions,
    mut spawn: impl FnMut(usize, &HubAddr) -> io::Result<Child>,
) -> Result<LaunchReport, SimError> {
    let requested = options.addr.clone().unwrap_or_else(temp_hub_addr);
    let synthesized = |shard: usize, cause: TransportCause| {
        SimError::Transport(TransportError {
            shard,
            round: 0,
            cause,
        })
    };
    let (mut hub, addr) = Hub::listen(
        &requested,
        options.shards,
        options.timeout,
        options.graph_digest,
    )
    .map_err(|e| {
        synthesized(
            0,
            TransportCause::Io {
                detail: format!("hub bind on {requested} failed: {e}"),
            },
        )
    })?;
    let mut children: Vec<(usize, Child)> = Vec::with_capacity(options.shards);
    for shard in 0..options.shards {
        match spawn(shard, &addr) {
            Ok(child) => children.push((shard, child)),
            Err(e) => {
                for (_, child) in &mut children {
                    let _ = child.kill();
                }
                for (_, child) in &mut children {
                    let _ = child.wait();
                }
                hub.stop_and_join();
                return Err(synthesized(
                    shard,
                    TransportCause::Io {
                        detail: format!("spawning worker {shard} failed: {e}"),
                    },
                ));
            }
        }
    }
    let started = Instant::now();
    let halted = hub.wait_halted(options.deadline);
    let fabric_error = hub.first_error();
    // Grace window: halted workers exit on their own; give them one
    // fabric timeout before the kill.
    let grace_end = Instant::now() + options.timeout;
    loop {
        let all_exited = children
            .iter_mut()
            .all(|(_, child)| matches!(child.try_wait(), Ok(Some(_))));
        if all_exited || Instant::now() >= grace_end {
            break;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    for (_, child) in &mut children {
        if !matches!(child.try_wait(), Ok(Some(_))) {
            let _ = child.kill();
        }
    }
    let mut exits = Vec::with_capacity(children.len());
    for (shard, child) in children {
        match child.wait_with_output() {
            Ok(output) => exits.push(WorkerExit {
                shard,
                code: output.status.code(),
                stdout: output.stdout,
                stderr: output.stderr,
            }),
            Err(_) => exits.push(WorkerExit {
                shard,
                code: None,
                stdout: Vec::new(),
                stderr: Vec::new(),
            }),
        }
    }
    hub.stop_and_join();
    if let Some(error) = fabric_error {
        return Err(error);
    }
    if !halted {
        return Err(synthesized(
            first_bad_exit(&exits).unwrap_or(0),
            TransportCause::Timeout {
                waited_ms: started.elapsed().as_millis() as u64,
            },
        ));
    }
    if let Some(shard) = first_bad_exit(&exits) {
        let exit = &exits[shard];
        return Err(synthesized(
            shard,
            TransportCause::Io {
                detail: match exit.code {
                    Some(code) => format!("worker {shard} exited with status {code}"),
                    None => format!("worker {shard} was killed by a signal"),
                },
            },
        ));
    }
    Ok(LaunchReport { exits })
}

fn first_bad_exit(exits: &[WorkerExit]) -> Option<usize> {
    exits.iter().position(|e| e.code != Some(0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::process::{Command, Stdio};

    fn quick_options(shards: usize) -> LaunchOptions {
        LaunchOptions {
            shards,
            timeout: Duration::from_millis(200),
            deadline: Duration::from_millis(600),
            graph_digest: None,
            addr: None,
        }
    }

    #[test]
    fn workers_that_never_connect_hit_the_deadline_typed() {
        // `sleep` stands in for a worker that wedges before connecting.
        let started = Instant::now();
        let error = launch(&quick_options(2), |_, _| {
            Command::new("sleep")
                .arg("30")
                .stdout(Stdio::null())
                .stderr(Stdio::null())
                .spawn()
        })
        .unwrap_err();
        assert!(
            matches!(
                &error,
                SimError::Transport(TransportError {
                    cause: TransportCause::Timeout { .. },
                    ..
                })
            ),
            "got {error:?}"
        );
        assert!(
            started.elapsed() < Duration::from_secs(10),
            "the deadline must bound the whole launch, took {:?}",
            started.elapsed()
        );
    }

    #[test]
    fn a_spawn_failure_aborts_the_launch_typed() {
        let error = launch(&quick_options(2), |shard, _| {
            if shard == 1 {
                Err(io::Error::new(io::ErrorKind::NotFound, "no such worker"))
            } else {
                Command::new("sleep")
                    .arg("30")
                    .stdout(Stdio::null())
                    .stderr(Stdio::null())
                    .spawn()
            }
        })
        .unwrap_err();
        let SimError::Transport(TransportError { shard, cause, .. }) = &error else {
            panic!("got {error:?}");
        };
        assert_eq!(*shard, 1);
        assert!(matches!(cause, TransportCause::Io { .. }), "{error}");
    }

    #[test]
    fn nonzero_worker_exits_surface_when_nothing_was_reported() {
        // Workers that exit immediately without ever connecting: the
        // fabric never halts, the deadline fires, and the error is
        // typed (the bad exit is visible in the detail chain via the
        // fabric timeout).
        let error = launch(&quick_options(1), |_, _| {
            Command::new("false")
                .stdout(Stdio::null())
                .stderr(Stdio::null())
                .spawn()
        })
        .unwrap_err();
        assert!(matches!(error, SimError::Transport(_)), "got {error:?}");
    }

    #[test]
    fn temp_addresses_are_unique() {
        assert_ne!(temp_hub_addr(), temp_hub_addr());
    }
}

//! Deterministic fault injection over any [`Transport`].
//!
//! [`FaultInjectingTransport`] wraps a backend and, on the **receive**
//! edge of every `(round, from, to)` link, decides from a seeded hash —
//! no OS entropy, no timing — whether to drop, corrupt, delay,
//! duplicate, or reorder the frame that just arrived. Injecting after
//! the inner collect keeps the backend's own framing honest (the wire
//! really carried one frame per link; the *receiver* then experiences
//! the fault), and determinism means a failing seed in CI replays
//! exactly on a laptop.
//!
//! The point of the harness is the ISSUE's contract: **every** injected
//! fault must surface as a typed error — `MissingFrame` for drops,
//! `ChecksumMismatch`/`Truncated`/`BadMagic`/`VersionMismatch` for
//! corruption, `Misrouted` for duplicates and reorders — never a hang,
//! never a panic, never silent data damage.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use bytes::Bytes;

use crate::error::TransportError;
use crate::frame::{Transport, TransportHealth};

/// Per-link fault probabilities, in parts per thousand, plus the seed
/// that makes every decision reproducible.
///
/// A rate of 0 disables that fault; 1000 fires it on every link. Rates
/// apply independently per `(round, from, to)` edge, evaluated in the
/// order drop, corrupt, delay, duplicate, reorder (the first firing
/// fault on an edge wins; duplicate/reorder act across a destination's
/// whole slot row).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPlan {
    /// Seed mixed into every per-edge decision.
    pub seed: u64,
    /// Chance the frame vanishes (surfaces as `MissingFrame`).
    pub drop_per_mille: u16,
    /// Chance one frame byte is flipped (surfaces as a frame-integrity
    /// error: checksum, truncation, magic, or version).
    pub corrupt_per_mille: u16,
    /// Chance the frame is withheld this round and redelivered next
    /// round (the run usually aborts first, as `MissingFrame`).
    pub delay_per_mille: u16,
    /// Chance a neighbor slot is overwritten with a copy of this frame
    /// (surfaces as `Misrouted`).
    pub duplicate_per_mille: u16,
    /// Chance this frame swaps slots with a neighbor (surfaces as
    /// `Misrouted`).
    pub reorder_per_mille: u16,
    /// Deterministic one-way link outage: every frame on the configured
    /// `from -> to` edge is withheld for a fixed window of rounds, then
    /// the link heals. Unlike the probabilistic faults this is a
    /// *scheduled* event — the chaos soak uses it to prove a k-round
    /// partition either heals inside the recovery window (bit-identical
    /// result) or surfaces as a typed `MissingFrame`/timeout.
    pub partition: Option<LinkPartition>,
}

/// A scheduled one-way link outage (see [`FaultPlan::partition`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkPartition {
    /// Sender side of the severed edge.
    pub from: usize,
    /// Receiver side of the severed edge.
    pub to: usize,
    /// First round (0-based, per-destination collect count) the edge is
    /// down.
    pub start_round: usize,
    /// How many consecutive rounds the edge stays down.
    pub rounds: usize,
}

impl LinkPartition {
    /// Whether this partition severs `(round, from, to)`.
    #[must_use]
    pub fn severs(&self, round: usize, from: usize, to: usize) -> bool {
        from == self.from
            && to == self.to
            && round >= self.start_round
            && round < self.start_round + self.rounds
    }
}

impl FaultPlan {
    /// A plan that injects nothing — the wrapper becomes a pass-through
    /// (useful as a baseline in the same test harness).
    #[must_use]
    pub fn quiet(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            drop_per_mille: 0,
            corrupt_per_mille: 0,
            delay_per_mille: 0,
            duplicate_per_mille: 0,
            reorder_per_mille: 0,
            partition: None,
        }
    }

    /// A plan whose only fault is a scheduled one-way link outage.
    #[must_use]
    pub fn partitioned(seed: u64, partition: LinkPartition) -> FaultPlan {
        FaultPlan {
            partition: Some(partition),
            ..FaultPlan::quiet(seed)
        }
    }

    /// A plan firing only drops at the given rate.
    #[must_use]
    pub fn drops(seed: u64, per_mille: u16) -> FaultPlan {
        FaultPlan {
            drop_per_mille: per_mille,
            ..FaultPlan::quiet(seed)
        }
    }

    /// A plan firing only corruption at the given rate.
    #[must_use]
    pub fn corruption(seed: u64, per_mille: u16) -> FaultPlan {
        FaultPlan {
            corrupt_per_mille: per_mille,
            ..FaultPlan::quiet(seed)
        }
    }
}

/// splitmix64 — tiny, seedable, and plenty for coin flips (and for the
/// supervisor's deterministic restart jitter).
pub(crate) fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A [`Transport`] wrapper that deterministically injures frames on the
/// receive edge. Sends pass straight through to the inner backend.
#[derive(Debug)]
pub struct FaultInjectingTransport<T> {
    inner: T,
    plan: FaultPlan,
    /// Per-destination collect counter — the "round" coordinate of every
    /// fault decision.
    rounds: Vec<AtomicUsize>,
    /// Frames withheld by `delay`, keyed by destination; redelivered
    /// into empty slots on the destination's next collect.
    held: Vec<Mutex<Vec<Bytes>>>,
    dropped: AtomicUsize,
}

impl<T: Transport> FaultInjectingTransport<T> {
    /// Wraps `inner` for a fabric of `shards` shards under `plan`.
    #[must_use]
    pub fn new(inner: T, shards: usize, plan: FaultPlan) -> Self {
        FaultInjectingTransport {
            inner,
            plan,
            rounds: (0..shards).map(|_| AtomicUsize::new(0)).collect(),
            held: (0..shards).map(|_| Mutex::new(Vec::new())).collect(),
            dropped: AtomicUsize::new(0),
        }
    }

    /// The wrapped backend.
    pub fn inner(&self) -> &T {
        &self.inner
    }

    /// One coin flip, deterministic in
    /// `(seed, round, from, to, which-fault)`.
    fn fires(&self, rate: u16, round: usize, from: usize, to: usize, salt: u64) -> bool {
        if rate == 0 {
            return false;
        }
        let key = mix(self.plan.seed
            ^ mix((round as u64) << 40 | (from as u64) << 20 | to as u64)
            ^ salt);
        (key % 1000) < u64::from(rate)
    }
}

impl<T: Transport> Transport for FaultInjectingTransport<T> {
    fn send(&self, from: usize, to: usize, frame: Bytes) {
        self.inner.send(from, to, frame);
    }

    fn collect(&self, to: usize, into: &mut [Option<Bytes>]) -> Result<(), TransportError> {
        self.inner.collect(to, into)?;
        let round = self.rounds[to].fetch_add(1, Ordering::Relaxed);
        // Frames an earlier round withheld; redelivered *after* this
        // round's injuries so a delayed frame lands in the gap its own
        // delay (or a fresh drop) opened.
        let carried = std::mem::take(&mut *self.held[to].lock().expect("no poisoned holding pen"));
        let shards = into.len();
        for from in 0..shards {
            let Some(frame) = into[from].clone() else {
                continue;
            };
            if self
                .plan
                .partition
                .is_some_and(|p| p.severs(round, from, to))
            {
                into[from] = None;
                self.dropped.fetch_add(1, Ordering::Relaxed);
                continue;
            }
            if self.fires(self.plan.drop_per_mille, round, from, to, 0xD209) {
                into[from] = None;
                self.dropped.fetch_add(1, Ordering::Relaxed);
                continue;
            }
            if self.fires(self.plan.corrupt_per_mille, round, from, to, 0xC0A2) {
                let mut bytes = frame.as_slice().to_vec();
                // Flip a bit in the header region so the damage is
                // always in integrity-checked territory.
                let at =
                    (mix(self.plan.seed ^ round as u64 ^ 0xF1F0) as usize) % bytes.len().min(28);
                bytes[at] ^= 0x40;
                into[from] = Some(Bytes::from(bytes));
                continue;
            }
            if self.fires(self.plan.delay_per_mille, round, from, to, 0xDE1A) {
                into[from] = None;
                self.dropped.fetch_add(1, Ordering::Relaxed);
                self.held[to]
                    .lock()
                    .expect("no poisoned holding pen")
                    .push(frame);
                continue;
            }
            if shards > 1 && self.fires(self.plan.duplicate_per_mille, round, from, to, 0xD0B1) {
                let over = (from + 1) % shards;
                into[over] = Some(frame);
                continue;
            }
            if shards > 1 && self.fires(self.plan.reorder_per_mille, round, from, to, 0x2E02) {
                into.swap(from, (from + 1) % shards);
            }
        }
        // Redeliver delayed frames into whatever gaps remain; a slot
        // already live means the stale frame stays lost (its miss was
        // counted when it was withheld).
        for frame in carried {
            let sender =
                u32::from_le_bytes(frame.as_slice()[8..12].try_into().expect("4 bytes")) as usize;
            if let Some(slot @ None) = into.get_mut(sender) {
                *slot = Some(frame);
            }
        }
        Ok(())
    }

    fn health(&self) -> TransportHealth {
        let mut health = self.inner.health();
        health.absorb(TransportHealth {
            frames_dropped_injected: self.dropped.load(Ordering::Relaxed),
            ..TransportHealth::default()
        });
        health
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::{ChannelTransport, FrameBuilder};

    fn frame(sender: usize, dest: usize, tag: u8) -> Bytes {
        let mut b = FrameBuilder::new();
        b.begin(sender, dest);
        b.push(0, 0..1, &[tag]);
        b.finish()
    }

    fn run_round(t: &dyn Transport, shards: usize, tag: u8) -> Vec<Vec<Option<Bytes>>> {
        for from in 0..shards {
            for to in 0..shards {
                t.send(from, to, frame(from, to, tag));
            }
        }
        (0..shards)
            .map(|to| {
                let mut slots = vec![None; shards];
                t.collect(to, &mut slots).unwrap();
                slots
            })
            .collect()
    }

    #[test]
    fn quiet_plan_is_a_pass_through() {
        let shards = 3;
        let t = FaultInjectingTransport::new(
            ChannelTransport::new(shards),
            shards,
            FaultPlan::quiet(1),
        );
        let got = run_round(&t, shards, 5);
        assert!(got.iter().flatten().all(Option::is_some));
        assert_eq!(t.health().frames_dropped_injected, 0);
    }

    #[test]
    fn drops_are_deterministic_and_counted() {
        let shards = 2;
        let run = |seed| {
            let t = FaultInjectingTransport::new(
                ChannelTransport::new(shards),
                shards,
                FaultPlan::drops(seed, 500),
            );
            let pattern: Vec<Vec<bool>> = run_round(&t, shards, 1)
                .iter()
                .map(|row| row.iter().map(Option::is_some).collect())
                .collect();
            (pattern, t.health().frames_dropped_injected)
        };
        let (first, dropped) = run(42);
        let (second, _) = run(42);
        assert_eq!(first, second, "same seed, same casualties");
        let total_missing: usize = first.iter().flatten().filter(|&&present| !present).count();
        assert_eq!(dropped, total_missing);
        // A 50% plan over 4 link-rounds virtually always differs from a
        // different seed's pattern across a few seeds.
        assert!(
            (0..8u64).any(|s| run(s).0 != first),
            "seed must influence the fault pattern"
        );
    }

    #[test]
    fn corruption_keeps_frame_present_but_damaged() {
        let shards = 2;
        let t = FaultInjectingTransport::new(
            ChannelTransport::new(shards),
            shards,
            FaultPlan::corruption(7, 1000),
        );
        let got = run_round(&t, shards, 9);
        for (to, row) in got.iter().enumerate() {
            for (from, slot) in row.iter().enumerate() {
                let damaged = slot.as_ref().expect("corruption never removes the frame");
                assert_ne!(
                    damaged.as_slice(),
                    frame(from, to, 9).as_slice(),
                    "{from}->{to} must be damaged"
                );
            }
        }
    }

    #[test]
    fn delayed_frames_come_back_next_round() {
        let shards = 1;
        let t = FaultInjectingTransport::new(
            ChannelTransport::new(shards),
            shards,
            FaultPlan {
                delay_per_mille: 1000,
                ..FaultPlan::quiet(3)
            },
        );
        t.send(0, 0, frame(0, 0, 1));
        let mut slots = vec![None; shards];
        t.collect(0, &mut slots).unwrap();
        assert!(slots[0].is_none(), "round 0 frame is withheld");
        // Round 1: also delayed on arrival, but round 0's frame fills
        // the gap.
        t.send(0, 0, frame(0, 0, 2));
        let mut slots = vec![None; shards];
        t.collect(0, &mut slots).unwrap();
        assert_eq!(
            slots[0].as_ref().unwrap().as_slice(),
            frame(0, 0, 1).as_slice(),
            "the delayed round-0 frame is redelivered"
        );
    }

    #[test]
    fn a_partitioned_link_drops_exactly_its_window_then_heals() {
        let shards = 2;
        let t = FaultInjectingTransport::new(
            ChannelTransport::new(shards),
            shards,
            FaultPlan::partitioned(
                0,
                LinkPartition {
                    from: 1,
                    to: 0,
                    start_round: 1,
                    rounds: 2,
                },
            ),
        );
        for round in 0..4u8 {
            let got = run_round(&t, shards, round);
            let cut = (1..=2).contains(&round);
            assert_eq!(
                got[0][1].is_none(),
                cut,
                "round {round}: 1->0 must be {}",
                if cut { "cut" } else { "alive" }
            );
            // Every other edge is untouched throughout.
            assert!(got[0][0].is_some());
            assert!(got[1].iter().all(Option::is_some));
        }
        assert_eq!(t.health().frames_dropped_injected, 2);
    }

    #[test]
    fn duplicates_and_reorders_misfile_slots() {
        let shards = 2;
        let t = FaultInjectingTransport::new(
            ChannelTransport::new(shards),
            shards,
            FaultPlan {
                duplicate_per_mille: 1000,
                ..FaultPlan::quiet(11)
            },
        );
        let got = run_round(&t, shards, 4);
        // Every destination's slot 1 was overwritten by a copy of slot
        // 0's frame (sender word says 0, slot says 1): a decoder sees
        // Misrouted.
        for row in &got {
            let copy = row[1].as_ref().expect("duplicate fills the slot");
            let sender = u32::from_le_bytes(copy.as_slice()[8..12].try_into().unwrap());
            assert_eq!(sender, 0, "slot 1 must hold shard 0's duplicated frame");
        }
    }
}

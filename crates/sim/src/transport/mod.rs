//! Transports that cross process boundaries, and the harnesses that
//! abuse them.
//!
//! The shared-memory backends ([`crate::frame::LoopbackTransport`],
//! [`crate::frame::ChannelTransport`]) prove the framed engine against
//! the simplest possible delivery fabric. This module provides the rest
//! of the story:
//!
//! - [`SocketTransport`] — data and control frames over Unix-domain (or
//!   TCP) byte streams through a hub process, the same
//!   [`crate::frame::Transport`] seam the in-memory backends implement,
//!   bit-identical results included.
//! - [`launcher`] — one OS process per shard: bind a hub socket, spawn
//!   workers, and reap them with a deadline, so a crashed worker is a
//!   typed [`crate::SimError::Transport`] at the launcher, never a
//!   zombie pipeline.
//! - [`run_worker`] — the single-shard driver a worker process runs:
//!   loads the graph, executes its shard's compute/account/ship/place
//!   loop against a [`HubClient`], and reports errors through `Error`
//!   control frames before exiting.
//! - [`FaultInjectingTransport`] — a deterministic, seeded wrapper over
//!   any backend that drops, corrupts, delays, duplicates, or reorders
//!   frames so tests can prove every failure is a typed error.
//!
//! # Timeouts
//!
//! Every blocking point — connect, handshake, per-round collect, hub
//! relay writes, worker reaping — carries a deadline derived from
//! [`frame_timeout`] (`NETDECOMP_FRAME_TIMEOUT_MS`, default 5000 ms). A
//! wedged or dead peer therefore degrades into a typed
//! [`crate::TransportError`] within a small multiple of that window;
//! there is no code path that waits forever.
//!
//! # Failure modes × recovery actions
//!
//! What the self-healing fabric does for each failure, who notices,
//! and what the caller ultimately observes:
//!
//! | Failure | Detected by | Signal | Recovery | Caller sees |
//! |---|---|---|---|---|
//! | Worker process crashes (incl. SIGKILL mid-frame) | Hub reader (EOF / close mid-frame) + supervisor exit reaping | stream close; `wait()` status | Supervisor relaunches (backoff + jitter, ≤ `max_restarts`); worker re-runs deterministically, re-handshakes with `Hello{resume_round}`, hub replays from the [`replay`] log and treats re-shipped rounds as echoes | Nothing — run completes bit-identically; `workers_restarted`/`rounds_replayed` counters tick |
//! | Worker crashes with checkpointing on (`NETDECOMP_CHECKPOINT_INTERVAL` > 0) | As above | As above | Relaunched worker loads its newest valid checkpoint from `NETDECOMP_CHECKPOINT_DIR` and re-handshakes at the checkpoint round, so recovery re-runs at most one interval plus the in-flight rounds instead of the whole history | Nothing; `checkpoint_restores` ticks and a `checkpoint_load` event lands in the flight record |
//! | Worker wedges (alive, no progress) | Supervisor: global barrier stall + least-committed victim selection; heartbeat age feeds `heartbeats_missed` | `Heartbeat` control frames + barrier round | Supervisor kills the wedged process, then the crash path above applies | Nothing, or a typed timeout if the stall outlives the collect deadline |
//! | Link drops but both ends live | Client read/write error | socket error | Client's one-shot reconnect-with-handshake; hub replays the collect round | Nothing; `frames_retried` ticks |
//! | Reconnect resumes below the replay window | Hub admission | handshake refusal whose detail starts with the evicted-window prefix | Supervisor restarts the *whole* run from round 0 (deterministic ⇒ still bit-identical) — with checkpointing at an interval ≤ the window, a checkpoint resume always lands inside the window first, so this is the fallback, not the only deep-history path | Nothing, or the typed handshake error when unsupervised |
//! | Checkpoint file torn or corrupted (crash mid-write, bit rot) | Worker's checkpoint loader | trailing [`crate::checkpoint`] digest / header validation | File is *skipped, never trusted*: the loader falls back to the previous retained checkpoint, then to a fresh round-0 run | Nothing; a `checkpoint_reject` event with the typed reason lands in the flight record |
//! | Checkpoint is stale (fabric restarted from round 0 behind it) | Hub admission | handshake refusal with the stale-resume prefix | Worker redials as a fresh join from round 0 and discards the restored state; the refusal is per-connection, never fabric-fatal | Nothing |
//! | Destination never drains its hub queue (slow or absent consumer) | Hub relay (`NETDECOMP_HUB_QUEUE_CAP`, default 256 MiB) | per-destination queued-bytes accounting | None — unbounded buffering would trade a deadlock for an OOM | Typed [`crate::SimError::Transport`] naming the slow/absent destination shard |
//! | Restart budget exhausted | Supervisor | — | None — supervisor calls the hub's `declare_lost` | Typed [`crate::SimError::Transport`] naming the lost shard |
//! | Wrong graph / frame version / shard id | Hub handshake vetting | `Error` control frame | None (config error, retrying cannot help) | Typed [`crate::TransportCause::Handshake`] |
//! | Corrupt or truncated frame | Receiver's decoder | checksum/structure validation | None (content desync is never retried — re-reading the same bytes cannot fix them) | Typed [`crate::SimError::Frame`] |
//! | Peer reports its own failure | Everyone | `Error` control frame relayed hub-wide | None — orderly teardown | The originating shard's typed error |
//!
//! # Checkpoint/restore
//!
//! With `NETDECOMP_CHECKPOINT_INTERVAL=k` (rounds) and a directory in
//! `NETDECOMP_CHECKPOINT_DIR`, every worker serializes its shard —
//! protocol state through the [`crate::Snapshot`] seam, the delivered
//! inbox of the checkpoint cut, per-edge CONGEST counters, and
//! accumulated run statistics — into an atomically-renamed, checksummed
//! file every `k` committed rounds (format in [`crate::checkpoint`]).
//! A relaunched worker loads the newest checkpoint that validates,
//! resumes at its round, and re-handshakes with
//! `Hello{resume_round = checkpoint round}`; choosing `k` no larger
//! than the replay window guarantees the hub can always serve the
//! missing suffix, so recovery costs `O(interval)` re-execution instead
//! of `O(run length)`.
//!
//! # Observability
//!
//! The distributed fabric carries its own trace plane (see
//! [`crate::trace`] for the in-process half):
//!
//! - **`Trace` control frames.** When tracing is enabled
//!   (`NETDECOMP_TRACE=1` or `NETDECOMP_TRACE_OUT=<path>`; workers
//!   inherit the environment, so enabling it at the launcher enables it
//!   everywhere), each worker commits a [`crate::RoundTrace`] per round
//!   — per-phase compute/account/ship/place nanos, frame bytes,
//!   checksum time, and the restart generation it is running as
//!   (`NETDECOMP_WORKER_ATTEMPT`) — and streams it to the hub as a
//!   `Trace` control frame *before* advancing to the next round.
//! - **Hub timeline merge.** The hub keeps the last
//!   `NETDECOMP_TRACE_WINDOW` (default 64) records per shard in memory.
//!   Because the records were streamed eagerly, a worker killed with
//!   SIGKILL still leaves its recent history behind on the hub side.
//! - **Supervisor annotations.** The supervisor folds those per-shard
//!   rings into a [`crate::FlightRecorder`] and annotates the timeline
//!   with its own decisions: restart events (attempt number, backoff
//!   with jitter, heartbeat age, replay count), chaos and stall kills,
//!   whole-run restarts, lost shards, deadline breaches, and the final
//!   halt or fatal outcome.
//! - **Dump.** When `NETDECOMP_TRACE_OUT` is set (or `netdecomp
//!   --trace-out` is passed), the recorder writes everything as JSONL —
//!   `{"type":"round",...}` lines per traced round and
//!   `{"type":"event",...}` lines per supervisor decision — both on
//!   clean completion and on any fatal error, so the flight recording
//!   survives exactly the runs you need it for.
//!
//! Tracing never changes results: `Determinism::Verify` remains
//! bit-identical with the trace plane enabled on every backend.
//!
//! The full wire protocol — frame layouts, the handshake, and the
//! failure-mode table — is documented in [`crate::frame`] (formats) and
//! [`control`] (control frames).

pub mod control;
mod fault;
pub mod launcher;
mod replay;
mod socket;
mod worker;

use std::fmt;
use std::sync::Arc;
use std::time::Duration;

use netdecomp_graph::Graph;

use crate::frame::Transport;

pub use fault::{FaultInjectingTransport, FaultPlan, LinkPartition};
pub use socket::{HubAddr, HubClient, SocketTransport, WorkerEvent, WorkerStats};
pub use worker::{
    run_worker, run_worker_checkpointed, run_worker_reporting, CheckpointPlan, WorkerConfig,
    WorkerReport,
};

/// The deadline every transport blocking point inherits by default.
///
/// Reads `NETDECOMP_FRAME_TIMEOUT_MS` (whole milliseconds, > 0) on every
/// call and falls back to 5000 ms when unset or unparsable, so tests and
/// deployments can tighten or relax the fabric's patience without code
/// changes.
#[must_use]
pub fn frame_timeout() -> Duration {
    let ms = std::env::var("NETDECOMP_FRAME_TIMEOUT_MS")
        .ok()
        .and_then(|v| v.trim().parse::<u64>().ok())
        .filter(|&v| v > 0)
        .unwrap_or(5_000);
    Duration::from_millis(ms)
}

/// How many committed rounds of per-destination delivery history the
/// hub retains for crash recovery.
///
/// Reads `NETDECOMP_REPLAY_WINDOW` (whole rounds, > 0) on every call and
/// falls back to 1024. A reconnect asking to resume below the window is
/// refused with a typed handshake error; a supervisor answers that by
/// restarting the whole (deterministic) run. Window 1 is the minimum —
/// the in-flight round must always be replayable.
#[must_use]
pub fn replay_window() -> u64 {
    std::env::var("NETDECOMP_REPLAY_WINDOW")
        .ok()
        .and_then(|v| v.trim().parse::<u64>().ok())
        .filter(|&v| v > 0)
        .unwrap_or(1024)
}

/// The checkpoint interval in committed rounds; 0 disables
/// checkpointing.
///
/// Reads [`launcher::ENV_CHECKPOINT_INTERVAL`] on every call. For the
/// hub to be guaranteed able to serve a checkpoint resume, keep the
/// interval at or below [`replay_window`]: a crash at round `k` resumes
/// at the latest checkpoint round `c ≥ k − interval`, and the log
/// retains rounds down to roughly `k − window`.
#[must_use]
pub fn checkpoint_interval() -> u64 {
    std::env::var(launcher::ENV_CHECKPOINT_INTERVAL)
        .ok()
        .and_then(|v| v.trim().parse::<u64>().ok())
        .unwrap_or(0)
}

/// The directory workers write checkpoints into, if one is configured.
///
/// Reads [`launcher::ENV_CHECKPOINT_DIR`] on every call; unset or empty
/// means no directory (and the `netdecomp` supervisor provisions a
/// temporary one when an interval is set without a directory).
#[must_use]
pub fn checkpoint_dir() -> Option<std::path::PathBuf> {
    std::env::var(launcher::ENV_CHECKPOINT_DIR)
        .ok()
        .map(|v| v.trim().to_string())
        .filter(|v| !v.is_empty())
        .map(std::path::PathBuf::from)
}

const DIGEST_INIT: u64 = 0xcbf2_9ce4_8422_2325;
const DIGEST_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv64(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h = (h ^ u64::from(b)).wrapping_mul(DIGEST_PRIME);
    }
    h
}

/// Digest of a graph's topology, exchanged in the `Hello` handshake.
///
/// Every worker of a distributed run loads the graph independently; two
/// workers that disagree on `n`, `m`, or any adjacency row would shard
/// and route messages inconsistently and produce garbage that no
/// per-frame check could attribute. The hub therefore refuses the
/// mismatch at connect time as a typed
/// [`crate::TransportCause::Handshake`] instead.
#[must_use]
pub fn graph_digest(graph: &Graph) -> u64 {
    let mut h = DIGEST_INIT;
    h = fnv64(h, &(graph.vertex_count() as u64).to_le_bytes());
    h = fnv64(h, &(graph.edge_count() as u64).to_le_bytes());
    for v in 0..graph.vertex_count() {
        let row = graph.neighbors(v);
        h = fnv64(h, &(row.len() as u64).to_le_bytes());
        for &to in row {
            h = fnv64(h, &(to as u64).to_le_bytes());
        }
    }
    h
}

/// A recipe for building a [`Transport`] per run, carried through
/// configuration structs that must stay `Clone + Debug`.
///
/// The engine owns its transport for the length of one `Simulator`, but
/// multi-phase algorithms (the carve protocol, Linial–Saks) build a
/// fresh simulator per phase — so configuration carries a *factory*
/// (shard count in, boxed transport out) rather than a single
/// pre-built instance.
#[derive(Clone)]
pub struct TransportFactory(Arc<dyn Fn(usize) -> Box<dyn Transport> + Send + Sync>);

impl TransportFactory {
    /// Wraps a `shards -> transport` constructor.
    pub fn new(make: impl Fn(usize) -> Box<dyn Transport> + Send + Sync + 'static) -> Self {
        TransportFactory(Arc::new(make))
    }

    /// Builds one transport instance for a run over `shards` shards.
    #[must_use]
    pub fn build(&self, shards: usize) -> Box<dyn Transport> {
        (self.0)(shards)
    }
}

impl fmt::Debug for TransportFactory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TransportFactory").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netdecomp_graph::GraphBuilder;

    fn path_graph(n: usize) -> Graph {
        let mut b = GraphBuilder::new(n);
        for v in 0..n.saturating_sub(1) {
            b.add_edge(v, v + 1).unwrap();
        }
        b.build()
    }

    #[test]
    fn default_timeout_is_five_seconds() {
        // The suite does not set NETDECOMP_FRAME_TIMEOUT_MS globally; if a
        // specific CI job does, the override is the intended behavior.
        if std::env::var("NETDECOMP_FRAME_TIMEOUT_MS").is_err() {
            assert_eq!(frame_timeout(), Duration::from_millis(5_000));
        }
    }

    #[test]
    fn digest_separates_topologies() {
        let a = graph_digest(&path_graph(5));
        let b = graph_digest(&path_graph(6));
        let mut builder = GraphBuilder::new(5);
        builder.add_edge(0, 1).unwrap();
        builder.add_edge(1, 2).unwrap();
        builder.add_edge(2, 3).unwrap();
        builder.add_edge(0, 4).unwrap();
        let c = graph_digest(&builder.build());
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(a, graph_digest(&path_graph(5)), "digest must be stable");
    }

    #[test]
    fn factory_builds_and_debugs() {
        let factory =
            TransportFactory::new(|shards| Box::new(crate::frame::ChannelTransport::new(shards)));
        let t = factory.build(3);
        t.send(0, 1, bytes::Bytes::from_static(b"x"));
        let format = format!("{factory:?}");
        assert!(format.contains("TransportFactory"));
        let _clone = factory.clone();
    }
}

//! The socket transport: data and control frames over real byte
//! streams, behind the same [`Transport`] seam the shared-memory
//! backends implement.
//!
//! # Topology: a hub and `shards` spokes
//!
//! Rather than a full mesh of `shards²` connections, every shard holds
//! one full-duplex stream to a **hub**. The hub routes data frames by
//! the destination word in their header, aggregates `RoundBarrier`
//! control frames (broadcasting the acknowledgement once all shards
//! have shipped a round), relays `Error` frames to every peer, and
//! enforces the `Hello` handshake. The same hub code serves both
//! deployments:
//!
//! - **in-process** ([`SocketTransport::unix_mesh`] /
//!   [`SocketTransport::tcp_mesh`]): the engine's framed backend over
//!   real sockets, used by the bit-exact equivalence sweep;
//! - **process-per-shard** ([`super::launcher`]): the hub listens on a
//!   Unix or TCP address, worker processes connect and run
//!   [`super::run_worker`].
//!
//! # Why the hub never deadlocks
//!
//! The hub runs one *reader* and one *writer* thread per connection,
//! decoupled by unbounded per-destination queues. Readers only parse
//! and enqueue — they never block on a slow destination — so a shard
//! that has not collected yet cannot stall frames addressed to a shard
//! that is collecting. Writers block only on their own destination and
//! carry write timeouts, so a wedged peer costs one typed error, not a
//! stuck hub. The barrier acknowledgement for round `r` is enqueued
//! under the barrier lock *after* every reader has enqueued its round-r
//! data frames, so a client that has seen the ack and still misses a
//! frame knows the frame is genuinely absent (`MissingFrame`), not
//! merely late.
//!
//! # Failure handling and recovery
//!
//! Every blocking point carries a deadline ([`super::frame_timeout`]).
//! A dead connection gets a grace window (the supervision grace, at
//! least the frame timeout) for a reconnect-with-handshake before the
//! hub declares the shard gone and broadcasts a typed `Error` to every
//! peer; a client whose link dies mid-run performs a one-shot reconnect
//! before giving up. All terminal outcomes are [`TransportError`]s —
//! see the failure-mode table in [`crate::transport`].
//!
//! # Deterministic crash recovery
//!
//! Each shard's connection slot supports an **N-epoch lifecycle**: any
//! number of re-registrations, each atomically swapping in a fresh
//! stream and a fresh writer queue. The hub keeps, per *sender*, the
//! rounds it has globally committed (`committed`), the barrier count of
//! the sender's current connection (`ship_round`, reset by each
//! re-handshake's `next_ship_round`), and a per-destination bitmap of
//! the partially-shipped round — together these make relay
//! exactly-once: a restarted worker deterministically re-ships rounds
//! 0..k and the hub counts them as echoes instead of double-delivering.
//! Per *destination*, a bounded [`super::replay::ReplayLog`] remembers
//! every relayed data frame and barrier ack; a `Hello{resume_round}`
//! re-handshake replays the suffix the client lost directly on the
//! fresh stream, before the writer takes over, so replayed traffic can
//! never be overtaken by live traffic. A resume below the log's
//! retention floor is refused with a typed handshake error whose detail
//! starts with [`EVICTED_DETAIL_PREFIX`] — the supervisor's cue to
//! restart the entire (deterministic) run.

use std::collections::VecDeque;
use std::fmt;
use std::io::{self, Read, Write};
use std::net::{Shutdown as NetShutdown, SocketAddr, TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::str::FromStr;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use bytes::Bytes;

use crate::error::{FrameError, SimError, TransportCause, TransportError};
use crate::frame::{
    Transport, TransportHealth, FRAME_VERSION, FRAME_VERSION_MIN, LEN_OFFSET, MAGIC,
};
use crate::stats::RunStats;
use crate::trace::RoundTrace;

use super::control::{ControlFrame, CONTROL_MAGIC, MAX_WIRE_FRAME};
use super::replay::{ReplayLog, Snapshot};

/// Detail prefix of the typed handshake refusal the hub issues when a
/// reconnect asks to resume below the replay log's retention floor. A
/// supervisor seeing this restarts the whole run from round 0 (the run
/// is deterministic, so the result is still bit-identical).
pub(crate) const EVICTED_DETAIL_PREFIX: &str = "replay window evicted";

/// Detail prefix of the typed handshake refusal the hub issues when a
/// fresh worker asks to resume at a round the fabric has not committed
/// yet — a checkpoint from an older fabric generation, presented after
/// a whole-run restart. Unlike [`EVICTED_DETAIL_PREFIX`] this is *not*
/// fabric-fatal: the accept loop refuses just that connection, and the
/// connector redials as a fresh join from round 0.
pub(crate) const STALE_RESUME_DETAIL_PREFIX: &str = "stale resume";

/// Environment override (bytes) for [`hub_queue_cap`].
pub(crate) const ENV_HUB_QUEUE_CAP: &str = "NETDECOMP_HUB_QUEUE_CAP";

/// Default per-destination relay queue cap: 256 MiB of queued frames.
const DEFAULT_HUB_QUEUE_CAP: usize = 256 * 1024 * 1024;

/// Byte budget each per-destination relay queue may hold before the
/// hub declares the destination wedged. The queues stay *unbounded*
/// channels (blocking a reader on a slow destination is the deadlock
/// the hub exists to prevent); the cap turns runaway accumulation —
/// a consumer that is too slow or never connected — into a typed
/// error naming the culprit instead of unbounded memory growth.
fn hub_queue_cap() -> usize {
    std::env::var(ENV_HUB_QUEUE_CAP)
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&v| v > 0)
        .unwrap_or(DEFAULT_HUB_QUEUE_CAP)
}

/// Cap on the hub-side buffer of worker lifecycle events (checkpoint
/// writes, loads, rejections) awaiting a supervisor's drain.
const EVENT_BUFFER_CAP: usize = 1024;

/// Idle-poll granularity of hub reader threads: how quickly a blocked
/// reader notices a hub-wide halt. Purely an exit-latency knob — data
/// readiness wakes a read immediately regardless.
const READ_TICK: Duration = Duration::from_millis(200);

/// Smallest well-formed data frame (a v1 header); anything shorter with
/// the data magic means the stream is desynchronized.
const MIN_DATA_FRAME: usize = 28;

/// `u32::MAX` as an origin marks the hub itself (not any shard).
const HUB_ORIGIN: u32 = u32::MAX;

// ---------------------------------------------------------------------
// Streams and addresses
// ---------------------------------------------------------------------

/// One full-duplex byte stream, Unix-domain or TCP behind the same code
/// path.
#[derive(Debug)]
pub(crate) enum Stream {
    /// A Unix-domain socket (the default: no ports, no firewalls).
    Unix(UnixStream),
    /// A TCP socket (loopback in tests; any address in principle).
    Tcp(TcpStream),
}

impl Stream {
    fn try_clone(&self) -> io::Result<Stream> {
        match self {
            Stream::Unix(s) => s.try_clone().map(Stream::Unix),
            Stream::Tcp(s) => s.try_clone().map(Stream::Tcp),
        }
    }

    fn set_read_timeout(&self, t: Option<Duration>) -> io::Result<()> {
        match self {
            Stream::Unix(s) => s.set_read_timeout(t),
            Stream::Tcp(s) => s.set_read_timeout(t),
        }
    }

    fn set_write_timeout(&self, t: Option<Duration>) -> io::Result<()> {
        match self {
            Stream::Unix(s) => s.set_write_timeout(t),
            Stream::Tcp(s) => s.set_write_timeout(t),
        }
    }

    fn shutdown_both(&self) {
        let _ = match self {
            Stream::Unix(s) => s.shutdown(NetShutdown::Both),
            Stream::Tcp(s) => s.shutdown(NetShutdown::Both),
        };
    }
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Stream::Unix(s) => s.read(buf),
            Stream::Tcp(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Stream::Unix(s) => s.write(buf),
            Stream::Tcp(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Stream::Unix(s) => s.flush(),
            Stream::Tcp(s) => s.flush(),
        }
    }
}

/// Where a hub listens — printable/parsable so a launcher can hand it
/// to worker processes through an environment variable
/// (`NETDECOMP_WORKER_ADDR`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HubAddr {
    /// `unix:<path>` — a Unix-domain socket path.
    Unix(PathBuf),
    /// `tcp:<addr>` — a TCP socket address, e.g. `tcp:127.0.0.1:4000`.
    Tcp(SocketAddr),
}

impl HubAddr {
    fn connect(&self, timeout: Duration) -> io::Result<Stream> {
        match self {
            HubAddr::Unix(path) => UnixStream::connect(path).map(Stream::Unix),
            HubAddr::Tcp(addr) => TcpStream::connect_timeout(addr, timeout).map(Stream::Tcp),
        }
    }
}

impl fmt::Display for HubAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HubAddr::Unix(path) => write!(f, "unix:{}", path.display()),
            HubAddr::Tcp(addr) => write!(f, "tcp:{addr}"),
        }
    }
}

impl FromStr for HubAddr {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if let Some(path) = s.strip_prefix("unix:") {
            return Ok(HubAddr::Unix(PathBuf::from(path)));
        }
        if let Some(addr) = s.strip_prefix("tcp:") {
            return addr
                .parse()
                .map(HubAddr::Tcp)
                .map_err(|e| format!("bad tcp hub address {addr:?}: {e}"));
        }
        Err(format!(
            "hub address {s:?} must start with \"unix:\" or \"tcp:\""
        ))
    }
}

// ---------------------------------------------------------------------
// Stream framing: one reader for both frame families
// ---------------------------------------------------------------------

/// One frame peeled off a stream: bucket data or a control message.
#[derive(Debug)]
enum Wire {
    Data(Bytes),
    Control(ControlFrame),
}

/// Why a stream read stopped without producing a frame.
#[derive(Debug)]
enum ReadEnd {
    /// Clean EOF at a frame boundary.
    Eof,
    /// The read timeout elapsed with zero bytes consumed — a poll tick;
    /// the stream is still framed and usable.
    Tick,
    /// The read timeout elapsed mid-frame: bytes are stranded and the
    /// stream can no longer be trusted to be at a frame boundary.
    Stalled,
    /// The peer closed (or was killed) mid-frame. Unlike a content
    /// desync, the stream itself is gone — recoverable by reconnect,
    /// exactly like [`ReadEnd::Eof`]; a SIGKILL mid-ship lands here.
    ClosedMidFrame,
    /// An OS-level read failure.
    Io(String),
    /// The bytes are not a frame (bad magic, implausible length, or a
    /// control frame that failed validation): desynchronized.
    Desync(String),
}

fn is_timeout(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

/// Fills `buf` completely. `started` says whether earlier bytes of the
/// same frame were already consumed (turning a timeout from a clean
/// tick into a mid-frame stall).
fn read_fully(stream: &mut Stream, buf: &mut [u8], mut started: bool) -> Result<(), ReadEnd> {
    let mut got = 0;
    while got < buf.len() {
        match stream.read(&mut buf[got..]) {
            Ok(0) => {
                return Err(if started || got > 0 {
                    ReadEnd::ClosedMidFrame
                } else {
                    ReadEnd::Eof
                })
            }
            Ok(n) => {
                got += n;
                started = true;
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) if is_timeout(&e) => {
                return Err(if started || got > 0 {
                    ReadEnd::Stalled
                } else {
                    ReadEnd::Tick
                })
            }
            Err(e) => return Err(ReadEnd::Io(e.to_string())),
        }
    }
    Ok(())
}

/// Reads exactly one self-delimiting frame (data `NDF` or control `NDC`)
/// from the stream, using whatever read timeout is currently set.
fn read_wire_frame(stream: &mut Stream) -> Result<Wire, ReadEnd> {
    let mut head = [0u8; 8];
    read_fully(stream, &mut head, false)?;
    let is_data = &head[..3] == MAGIC.as_slice();
    if !is_data && &head[..3] != CONTROL_MAGIC.as_slice() {
        return Err(ReadEnd::Desync("unknown frame magic".into()));
    }
    let total = u32::from_le_bytes(
        head[LEN_OFFSET..LEN_OFFSET + 4]
            .try_into()
            .expect("4 bytes"),
    ) as usize;
    let floor = if is_data { MIN_DATA_FRAME } else { head.len() };
    if total < floor || total > MAX_WIRE_FRAME {
        return Err(ReadEnd::Desync(format!("implausible frame length {total}")));
    }
    let mut buf = vec![0u8; total];
    buf[..head.len()].copy_from_slice(&head);
    let split = head.len();
    read_fully(stream, &mut buf[split..], true)?;
    if is_data {
        Ok(Wire::Data(Bytes::from(buf)))
    } else {
        match ControlFrame::decode(&buf) {
            Ok(frame) => Ok(Wire::Control(frame)),
            Err(e) => Err(ReadEnd::Desync(format!("control frame rejected: {e}"))),
        }
    }
}

/// `(sender, dest)` shard words of a data frame (header offsets 8 and
/// 12). Only called on frames [`read_wire_frame`] already length-checked.
fn data_addressing(frame: &Bytes) -> (usize, usize) {
    let b = frame.as_slice();
    (
        u32::from_le_bytes(b[8..12].try_into().expect("4 bytes")) as usize,
        u32::from_le_bytes(b[12..16].try_into().expect("4 bytes")) as usize,
    )
}

// ---------------------------------------------------------------------
// Handshake
// ---------------------------------------------------------------------

/// Client side of the connect-time handshake: send `Hello` (with the
/// resume coordinates — both zero on a first connect), await the hub's
/// echo (or its typed rejection).
fn handshake(
    stream: &mut Stream,
    shard: usize,
    graph_digest: u64,
    resume_round: u64,
    next_ship_round: u64,
    timeout: Duration,
) -> Result<(), TransportCause> {
    let io_cause = |e: &io::Error| TransportCause::Io {
        detail: e.to_string(),
    };
    stream
        .set_read_timeout(Some(timeout))
        .map_err(|e| io_cause(&e))?;
    stream
        .set_write_timeout(Some(timeout))
        .map_err(|e| io_cause(&e))?;
    let hello = ControlFrame::Hello {
        shard: shard as u32,
        frame_version: u32::from(FRAME_VERSION),
        graph_digest,
        resume_round,
        next_ship_round,
    };
    stream
        .write_all(hello.encode().as_slice())
        .and_then(|()| stream.flush())
        .map_err(|e| io_cause(&e))?;
    match read_wire_frame(stream) {
        Ok(Wire::Control(ControlFrame::Hello { .. })) => Ok(()),
        Ok(Wire::Control(ControlFrame::Error { error, .. })) => Err(match error {
            SimError::Transport(TransportError { cause, .. }) => cause,
            other => TransportCause::Remote {
                message: other.to_string(),
            },
        }),
        Ok(_) => Err(TransportCause::Handshake {
            detail: "unexpected reply to hello".into(),
        }),
        Err(ReadEnd::Eof | ReadEnd::ClosedMidFrame | ReadEnd::Desync(_)) => {
            Err(TransportCause::Handshake {
                detail: "connection closed before the hello acknowledgement".into(),
            })
        }
        Err(ReadEnd::Tick | ReadEnd::Stalled) => Err(TransportCause::Timeout {
            waited_ms: timeout.as_millis() as u64,
        }),
        Err(ReadEnd::Io(detail)) => Err(TransportCause::Io { detail }),
    }
}

// ---------------------------------------------------------------------
// Hub
// ---------------------------------------------------------------------

/// A unit of outgoing work for a hub writer thread.
enum Item {
    /// Pre-encoded frame bytes (data or control), written verbatim.
    Frame(Bytes),
    /// Flush, close the connection, and exit.
    Exit,
}

/// Replaceable halves of one shard's connection. `epoch` counts
/// registrations; a reader or writer whose stream died waits here for a
/// higher epoch (a reconnect) before declaring the shard gone. The
/// lifecycle supports any number of epochs: every registration installs
/// a fresh read half, a fresh write half, and the receiver of the fresh
/// writer queue swapped in by [`HubShared::prepare_resume`].
#[derive(Debug, Default)]
struct ConnState {
    epoch: u64,
    fresh_read: Option<Stream>,
    fresh_write: Option<Stream>,
    fresh_rx: Option<(mpsc::Receiver<Item>, Arc<AtomicUsize>)>,
    /// A retained clone used only to `shutdown()` the connection from
    /// the hub owner during teardown.
    current: Option<Stream>,
}

#[derive(Debug, Default)]
struct ConnSlot {
    state: Mutex<ConnState>,
    changed: Condvar,
}

#[derive(Debug)]
struct BarrierState {
    round: u64,
    arrived: Vec<bool>,
    count: usize,
}

/// Per-sender relay accounting: what makes relay exactly-once across
/// worker restarts.
#[derive(Debug)]
struct SenderState {
    /// Round barriers seen on this sender's *current* connection (reset
    /// to the re-handshake's `next_ship_round` on re-admission): the
    /// round its next data frame belongs to. Invariant:
    /// `ship_round <= committed`.
    ship_round: u64,
    /// Rounds of this sender globally committed by the barrier
    /// (monotone across epochs). Frames of rounds below this are
    /// deterministic re-sends from a restarted worker — discarded.
    committed: u64,
    /// Destinations already relayed in the in-flight round `committed`;
    /// cleared when that round's live barrier lands. Deduplicates both
    /// a restarted worker's partial re-ship and a surviving client's
    /// ambiguous post-reconnect retry.
    sent_to: Vec<bool>,
}

/// Everything the relay path touches under one lock: the outgoing
/// queues (swappable per re-admission), per-sender exactly-once state,
/// and per-destination replay logs. Lock order: `barrier` before
/// `relay`; never call out (beyond unbounded `mpsc::send`) while held.
struct RelayState {
    /// Per-destination outgoing queues (unbounded — see the module docs
    /// for why this is the deadlock-freedom keystone). Re-admitting a
    /// shard replaces its sender; the writer notices its receiver
    /// disconnect and picks up the fresh pair.
    queues: Vec<mpsc::Sender<Item>>,
    /// Bytes currently queued per destination, paired with the queue of
    /// the same epoch (swapped together by [`HubShared::prepare_resume`];
    /// the writer decrements through its own epoch's handle). Every
    /// enqueue of an [`Item::Frame`] counts here, so the depth measures
    /// genuine queue occupancy, and [`HubShared::relay_data`] checks it
    /// against the [`hub_queue_cap`].
    depths: Vec<Arc<AtomicUsize>>,
    senders: Vec<SenderState>,
    logs: Vec<ReplayLog>,
}

/// What a hub needs to know beyond the address it listens on.
#[derive(Debug, Clone)]
pub(crate) struct HubOptions {
    /// Shard (= spoke) count.
    pub(crate) shards: usize,
    /// Per-blocking-point deadline (reads, writes, client collects).
    pub(crate) timeout: Duration,
    /// How long a dead connection may wait for a replacement before the
    /// shard is declared gone. A supervisor that restarts workers sets
    /// this to cover detection + backoff + relaunch + replay; without
    /// supervision it equals `timeout`.
    pub(crate) grace: Duration,
    /// Graph digest every worker must present (`None`: fixed by the
    /// first hello).
    pub(crate) digest: Option<u64>,
    /// Rounds of per-destination replay history to retain.
    pub(crate) replay_window: u64,
    /// Byte cap per destination relay queue ([`hub_queue_cap`] unless a
    /// test overrides it).
    pub(crate) queue_cap: usize,
}

impl HubOptions {
    pub(crate) fn new(shards: usize, timeout: Duration) -> HubOptions {
        HubOptions {
            shards,
            timeout,
            grace: timeout,
            digest: None,
            replay_window: super::replay_window(),
            queue_cap: hub_queue_cap(),
        }
    }
}

/// A worker lifecycle event received as an `Event` control frame:
/// checkpoint writes, loads, and rejections a supervisor folds into
/// its flight recorder (see `super::control::EVENT_CHECKPOINT_WRITE`
/// and friends).
#[derive(Debug, Clone)]
pub struct WorkerEvent {
    /// The reporting shard.
    pub shard: u32,
    /// The round the event belongs to.
    pub round: u64,
    /// Event code (an `EVENT_*` constant; unknown codes pass through).
    pub code: u8,
    /// Human-readable detail — a checkpoint path, a rejection reason.
    pub detail: String,
}

/// A worker's end-of-run report, received as a `Stats` control frame.
#[derive(Debug, Clone)]
pub struct WorkerStats {
    /// Rounds the worker fully committed.
    pub rounds_run: u64,
    /// Protocol-level digest of the worker's final state (0 if unused).
    pub result_digest: u64,
    /// The worker's accumulated message statistics.
    pub stats: RunStats,
}

/// Result of vetting a reconnect's resume coordinates: the replay
/// stream to write on the fresh connection plus the receiver of the
/// freshly-swapped writer queue.
struct Admission {
    replay: Vec<Bytes>,
    replay_rounds: u64,
    rx: mpsc::Receiver<Item>,
    depth: Arc<AtomicUsize>,
}

struct HubShared {
    shards: usize,
    timeout: Duration,
    grace: Duration,
    relay: Mutex<RelayState>,
    conns: Vec<ConnSlot>,
    barrier: Mutex<BarrierState>,
    done: Mutex<Vec<bool>>,
    /// First failure wins; later failures are echoes of the teardown.
    fatal: Mutex<Option<SimError>>,
    /// An `Error` or final `Shutdown` broadcast has begun.
    halting: AtomicBool,
    /// The hub owner is tearing the fabric down locally.
    stopping: AtomicBool,
    /// Graph digest every worker must present. Fixed by the launcher or
    /// by the first `Hello`.
    digest: Mutex<Option<u64>>,
    /// Last `Heartbeat` (arrival instant, reported round) per shard;
    /// barrier arrivals refresh the instant too, so the age measures
    /// "time since this worker last proved liveness".
    beats: Mutex<Vec<Option<(Instant, u64)>>>,
    /// Per-shard end-of-run `Stats` reports.
    stats_slots: Mutex<Vec<Option<WorkerStats>>>,
    /// Per-shard flight-recorder round records streamed as `Trace`
    /// frames, capped at the trace window — the hub-side copy of each
    /// worker's ring, which is what survives the worker's death.
    traces: Mutex<Vec<VecDeque<RoundTrace>>>,
    /// Cap on each shard's hub-side trace deque
    /// ([`crate::trace::trace_window`] at bind time).
    trace_window: usize,
    /// Worker lifecycle events awaiting a supervisor's drain, oldest
    /// first, capped at [`EVENT_BUFFER_CAP`].
    events: Mutex<VecDeque<WorkerEvent>>,
    /// Per-destination relay queue byte budget ([`hub_queue_cap`] at
    /// construction, overridable per hub for tests).
    queue_cap: usize,
    /// Re-registrations (epoch bumps past the first) — restarted
    /// workers plus surviving-client link reconnects.
    workers_restarted: AtomicUsize,
    /// Rounds fast-forwarded to reconnecting clients from replay logs.
    rounds_replayed: AtomicUsize,
    /// Heartbeats a supervisor judged overdue before killing a worker.
    heartbeats_missed: AtomicUsize,
    /// Workers that resumed from an on-disk checkpoint (counted when
    /// their `EVENT_CHECKPOINT_LOAD` report arrives — the worker only
    /// sends it after a checkpoint actually restored).
    checkpoint_restores: AtomicUsize,
}

impl fmt::Debug for HubShared {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("HubShared")
            .field("shards", &self.shards)
            .field("halting", &self.halting.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

impl HubShared {
    #[allow(clippy::type_complexity)]
    fn new(options: &HubOptions) -> (Arc<Self>, Vec<(mpsc::Receiver<Item>, Arc<AtomicUsize>)>) {
        let shards = options.shards;
        let mut queues = Vec::with_capacity(shards);
        let mut depths = Vec::with_capacity(shards);
        let mut receivers = Vec::with_capacity(shards);
        for _ in 0..shards {
            let (tx, rx) = mpsc::channel();
            let depth = Arc::new(AtomicUsize::new(0));
            queues.push(tx);
            depths.push(Arc::clone(&depth));
            receivers.push((rx, depth));
        }
        let shared = Arc::new(HubShared {
            shards,
            timeout: options.timeout,
            grace: options.grace.max(options.timeout),
            relay: Mutex::new(RelayState {
                queues,
                depths,
                senders: (0..shards)
                    .map(|_| SenderState {
                        ship_round: 0,
                        committed: 0,
                        sent_to: vec![false; shards],
                    })
                    .collect(),
                logs: (0..shards)
                    .map(|_| ReplayLog::new(options.replay_window))
                    .collect(),
            }),
            conns: (0..shards).map(|_| ConnSlot::default()).collect(),
            barrier: Mutex::new(BarrierState {
                round: 0,
                arrived: vec![false; shards],
                count: 0,
            }),
            done: Mutex::new(vec![false; shards]),
            fatal: Mutex::new(None),
            halting: AtomicBool::new(false),
            stopping: AtomicBool::new(false),
            digest: Mutex::new(options.digest),
            beats: Mutex::new(vec![None; shards]),
            stats_slots: Mutex::new((0..shards).map(|_| None).collect()),
            traces: Mutex::new((0..shards).map(|_| VecDeque::new()).collect()),
            trace_window: crate::trace::trace_window(),
            events: Mutex::new(VecDeque::new()),
            queue_cap: options.queue_cap,
            workers_restarted: AtomicUsize::new(0),
            rounds_replayed: AtomicUsize::new(0),
            heartbeats_missed: AtomicUsize::new(0),
            checkpoint_restores: AtomicUsize::new(0),
        });
        (shared, receivers)
    }

    fn enqueue_all(&self, bytes: &Bytes) {
        let relay = self.relay.lock().expect("no poisoned relay state");
        for (q, depth) in relay.queues.iter().zip(&relay.depths) {
            depth.fetch_add(bytes.len(), Ordering::Relaxed);
            let _ = q.send(Item::Frame(bytes.clone()));
        }
    }

    fn finish_queues(&self) {
        let relay = self.relay.lock().expect("no poisoned relay state");
        for q in &relay.queues {
            let _ = q.send(Item::Exit);
        }
    }

    /// Relays one data frame from `from` to `dest` with exactly-once
    /// semantics across sender restarts, logging it for replay.
    ///
    /// # Errors
    ///
    /// A typed error naming `dest` when its queue has accumulated more
    /// than the [`hub_queue_cap`] byte budget — a destination that is
    /// too slow (or never connected) to drain what peers ship it. The
    /// *caller* must turn this into [`HubShared::declare_fatal`]: the
    /// teardown broadcast re-takes the relay lock held here.
    fn relay_data(&self, from: usize, dest: usize, frame: Bytes) -> Result<(), SimError> {
        let mut relay = self.relay.lock().expect("no poisoned relay state");
        let relay = &mut *relay;
        let s = &mut relay.senders[from];
        let round = s.ship_round;
        if round < s.committed {
            // A restarted worker deterministically re-shipping a round
            // the fabric already committed: a pure echo.
            return Ok(());
        }
        if s.sent_to[dest] {
            // Duplicate within the in-flight round (partial re-ship
            // after a crash, or an ambiguous post-reconnect retry).
            return Ok(());
        }
        s.sent_to[dest] = true;
        relay.logs[dest].record(round, frame.clone());
        let queued = relay.depths[dest].fetch_add(frame.len(), Ordering::Relaxed) + frame.len();
        let _ = relay.queues[dest].send(Item::Frame(frame));
        if queued > self.queue_cap {
            return Err(SimError::Transport(TransportError {
                shard: dest,
                round: round as usize,
                cause: TransportCause::Io {
                    detail: format!(
                        "hub relay queue for shard {dest} holds {queued} bytes, over the \
                         {ENV_HUB_QUEUE_CAP} cap of {} — the destination is too slow to \
                         drain its frames or never connected",
                        self.queue_cap
                    ),
                },
            }));
        }
        Ok(())
    }

    /// Records a worker's liveness proof (heartbeat or barrier
    /// arrival).
    fn note_beat(&self, shard: usize, round: u64) {
        self.beats.lock().expect("no poisoned beats")[shard] = Some((Instant::now(), round));
    }

    fn current_round(&self) -> u64 {
        self.barrier.lock().expect("no poisoned barrier").round
    }

    /// Records the first fatal error and broadcasts `Error` + `Shutdown`
    /// to every spoke, then releases the writers. Idempotent: echoes of
    /// an ongoing teardown are dropped.
    fn declare_fatal(&self, origin: u32, error: SimError) {
        {
            let mut slot = self.fatal.lock().expect("no poisoned fatal slot");
            if slot.is_some() {
                return;
            }
            *slot = Some(error.clone());
        }
        self.halting.store(true, Ordering::SeqCst);
        self.enqueue_all(&ControlFrame::Error { origin, error }.encode());
        self.enqueue_all(&ControlFrame::Shutdown { origin }.encode());
        self.finish_queues();
        self.wake_waiters();
    }

    fn mark_done(&self, shard: usize) {
        let mut done = self.done.lock().expect("no poisoned done flags");
        if done[shard] {
            return;
        }
        done[shard] = true;
        if done.iter().all(|&d| d) {
            self.halting.store(true, Ordering::SeqCst);
            self.enqueue_all(&ControlFrame::Shutdown { origin: HUB_ORIGIN }.encode());
            self.finish_queues();
            self.wake_waiters();
        }
    }

    fn is_done(&self, shard: usize) -> bool {
        self.done.lock().expect("no poisoned done flags")[shard]
    }

    fn halted(&self) -> bool {
        self.halting.load(Ordering::SeqCst) || self.stopping.load(Ordering::SeqCst)
    }

    fn wake_waiters(&self) {
        for slot in &self.conns {
            // Touch the mutex so sleepers cannot miss the notify.
            drop(slot.state.lock().expect("no poisoned conn slot"));
            slot.changed.notify_all();
        }
    }

    /// One shard's round barrier arrived. When the round is complete the
    /// acknowledgement is enqueued to every destination *under the
    /// barrier lock*, which orders it after every reader's enqueues of
    /// that round's data frames.
    ///
    /// Re-admission rules: a barrier strictly below the sender's
    /// connection-local `ship_round` is a duplicate retry (ignored); a
    /// barrier at `ship_round` but below `committed` is a restarted
    /// worker's echo (advances `ship_round` only); a barrier at
    /// `ship_round == committed` is live and goes through the global
    /// barrier as always.
    fn on_barrier(&self, from: usize, round: u64) -> Result<(), SimError> {
        self.note_beat(from, round);
        let mut b = self.barrier.lock().expect("no poisoned barrier");
        let mut relay = self.relay.lock().expect("no poisoned relay state");
        let relay = &mut *relay;
        let s = &mut relay.senders[from];
        if round < s.ship_round {
            return Ok(());
        }
        if round == s.ship_round && round < s.committed {
            s.ship_round = round + 1;
            return Ok(());
        }
        if round != b.round || round != s.ship_round || b.arrived[from] {
            return Err(SimError::Transport(TransportError {
                shard: from,
                round: b.round as usize,
                cause: TransportCause::Io {
                    detail: format!(
                        "barrier desync: shard {from} closed round {round} while the fabric is in round {}",
                        b.round
                    ),
                },
            }));
        }
        b.arrived[from] = true;
        b.count += 1;
        s.ship_round = round + 1;
        s.committed = round + 1;
        s.sent_to.fill(false);
        if b.count == self.shards {
            let ack = ControlFrame::RoundBarrier { round }.encode();
            b.round += 1;
            b.count = 0;
            b.arrived.fill(false);
            for dest in 0..self.shards {
                relay.logs[dest].record(round, ack.clone());
                relay.depths[dest].fetch_add(ack.len(), Ordering::Relaxed);
                let _ = relay.queues[dest].send(Item::Frame(ack.clone()));
            }
            for log in &mut relay.logs {
                log.evict_committed(b.round);
            }
        }
        Ok(())
    }

    /// Vets a (re)connect's resume coordinates and atomically swaps in a
    /// fresh writer queue for `conn`: snapshots the replay suffix the
    /// client asked for, resets the sender's connection-local ship
    /// round, and replaces the queue so no stale live frame can precede
    /// the replay on the fresh stream. The caller writes the snapshot
    /// directly, then registers the connection (which hands the stream
    /// and the fresh receiver to the writer).
    fn prepare_resume(
        &self,
        conn: usize,
        resume_round: u64,
        next_ship_round: u64,
    ) -> Result<Admission, String> {
        let mut relay = self.relay.lock().expect("no poisoned relay state");
        let relay = &mut *relay;
        let committed = relay.senders[conn].committed;
        if next_ship_round > committed {
            return Err(format!(
                "{STALE_RESUME_DETAIL_PREFIX}: shard {conn} claims it will ship round \
                 {next_ship_round} but only {committed} of its rounds are committed"
            ));
        }
        let (replay, replay_rounds) = match relay.logs[conn].snapshot_from(resume_round) {
            Snapshot::Entries { frames, rounds } => (frames, rounds),
            Snapshot::Evicted { floor } => {
                return Err(format!(
                    "{EVICTED_DETAIL_PREFIX}: shard {conn} asked to resume at round \
                     {resume_round} but the oldest retained round is {floor}"
                ));
            }
        };
        relay.senders[conn].ship_round = next_ship_round;
        let (tx, rx) = mpsc::channel();
        let depth = Arc::new(AtomicUsize::new(0));
        relay.queues[conn] = tx;
        relay.depths[conn] = Arc::clone(&depth);
        Ok(Admission {
            replay,
            replay_rounds,
            rx,
            depth,
        })
    }

    /// Installs (or replaces, on reconnect) shard `shard`'s connection
    /// and wakes any reader/writer waiting out a dead stream. `rx` is
    /// the receiver of the queue [`HubShared::prepare_resume`] swapped
    /// in for this epoch.
    fn register_conn(
        &self,
        shard: usize,
        stream: Stream,
        rx: mpsc::Receiver<Item>,
        depth: Arc<AtomicUsize>,
    ) -> io::Result<()> {
        let _ = stream.set_read_timeout(Some(READ_TICK));
        let _ = stream.set_write_timeout(Some(self.timeout));
        let read = stream.try_clone()?;
        let keep = stream.try_clone()?;
        let slot = &self.conns[shard];
        let mut state = slot.state.lock().expect("no poisoned conn slot");
        if let Some(old) = state.current.take() {
            old.shutdown_both();
        }
        state.epoch += 1;
        state.fresh_read = Some(read);
        state.fresh_write = Some(stream);
        state.fresh_rx = Some((rx, depth));
        state.current = Some(keep);
        drop(state);
        slot.changed.notify_all();
        Ok(())
    }

    /// Validates a `Hello` against the fabric's expectations. Returns a
    /// handshake failure detail on mismatch.
    fn vet_hello(&self, conn: usize, hello: &ControlFrame) -> Result<(), String> {
        let ControlFrame::Hello {
            shard,
            frame_version,
            graph_digest,
            ..
        } = hello
        else {
            return Err("first frame was not a hello".into());
        };
        if *shard as usize != conn {
            return Err(format!(
                "peer identified as shard {shard}, expected shard {conn}"
            ));
        }
        let min = u32::from(FRAME_VERSION_MIN);
        let max = u32::from(FRAME_VERSION);
        if !(min..=max).contains(frame_version) {
            return Err(format!(
                "peer encodes frame version {frame_version}, this hub decodes v{min} through v{max}"
            ));
        }
        let mut expected = self.digest.lock().expect("no poisoned digest");
        match *expected {
            Some(want) if want != *graph_digest => Err(format!(
                "graph digest mismatch: peer loaded {graph_digest:#018x}, fabric expects {want:#018x}"
            )),
            Some(_) => Ok(()),
            None => {
                *expected = Some(*graph_digest);
                Ok(())
            }
        }
    }

    /// Takes the fresh read half installed by [`Self::register_conn`].
    fn take_fresh_read(&self, conn: usize) -> Option<(Stream, u64)> {
        let mut state = self.conns[conn]
            .state
            .lock()
            .expect("no poisoned conn slot");
        state.fresh_read.take().map(|s| (s, state.epoch))
    }

    /// Waits up to the supervision grace window for a reconnect to
    /// supply a newer read half than `epoch`.
    fn await_read_replacement(&self, conn: usize, epoch: u64) -> Option<(Stream, u64)> {
        let slot = &self.conns[conn];
        let deadline = Instant::now() + self.grace;
        let mut state = slot.state.lock().expect("no poisoned conn slot");
        loop {
            if self.stopping.load(Ordering::SeqCst) {
                return None;
            }
            if state.epoch > epoch {
                if let Some(s) = state.fresh_read.take() {
                    return Some((s, state.epoch));
                }
                // The matching half was already claimed by a newer
                // thread; this stale waiter bows out.
                return None;
            }
            let remaining = deadline
                .checked_duration_since(Instant::now())
                .filter(|d| !d.is_zero())?;
            let (next, _timed_out) = slot
                .changed
                .wait_timeout(state, remaining)
                .expect("no poisoned conn slot");
            state = next;
        }
    }

    /// Waits up to the supervision grace window for a registration newer
    /// than `epoch` to supply the writer a fresh write half *and* the
    /// receiver of the freshly-swapped queue (they travel together: a
    /// stream is only ever paired with its own epoch's queue).
    #[allow(clippy::type_complexity)]
    fn await_write_replacement(
        &self,
        conn: usize,
        epoch: u64,
    ) -> Option<(Stream, mpsc::Receiver<Item>, Arc<AtomicUsize>, u64)> {
        let slot = &self.conns[conn];
        let deadline = Instant::now() + self.grace;
        let mut state = slot.state.lock().expect("no poisoned conn slot");
        loop {
            if self.stopping.load(Ordering::SeqCst) {
                return None;
            }
            if state.epoch > epoch {
                if let (Some(s), Some((rx, depth))) =
                    (state.fresh_write.take(), state.fresh_rx.take())
                {
                    return Some((s, rx, depth, state.epoch));
                }
                return None;
            }
            let remaining = deadline
                .checked_duration_since(Instant::now())
                .filter(|d| !d.is_zero())?;
            let (next, _timed_out) = slot
                .changed
                .wait_timeout(state, remaining)
                .expect("no poisoned conn slot");
            state = next;
        }
    }
}

/// The hub's `Hello` acknowledgement. Written *directly* to a freshly
/// vetted stream by the vetting thread — never through the per-shard
/// queue, which may already hold data frames from fast peers that would
/// otherwise overtake the acknowledgement.
fn hello_ack(shared: &HubShared, conn: usize) -> Bytes {
    ControlFrame::Hello {
        shard: conn as u32,
        frame_version: u32::from(FRAME_VERSION),
        graph_digest: shared
            .digest
            .lock()
            .expect("no poisoned digest")
            .unwrap_or(0),
        resume_round: 0,
        next_ship_round: 0,
    }
    .encode()
}

/// The resume coordinates carried by a vetted `Hello`.
fn hello_resume(hello: &ControlFrame) -> (u64, u64) {
    match hello {
        ControlFrame::Hello {
            resume_round,
            next_ship_round,
            ..
        } => (*resume_round, *next_ship_round),
        _ => unreachable!("caller matched this frame as a hello"),
    }
}

/// Why an admission failed: a protocol-level refusal (the claim was
/// invalid or fell below the replay floor — fabric-fatal) versus the
/// fresh link dying mid-admission (quietly retriable: the peer can just
/// reconnect again).
enum AdmitError {
    Refused(String),
    Link(String),
}

/// Admits a vetted connection: swaps in a fresh writer queue, writes the
/// acknowledgement and the replay suffix *directly* on the stream (so
/// neither can be overtaken by queued live traffic), then registers the
/// stream + queue pair, releasing the shard's reader and writer into the
/// new epoch.
fn admit_conn(
    shared: &Arc<HubShared>,
    conn: usize,
    hello: &ControlFrame,
    mut stream: Stream,
) -> Result<(), AdmitError> {
    let (resume_round, next_ship_round) = hello_resume(hello);
    let admission = match shared.prepare_resume(conn, resume_round, next_ship_round) {
        Ok(admission) => admission,
        Err(detail) => {
            // Tell the connector why before hanging up.
            let refusal = refusal_frame(conn, detail.clone());
            let _ = stream
                .write_all(refusal.as_slice())
                .and_then(|()| stream.flush());
            stream.shutdown_both();
            return Err(AdmitError::Refused(detail));
        }
    };
    let ack = hello_ack(shared, conn);
    stream
        .write_all(ack.as_slice())
        .and_then(|()| stream.flush())
        .map_err(|e| AdmitError::Link(format!("hello acknowledgement write failed: {e}")))?;
    for frame in &admission.replay {
        stream
            .write_all(frame.as_slice())
            .map_err(|e| AdmitError::Link(format!("replay write failed: {e}")))?;
    }
    stream
        .flush()
        .map_err(|e| AdmitError::Link(format!("replay flush failed: {e}")))?;
    let rejoin = {
        let state = shared.conns[conn]
            .state
            .lock()
            .expect("no poisoned conn slot");
        state.epoch > 0
    };
    if rejoin {
        shared.workers_restarted.fetch_add(1, Ordering::Relaxed);
        // Only re-admissions count as recovery: a *first* admission can
        // also replay (a fast peer's frames recorded before this shard
        // registered get re-sent from the log across the queue swap),
        // but that is ordinary startup skew, not a heal.
        if admission.replay_rounds > 0 {
            shared
                .rounds_replayed
                .fetch_add(admission.replay_rounds as usize, Ordering::Relaxed);
        }
    }
    shared
        .register_conn(conn, stream, admission.rx, admission.depth)
        .map_err(|e| AdmitError::Link(format!("connection registration failed: {e}")))?;
    Ok(())
}

/// Pairs-mode connection driver: handshake on the raw hub-side stream,
/// then admit it (releasing the writer) and relay. Admission *after*
/// the acknowledgement write is what guarantees the client sees the
/// acknowledgement before any queued traffic.
fn run_pairs_conn(shared: &Arc<HubShared>, conn: usize, mut stream: Stream) {
    let _ = stream.set_read_timeout(Some(shared.timeout));
    let _ = stream.set_write_timeout(Some(shared.timeout));
    let fail = |detail: String| {
        shared.declare_fatal(
            conn as u32,
            SimError::Transport(TransportError {
                shard: conn,
                round: 0,
                cause: TransportCause::Handshake { detail },
            }),
        );
    };
    let hello = match read_wire_frame(&mut stream) {
        Ok(Wire::Control(hello @ ControlFrame::Hello { .. })) => hello,
        Ok(_) => return fail("first frame was not a hello".into()),
        Err(ReadEnd::Tick | ReadEnd::Stalled) => {
            return fail("no hello within the handshake deadline".into())
        }
        Err(_) => return fail("connection lost during the handshake".into()),
    };
    if let Err(detail) = shared.vet_hello(conn, &hello) {
        return fail(detail);
    }
    if let Err(AdmitError::Refused(detail) | AdmitError::Link(detail)) =
        admit_conn(shared, conn, &hello, stream)
    {
        return fail(detail);
    }
    run_reader(shared, conn);
}

/// Relay loop for one shard's incoming stream (handshake already done by
/// [`run_pairs_conn`] or the accept thread; the stream arrives via
/// [`HubShared::register_conn`]).
fn run_reader(shared: &Arc<HubShared>, conn: usize) {
    let Some((mut stream, mut epoch)) = shared.take_fresh_read(conn) else {
        return;
    };
    loop {
        if shared.halted() {
            return;
        }
        match read_wire_frame(&mut stream) {
            Ok(Wire::Data(frame)) => {
                let (sender, dest) = data_addressing(&frame);
                if sender != conn {
                    shared.declare_fatal(
                        conn as u32,
                        SimError::Frame {
                            shard: conn,
                            round: shared.current_round() as usize,
                            error: FrameError::Misrouted {
                                expected: conn,
                                found: sender,
                            },
                        },
                    );
                    return;
                }
                if dest >= shared.shards {
                    shared.declare_fatal(
                        conn as u32,
                        SimError::Transport(TransportError {
                            shard: conn,
                            round: shared.current_round() as usize,
                            cause: TransportCause::Io {
                                detail: format!("frame addressed to nonexistent shard {dest}"),
                            },
                        }),
                    );
                    return;
                }
                if let Err(error) = shared.relay_data(conn, dest, frame) {
                    // Queue cap breach: declared fatal *here*, outside
                    // the relay lock the breach was detected under.
                    shared.declare_fatal(conn as u32, error);
                    return;
                }
            }
            Ok(Wire::Control(ControlFrame::RoundBarrier { round })) => {
                if let Err(error) = shared.on_barrier(conn, round) {
                    shared.declare_fatal(conn as u32, error);
                    return;
                }
            }
            Ok(Wire::Control(ControlFrame::Heartbeat { round, .. })) => {
                shared.note_beat(conn, round);
            }
            Ok(Wire::Control(ControlFrame::Stats {
                rounds_run,
                result_digest,
                stats,
                ..
            })) => {
                shared.stats_slots.lock().expect("no poisoned stats")[conn] = Some(WorkerStats {
                    rounds_run,
                    result_digest,
                    stats,
                });
            }
            Ok(Wire::Control(ControlFrame::Trace { records, .. })) => {
                let mut traces = shared.traces.lock().expect("no poisoned traces");
                let ring = &mut traces[conn];
                for record in records {
                    if ring.len() == shared.trace_window {
                        ring.pop_front();
                    }
                    ring.push_back(record);
                }
            }
            Ok(Wire::Control(ControlFrame::Event {
                shard,
                round,
                code,
                detail,
            })) => {
                if code == super::control::EVENT_CHECKPOINT_LOAD {
                    shared.checkpoint_restores.fetch_add(1, Ordering::Relaxed);
                }
                let mut events = shared.events.lock().expect("no poisoned events");
                if events.len() == EVENT_BUFFER_CAP {
                    events.pop_front();
                }
                events.push_back(WorkerEvent {
                    shard,
                    round,
                    code,
                    detail,
                });
            }
            Ok(Wire::Control(ControlFrame::Error { origin, error })) => {
                shared.declare_fatal(origin, error);
                return;
            }
            Ok(Wire::Control(ControlFrame::Shutdown { .. })) => {
                shared.mark_done(conn);
                return;
            }
            Ok(Wire::Control(ControlFrame::Hello { .. })) => {
                shared.declare_fatal(
                    conn as u32,
                    SimError::Transport(TransportError {
                        shard: conn,
                        round: shared.current_round() as usize,
                        cause: TransportCause::Io {
                            detail: "unexpected hello mid-stream".into(),
                        },
                    }),
                );
                return;
            }
            Err(ReadEnd::Tick) => {}
            Err(ReadEnd::Eof | ReadEnd::ClosedMidFrame | ReadEnd::Io(_)) => {
                if shared.is_done(conn) || shared.halted() {
                    return;
                }
                // Grace window: a reconnect may replace this stream. A
                // close mid-frame (SIGKILL mid-ship) is recoverable too:
                // the fresh stream starts at a frame boundary and the
                // relay's exactly-once accounting absorbs the re-ship.
                if let Some((fresh, e)) = shared.await_read_replacement(conn, epoch) {
                    stream = fresh;
                    epoch = e;
                    continue;
                }
                if !shared.halted() {
                    shared.declare_fatal(
                        conn as u32,
                        SimError::Transport(TransportError {
                            shard: conn,
                            round: shared.current_round() as usize,
                            cause: TransportCause::Disconnected,
                        }),
                    );
                }
                return;
            }
            Err(ReadEnd::Stalled) => {
                shared.declare_fatal(
                    conn as u32,
                    SimError::Transport(TransportError {
                        shard: conn,
                        round: shared.current_round() as usize,
                        cause: TransportCause::Io {
                            detail: "stream stalled mid-frame".into(),
                        },
                    }),
                );
                return;
            }
            Err(ReadEnd::Desync(detail)) => {
                shared.declare_fatal(
                    conn as u32,
                    SimError::Transport(TransportError {
                        shard: conn,
                        round: shared.current_round() as usize,
                        cause: TransportCause::Io { detail },
                    }),
                );
                return;
            }
        }
    }
}

/// Write loop for one shard's outgoing stream.
///
/// The writer starts with no stream at all: every admission — including
/// the first — swaps the shard's queue and hands the writer a `(stream,
/// queue receiver)` pair for the new epoch. When its receiver
/// disconnects (the queue was swapped for a newer epoch) the writer
/// waits out the grace window for the replacement pair. Frames that
/// cannot be written — no stream yet, or a mid-epoch write failure —
/// are *dropped*, never retained across epochs: every data frame and
/// barrier ack is in the destination's replay log, so the next
/// admission re-delivers them in order, and retaining a stale copy
/// would double-deliver. (Un-logged `Error`/`Shutdown` broadcasts can
/// be lost in this narrow window; the client then ends on its own
/// bounded timeout instead — still typed, never a hang.)
///
/// Declaring the shard gone is the *reader's* job (it owns the grace
/// deadline); the writer just bows out quietly when no replacement
/// comes.
fn run_writer(
    shared: &Arc<HubShared>,
    conn: usize,
    rx: mpsc::Receiver<Item>,
    depth: Arc<AtomicUsize>,
) {
    let mut rx = rx;
    let mut depth = depth;
    let mut stream: Option<Stream> = None;
    let mut epoch = 0u64;
    loop {
        match rx.recv_timeout(READ_TICK) {
            Ok(Item::Exit) => {
                if let Some(s) = &mut stream {
                    let _ = s.flush();
                    s.shutdown_both();
                }
                return;
            }
            Ok(Item::Frame(bytes)) => {
                // Dequeued: off the books whether or not the write
                // lands (a failed write drops the frame too).
                depth.fetch_sub(bytes.len(), Ordering::Relaxed);
                let Some(s) = stream.as_mut() else {
                    continue; // no stream this epoch: replay covers it
                };
                if s.write_all(bytes.as_slice())
                    .and_then(|()| s.flush())
                    .is_err()
                {
                    // The stream died mid-epoch. Drop the frame (the
                    // replay log has it) and keep draining; a reconnect
                    // swaps the queue, which lands us in the
                    // disconnected arm below.
                    stream = None;
                }
            }
            Err(mpsc::RecvTimeoutError::Timeout) => {
                if shared.stopping.load(Ordering::SeqCst) {
                    if let Some(s) = &mut stream {
                        let _ = s.flush();
                    }
                    return;
                }
            }
            Err(mpsc::RecvTimeoutError::Disconnected) => {
                match shared.await_write_replacement(conn, epoch) {
                    Some((s, fresh_rx, fresh_depth, e)) => {
                        stream = Some(s);
                        rx = fresh_rx;
                        depth = fresh_depth;
                        epoch = e;
                    }
                    None => return,
                }
            }
        }
    }
}

/// The routing core shared by the in-process mesh and the
/// process-per-shard launcher. Owns the relay threads; joined (with all
/// blocking bounded) by [`Hub::stop_and_join`].
#[derive(Debug)]
pub(crate) struct Hub {
    shared: Arc<HubShared>,
    threads: Arc<Mutex<Vec<JoinHandle<()>>>>,
    unix_path: Option<PathBuf>,
}

impl Hub {
    /// In-process fabric over `UnixStream::pair()`s — no listener, no
    /// filesystem, no reconnect. Returns the hub and the client-side
    /// stream of each shard.
    fn new_pairs(shards: usize, timeout: Duration) -> io::Result<(Hub, Vec<Stream>)> {
        let (shared, receivers) = HubShared::new(&HubOptions::new(shards, timeout));
        let threads = Arc::new(Mutex::new(Vec::new()));
        let mut client_halves = Vec::with_capacity(shards);
        {
            let mut handles = threads.lock().expect("no poisoned thread list");
            for (conn, (rx, depth)) in receivers.into_iter().enumerate() {
                let hub_shared = Arc::clone(&shared);
                handles.push(
                    std::thread::Builder::new()
                        .name(format!("hub-writer-{conn}"))
                        .spawn(move || run_writer(&hub_shared, conn, rx, depth))
                        .expect("spawn hub writer"),
                );
            }
            for conn in 0..shards {
                let (client, hub_side) = UnixStream::pair()?;
                client_halves.push(Stream::Unix(client));
                let hub_shared = Arc::clone(&shared);
                handles.push(
                    std::thread::Builder::new()
                        .name(format!("hub-reader-{conn}"))
                        .spawn(move || run_pairs_conn(&hub_shared, conn, Stream::Unix(hub_side)))
                        .expect("spawn hub reader"),
                );
            }
        }
        Ok((
            Hub {
                shared,
                threads,
                unix_path: None,
            },
            client_halves,
        ))
    }

    /// Listening fabric for independent clients (worker processes, or
    /// in-process TCP tests). The accept loop handshakes each
    /// connection, installs it by shard id — replacing a dead
    /// connection on reconnect — and keeps accepting until the fabric
    /// halts.
    pub(crate) fn listen(
        addr: &HubAddr,
        shards: usize,
        timeout: Duration,
        expected_digest: Option<u64>,
    ) -> io::Result<(Hub, HubAddr)> {
        let mut options = HubOptions::new(shards, timeout);
        options.digest = expected_digest;
        Self::listen_with(addr, options)
    }

    /// [`Hub::listen`] with full [`HubOptions`] control (supervision
    /// grace, replay window).
    pub(crate) fn listen_with(addr: &HubAddr, options: HubOptions) -> io::Result<(Hub, HubAddr)> {
        let (listener, bound) = match addr {
            HubAddr::Unix(path) => (
                Listener::Unix(UnixListener::bind(path)?),
                HubAddr::Unix(path.clone()),
            ),
            HubAddr::Tcp(req) => {
                let l = TcpListener::bind(req)?;
                let actual = l.local_addr()?;
                (Listener::Tcp(l), HubAddr::Tcp(actual))
            }
        };
        listener.set_nonblocking(true)?;
        let (shared, receivers) = HubShared::new(&options);
        let threads = Arc::new(Mutex::new(Vec::new()));
        {
            let mut handles = threads.lock().expect("no poisoned thread list");
            for (conn, (rx, depth)) in receivers.into_iter().enumerate() {
                let hub_shared = Arc::clone(&shared);
                handles.push(
                    std::thread::Builder::new()
                        .name(format!("hub-writer-{conn}"))
                        .spawn(move || run_writer(&hub_shared, conn, rx, depth))
                        .expect("spawn hub writer"),
                );
            }
            let accept_shared = Arc::clone(&shared);
            let accept_threads = Arc::clone(&threads);
            handles.push(
                std::thread::Builder::new()
                    .name("hub-accept".into())
                    .spawn(move || run_accept(&accept_shared, &accept_threads, &listener))
                    .expect("spawn hub accept loop"),
            );
        }
        let unix_path = match &bound {
            HubAddr::Unix(path) => Some(path.clone()),
            HubAddr::Tcp(_) => None,
        };
        Ok((
            Hub {
                shared,
                threads,
                unix_path,
            },
            bound,
        ))
    }

    /// The first fatal error the fabric recorded, if any.
    pub(crate) fn first_error(&self) -> Option<SimError> {
        self.shared
            .fatal
            .lock()
            .expect("no poisoned fatal slot")
            .clone()
    }

    /// The fabric's current barrier round (rounds fully committed by
    /// every shard). A supervisor watches this for global stalls.
    pub(crate) fn barrier_round(&self) -> u64 {
        self.shared.current_round()
    }

    /// Per-shard committed round counts — how far each shard's inputs
    /// have been durably folded into the barrier. The least-advanced
    /// not-yet-done shard is the prime wedge suspect.
    pub(crate) fn committed_rounds(&self) -> Vec<u64> {
        let relay = self.shared.relay.lock().expect("no poisoned relay state");
        relay.senders.iter().map(|s| s.committed).collect()
    }

    /// Per-shard liveness: `(age of last proof, round it reported)`.
    /// Heartbeats and barrier arrivals both refresh it.
    pub(crate) fn beat_ages(&self) -> Vec<Option<(Duration, u64)>> {
        let beats = self.shared.beats.lock().expect("no poisoned beats");
        beats
            .iter()
            .map(|b| b.map(|(at, round)| (at.elapsed(), round)))
            .collect()
    }

    /// Which shards have announced orderly completion.
    pub(crate) fn done_flags(&self) -> Vec<bool> {
        self.shared
            .done
            .lock()
            .expect("no poisoned done flags")
            .clone()
    }

    /// Per-shard end-of-run reports received as `Stats` frames.
    pub(crate) fn worker_stats(&self) -> Vec<Option<WorkerStats>> {
        self.shared
            .stats_slots
            .lock()
            .expect("no poisoned stats")
            .clone()
    }

    /// Per-shard flight-recorder records streamed as `Trace` frames
    /// (chronological, capped at the trace window). Empty vectors for
    /// untraced runs. This is the hub's copy of each worker's ring, so
    /// it covers workers that are already dead.
    pub(crate) fn worker_traces(&self) -> Vec<Vec<RoundTrace>> {
        let traces = self.shared.traces.lock().expect("no poisoned traces");
        traces.iter().map(|d| d.iter().copied().collect()).collect()
    }

    /// `(workers_restarted, rounds_replayed, heartbeats_missed,
    /// checkpoint_restores)` so far.
    pub(crate) fn recovery_counters(&self) -> (usize, usize, usize, usize) {
        (
            self.shared.workers_restarted.load(Ordering::Relaxed),
            self.shared.rounds_replayed.load(Ordering::Relaxed),
            self.shared.heartbeats_missed.load(Ordering::Relaxed),
            self.shared.checkpoint_restores.load(Ordering::Relaxed),
        )
    }

    /// Drains the buffered worker lifecycle events (checkpoint writes,
    /// loads, rejections) in arrival order. The hub-side buffer is what
    /// survives a worker's death, exactly like the trace rings.
    pub(crate) fn take_worker_events(&self) -> Vec<WorkerEvent> {
        self.shared
            .events
            .lock()
            .expect("no poisoned events")
            .drain(..)
            .collect()
    }

    /// A supervisor judged a heartbeat overdue (before acting on it).
    pub(crate) fn note_missed_heartbeat(&self) {
        self.shared
            .heartbeats_missed
            .fetch_add(1, Ordering::Relaxed);
    }

    /// A supervisor exhausted its restart budget for `shard`: end the
    /// run with a typed error naming it, releasing every peer.
    pub(crate) fn declare_lost(&self, shard: usize, detail: String) {
        self.shared.declare_fatal(
            shard as u32,
            SimError::Transport(TransportError {
                shard,
                round: self.shared.current_round() as usize,
                cause: TransportCause::Io { detail },
            }),
        );
    }

    /// Waits (polling) until the fabric halts — all shards shut down
    /// orderly, or a fatal error was broadcast — or `limit` elapses.
    /// Returns whether it halted.
    pub(crate) fn wait_halted(&self, limit: Duration) -> bool {
        let deadline = Instant::now() + limit;
        while !self.shared.halting.load(Ordering::SeqCst) {
            if Instant::now() >= deadline {
                return false;
            }
            std::thread::sleep(Duration::from_millis(20));
        }
        true
    }

    /// Tears the fabric down: closes every connection, releases every
    /// thread (all blocking in the hub is tick- or timeout-bounded), and
    /// joins them. Safe to call on an already-halted hub.
    pub(crate) fn stop_and_join(&mut self) {
        self.shared.stopping.store(true, Ordering::SeqCst);
        self.shared.finish_queues();
        for slot in &self.shared.conns {
            let state = slot.state.lock().expect("no poisoned conn slot");
            if let Some(s) = &state.current {
                s.shutdown_both();
            }
        }
        self.shared.wake_waiters();
        let handles = std::mem::take(&mut *self.threads.lock().expect("no poisoned thread list"));
        for handle in handles {
            let _ = handle.join();
        }
        if let Some(path) = self.unix_path.take() {
            let _ = std::fs::remove_file(path);
        }
    }

    /// Kills shard `shard`'s current connection (fault-injection tests).
    /// Waits for the registration if the accept thread has not finished
    /// it yet — the client learns the handshake result slightly before
    /// the hub records the connection.
    #[cfg(test)]
    fn sever(&self, shard: usize) {
        for _ in 0..1000 {
            {
                let state = self.shared.conns[shard]
                    .state
                    .lock()
                    .expect("no poisoned conn slot");
                if let Some(s) = &state.current {
                    s.shutdown_both();
                    return;
                }
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        panic!("no connection to sever for shard {shard}");
    }
}

impl Drop for Hub {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

#[derive(Debug)]
enum Listener {
    Unix(UnixListener),
    Tcp(TcpListener),
}

impl Listener {
    fn set_nonblocking(&self, nb: bool) -> io::Result<()> {
        match self {
            Listener::Unix(l) => l.set_nonblocking(nb),
            Listener::Tcp(l) => l.set_nonblocking(nb),
        }
    }

    fn accept(&self) -> io::Result<Stream> {
        match self {
            Listener::Unix(l) => l.accept().map(|(s, _)| Stream::Unix(s)),
            Listener::Tcp(l) => l.accept().map(|(s, _)| Stream::Tcp(s)),
        }
    }
}

/// Accept loop of a listening hub: handshake, register (initial connect
/// or reconnect-replacement), spawn the reader on first registration.
fn run_accept(
    shared: &Arc<HubShared>,
    threads: &Arc<Mutex<Vec<JoinHandle<()>>>>,
    listener: &Listener,
) {
    while !shared.halted() {
        let mut stream = match listener.accept() {
            Ok(s) => s,
            Err(e) if is_timeout(&e) => {
                std::thread::sleep(Duration::from_millis(25));
                continue;
            }
            Err(_) => return,
        };
        let _ = stream.set_read_timeout(Some(shared.timeout));
        let _ = stream.set_write_timeout(Some(shared.timeout));
        let hello = match read_wire_frame(&mut stream) {
            Ok(Wire::Control(hello @ ControlFrame::Hello { .. })) => hello,
            _ => {
                // Not a worker (or it died mid-hello): refuse quietly.
                stream.shutdown_both();
                continue;
            }
        };
        let ControlFrame::Hello { shard, .. } = &hello else {
            unreachable!("matched as hello above");
        };
        let conn = *shard as usize;
        if conn >= shared.shards {
            let refusal = refusal_frame(
                conn,
                format!("shard {conn} outside the fabric's 0..{}", shared.shards),
            );
            let _ = stream.write_all(refusal.as_slice());
            stream.shutdown_both();
            continue;
        }
        if let Err(detail) = shared.vet_hello(conn, &hello) {
            // Tell the connector why, then refuse fabric-wide: a worker
            // that loaded the wrong graph poisons the whole run.
            let refusal = refusal_frame(conn, detail.clone());
            let _ = stream.write_all(refusal.as_slice());
            stream.shutdown_both();
            shared.declare_fatal(
                conn as u32,
                SimError::Transport(TransportError {
                    shard: conn,
                    round: 0,
                    cause: TransportCause::Handshake { detail },
                }),
            );
            continue;
        }
        let first_registration = {
            let state = shared.conns[conn]
                .state
                .lock()
                .expect("no poisoned conn slot");
            state.epoch == 0
        };
        // Acknowledgement and replay are written directly on the fresh
        // stream, *before* registration hands it to the writer: queued
        // traffic from fast peers must never overtake either.
        match admit_conn(shared, conn, &hello, stream) {
            Ok(()) => {}
            Err(AdmitError::Refused(detail)) => {
                if detail.starts_with(STALE_RESUME_DETAIL_PREFIX) {
                    // A checkpoint from a previous fabric generation
                    // (whole-run restart): the refusal frame is already
                    // written, the worker redials from round 0. Not a
                    // poisoned fabric — keep accepting.
                    continue;
                }
                // A resume below the replay floor poisons the run the
                // same way a wrong graph does: refuse fabric-wide,
                // typed. A supervisor recognizes the replay-floor case
                // by its [`EVICTED_DETAIL_PREFIX`] and restarts the
                // whole (deterministic) run instead.
                shared.declare_fatal(
                    conn as u32,
                    SimError::Transport(TransportError {
                        shard: conn,
                        round: shared.current_round() as usize,
                        cause: TransportCause::Handshake { detail },
                    }),
                );
                continue;
            }
            Err(AdmitError::Link(_)) => {
                // The peer died mid-admission; it may simply try again.
                continue;
            }
        }
        if first_registration {
            let hub_shared = Arc::clone(shared);
            let handle = std::thread::Builder::new()
                .name(format!("hub-reader-{conn}"))
                .spawn(move || run_reader(&hub_shared, conn))
                .expect("spawn hub reader");
            threads
                .lock()
                .expect("no poisoned thread list")
                .push(handle);
        }
    }
}

fn refusal_frame(shard: usize, detail: String) -> Bytes {
    ControlFrame::Error {
        origin: HUB_ORIGIN,
        error: SimError::Transport(TransportError {
            shard,
            round: 0,
            cause: TransportCause::Handshake { detail },
        }),
    }
    .encode()
}

// ---------------------------------------------------------------------
// Client
// ---------------------------------------------------------------------

/// One shard's endpoint of the socket fabric: sends this shard's frames
/// (auto-closing each round with a `RoundBarrier` after `shards` sends),
/// and collects the round's incoming frames with a deadline.
///
/// Used in-process by [`SocketTransport`] and directly by
/// [`super::run_worker`] in worker processes. All blocking is bounded by
/// the configured timeout; every terminal failure is sticky and typed.
#[derive(Debug)]
pub struct HubClient {
    shard: usize,
    shards: usize,
    timeout: Duration,
    graph_digest: u64,
    /// Shared with the heartbeat pacer thread: *all* writes to the hub
    /// go through this one mutex, because interleaving two writers'
    /// partial writes on one stream would desynchronize the framing.
    link: Arc<Mutex<Stream>>,
    /// Redial target; `None` in pairs mode (no reconnect possible).
    addr: Option<HubAddr>,
    /// One-shot reconnect budget.
    reconnected: AtomicBool,
    sends_this_round: AtomicUsize,
    /// Shared with the pacer so heartbeats report the round being
    /// shipped.
    barrier_round: Arc<AtomicU64>,
    collect_round: AtomicU64,
    /// The running heartbeat pacer, if [`HubClient::start_heartbeats`]
    /// was called; stopped and joined on drop.
    pacer: Mutex<Option<Pacer>>,
    /// Data frames that arrived ahead of their round (a fast peer can
    /// legally run one round ahead of this shard's collect).
    pending: Mutex<VecDeque<Bytes>>,
    /// The structured error a peer reported via an `Error` frame.
    remote: Mutex<Option<SimError>>,
    /// First local transport failure; sticky — every later send is a
    /// no-op and every later collect returns it again.
    fatal: Mutex<Option<TransportError>>,
    frames_retried: AtomicUsize,
    collect_wait_ns: AtomicU64,
}

/// A running heartbeat pacer thread and its stop flag.
#[derive(Debug)]
struct Pacer {
    stop: Arc<AtomicBool>,
    handle: JoinHandle<()>,
}

impl HubClient {
    /// Dials a listening hub and performs the `Hello` handshake.
    ///
    /// # Errors
    ///
    /// A typed [`TransportError`] when the dial, the handshake exchange,
    /// or the hub's validation fails (cause
    /// [`TransportCause::Handshake`] for rejections, `Io`/`Timeout` for
    /// link trouble).
    pub fn connect(
        addr: &HubAddr,
        shard: usize,
        shards: usize,
        graph_digest: u64,
        timeout: Duration,
    ) -> Result<HubClient, TransportError> {
        let fail = |cause| TransportError {
            shard,
            round: 0,
            cause,
        };
        let mut stream = addr.connect(timeout).map_err(|e| {
            fail(TransportCause::Io {
                detail: format!("connect to {addr} failed: {e}"),
            })
        })?;
        handshake(&mut stream, shard, graph_digest, 0, 0, timeout).map_err(fail)?;
        Ok(Self::from_parts(
            stream,
            Some(addr.clone()),
            shard,
            shards,
            graph_digest,
            timeout,
        ))
    }

    /// Dials a hub asking to resume at `resume_round` (a checkpoint's
    /// barrier round): the hub replays every inbound frame from that
    /// round on and treats re-shipped earlier rounds as echoes. When
    /// the hub refuses the claim as *stale* — a fresh fabric after a
    /// whole-run restart has committed fewer rounds than the checkpoint
    /// covers — the client transparently redials as a fresh join from
    /// round 0. Returns the client plus the granted resume round (`0`
    /// after the stale fallback: the caller must then discard its
    /// restored state and start clean).
    ///
    /// # Errors
    ///
    /// As [`HubClient::connect`]; stale-resume refusals are handled
    /// internally, every other refusal surfaces typed.
    pub fn connect_resuming(
        addr: &HubAddr,
        shard: usize,
        shards: usize,
        graph_digest: u64,
        timeout: Duration,
        resume_round: u64,
    ) -> Result<(HubClient, u64), TransportError> {
        let fail = |cause| TransportError {
            shard,
            round: 0,
            cause,
        };
        let dial = |detail: &str| {
            addr.connect(timeout).map_err(|e| {
                fail(TransportCause::Io {
                    detail: format!("{detail} {addr} failed: {e}"),
                })
            })
        };
        let mut stream = dial("connect to")?;
        let granted = match handshake(
            &mut stream,
            shard,
            graph_digest,
            resume_round,
            resume_round,
            timeout,
        ) {
            Ok(()) => resume_round,
            Err(TransportCause::Handshake { detail })
                if detail.starts_with(STALE_RESUME_DETAIL_PREFIX) =>
            {
                // The hub hung up with the refusal; redial fresh.
                stream = dial("reconnect to")?;
                handshake(&mut stream, shard, graph_digest, 0, 0, timeout).map_err(fail)?;
                0
            }
            Err(cause) => return Err(fail(cause)),
        };
        let client = Self::from_parts(
            stream,
            Some(addr.clone()),
            shard,
            shards,
            graph_digest,
            timeout,
        );
        client.barrier_round.store(granted, Ordering::SeqCst);
        client.collect_round.store(granted, Ordering::SeqCst);
        Ok((client, granted))
    }

    /// Wraps a pre-connected stream (pairs mode) and performs the
    /// handshake on it.
    fn from_stream(
        mut stream: Stream,
        shard: usize,
        shards: usize,
        timeout: Duration,
    ) -> Result<HubClient, TransportError> {
        handshake(&mut stream, shard, 0, 0, 0, timeout).map_err(|cause| TransportError {
            shard,
            round: 0,
            cause,
        })?;
        Ok(Self::from_parts(stream, None, shard, shards, 0, timeout))
    }

    fn from_parts(
        stream: Stream,
        addr: Option<HubAddr>,
        shard: usize,
        shards: usize,
        graph_digest: u64,
        timeout: Duration,
    ) -> HubClient {
        HubClient {
            shard,
            shards,
            timeout,
            graph_digest,
            link: Arc::new(Mutex::new(stream)),
            addr,
            reconnected: AtomicBool::new(false),
            sends_this_round: AtomicUsize::new(0),
            barrier_round: Arc::new(AtomicU64::new(0)),
            collect_round: AtomicU64::new(0),
            pacer: Mutex::new(None),
            pending: Mutex::new(VecDeque::new()),
            remote: Mutex::new(None),
            fatal: Mutex::new(None),
            frames_retried: AtomicUsize::new(0),
            collect_wait_ns: AtomicU64::new(0),
        }
    }

    /// This client's shard index.
    #[must_use]
    pub fn shard(&self) -> usize {
        self.shard
    }

    /// Shard count of the fabric.
    #[must_use]
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The structured error a peer reported, if any — richer than the
    /// rendered [`TransportCause::Remote`] the collect error carries.
    #[must_use]
    pub fn remote_error(&self) -> Option<SimError> {
        self.remote.lock().expect("no poisoned remote slot").clone()
    }

    /// Transport health counters accumulated so far.
    #[must_use]
    pub fn health(&self) -> TransportHealth {
        TransportHealth {
            frames_retried: self.frames_retried.load(Ordering::Relaxed),
            collect_wait_ns: self.collect_wait_ns.load(Ordering::Relaxed),
            ..TransportHealth::default()
        }
    }

    /// One-shot reconnect-with-handshake. Consumes the budget even on
    /// failure; counts into `frames_retried` on success.
    ///
    /// The re-handshake carries this client's resume coordinates: the
    /// round it is collecting (the hub replays everything it delivered
    /// from that round on) and the round its next data frame belongs
    /// to (resetting the hub's connection-local barrier count). The
    /// pending buffer is cleared — every frame it held is in the hub's
    /// replay window and will be re-delivered in order, and keeping
    /// stale copies would double-file them.
    fn reconnect(&self, link: &mut Stream, first_detail: &str) -> Result<(), TransportCause> {
        let Some(addr) = &self.addr else {
            return Err(TransportCause::Io {
                detail: format!("{first_detail} (no hub address to reconnect to)"),
            });
        };
        if self.reconnected.swap(true, Ordering::SeqCst) {
            return Err(TransportCause::Io {
                detail: format!("{first_detail} (reconnect already spent)"),
            });
        }
        let mut fresh = addr.connect(self.timeout).map_err(|e| TransportCause::Io {
            detail: format!("{first_detail}; reconnect failed: {e}"),
        })?;
        let resume = self.collect_round.load(Ordering::SeqCst);
        let next_ship = self.barrier_round.load(Ordering::SeqCst);
        handshake(
            &mut fresh,
            self.shard,
            self.graph_digest,
            resume,
            next_ship,
            self.timeout,
        )?;
        self.pending
            .lock()
            .expect("no poisoned pending queue")
            .clear();
        self.frames_retried.fetch_add(1, Ordering::Relaxed);
        *link = fresh;
        Ok(())
    }

    /// Starts a background pacer that writes a `Heartbeat` control
    /// frame roughly every `interval`, sharing the link mutex with the
    /// regular traffic (it *skips* a beat rather than queue behind a
    /// long collect — the hub treats barrier arrivals as liveness proof
    /// too, so a busy client never looks dead for being busy).
    /// Idempotent: a second call replaces the previous pacer.
    pub fn start_heartbeats(&self, interval: Duration) {
        let interval = interval.max(Duration::from_millis(1));
        let stop = Arc::new(AtomicBool::new(false));
        let link = Arc::clone(&self.link);
        let round = Arc::clone(&self.barrier_round);
        let shard = self.shard as u32;
        let tick = interval.min(Duration::from_millis(50));
        let pacer_stop = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name(format!("heartbeat-{shard}"))
            .spawn(move || {
                let mut last = Instant::now();
                while !pacer_stop.load(Ordering::SeqCst) {
                    if last.elapsed() >= interval {
                        // try_lock: never block behind a collect.
                        if let Ok(mut link) = link.try_lock() {
                            let beat = ControlFrame::Heartbeat {
                                shard,
                                round: round.load(Ordering::SeqCst),
                            }
                            .encode();
                            let _ = link.write_all(beat.as_slice()).and_then(|()| link.flush());
                            last = Instant::now();
                        }
                    }
                    std::thread::sleep(tick);
                }
            })
            .expect("spawn heartbeat pacer");
        let mut slot = self.pacer.lock().expect("no poisoned pacer slot");
        if let Some(old) = slot.replace(Pacer { stop, handle }) {
            old.stop.store(true, Ordering::SeqCst);
            let _ = old.handle.join();
        }
    }

    /// Stops the heartbeat pacer, if one is running.
    pub fn stop_heartbeats(&self) {
        let pacer = self.pacer.lock().expect("no poisoned pacer slot").take();
        if let Some(pacer) = pacer {
            pacer.stop.store(true, Ordering::SeqCst);
            let _ = pacer.handle.join();
        }
    }

    /// Streams this worker's end-of-run report to the hub (best
    /// effort), replacing stdout parsing in distributed mode.
    pub fn send_stats(&self, rounds_run: u64, result_digest: u64, stats: &RunStats) {
        let frame = ControlFrame::Stats {
            shard: self.shard as u32,
            rounds_run,
            result_digest,
            stats: stats.clone(),
        }
        .encode();
        let mut link = self.link.lock().expect("no poisoned link");
        let _ = link.write_all(frame.as_slice()).and_then(|()| link.flush());
    }

    /// Streams flight-recorder round records to the hub (best effort —
    /// a lost trace frame must never fail a run). The hub keeps the
    /// last-K per shard, so the records survive this process's death.
    pub fn send_trace(&self, records: &[RoundTrace]) {
        if records.is_empty() {
            return;
        }
        let frame = ControlFrame::Trace {
            shard: self.shard as u32,
            records: records.to_vec(),
        }
        .encode();
        let mut link = self.link.lock().expect("no poisoned link");
        let _ = link.write_all(frame.as_slice()).and_then(|()| link.flush());
    }

    /// Streams one lifecycle event (checkpoint write/load/rejection) to
    /// the hub, best effort — a lost event must never fail a run.
    pub fn send_event(&self, round: u64, code: u8, detail: String) {
        let frame = ControlFrame::Event {
            shard: self.shard as u32,
            round,
            code,
            detail,
        }
        .encode();
        let mut link = self.link.lock().expect("no poisoned link");
        let _ = link.write_all(frame.as_slice()).and_then(|()| link.flush());
    }

    fn write_with_retry(&self, link: &mut Stream, bytes: &[u8]) -> Result<(), TransportCause> {
        match link.write_all(bytes).and_then(|()| link.flush()) {
            Ok(()) => Ok(()),
            Err(first) => {
                self.reconnect(link, &first.to_string())?;
                self.frames_retried.fetch_add(1, Ordering::Relaxed);
                link.write_all(bytes)
                    .and_then(|()| link.flush())
                    .map_err(|e| TransportCause::Io {
                        detail: format!("retried write failed: {e}"),
                    })
            }
        }
    }

    fn set_fatal(&self, error: TransportError) {
        let mut slot = self.fatal.lock().expect("no poisoned fatal slot");
        if slot.is_none() {
            *slot = Some(error);
        }
    }

    fn taken_fatal(&self) -> Option<TransportError> {
        self.fatal.lock().expect("no poisoned fatal slot").clone()
    }

    /// Ships one data frame to `to`. The `shards`-th send of a round
    /// automatically closes the round with a `RoundBarrier`. Write
    /// failures consume the one-shot reconnect, then become sticky: the
    /// next [`HubClient::collect`] surfaces them typed.
    pub fn send(&self, to: usize, frame: Bytes) {
        debug_assert!(to < self.shards, "destination shard out of range");
        if self.taken_fatal().is_some() {
            return;
        }
        let mut link = self.link.lock().expect("no poisoned link");
        let round = self.barrier_round.load(Ordering::Relaxed);
        if let Err(cause) = self.write_with_retry(&mut link, frame.as_slice()) {
            self.set_fatal(TransportError {
                shard: self.shard,
                round: round as usize,
                cause,
            });
            return;
        }
        let sent = self.sends_this_round.fetch_add(1, Ordering::Relaxed) + 1;
        if sent == self.shards {
            self.sends_this_round.store(0, Ordering::Relaxed);
            self.barrier_round.store(round + 1, Ordering::Relaxed);
            let barrier = ControlFrame::RoundBarrier { round }.encode();
            if let Err(cause) = self.write_with_retry(&mut link, barrier.as_slice()) {
                self.set_fatal(TransportError {
                    shard: self.shard,
                    round: round as usize,
                    cause,
                });
            }
        }
    }

    /// Reports this shard's own failure to the fabric (best effort) so
    /// peers stop with the structured error instead of a timeout.
    pub fn report_error(&self, error: &SimError) {
        let frame = ControlFrame::Error {
            origin: self.shard as u32,
            error: error.clone(),
        }
        .encode();
        let mut link = self.link.lock().expect("no poisoned link");
        let _ = link.write_all(frame.as_slice()).and_then(|()| link.flush());
    }

    /// Announces orderly completion (best effort).
    pub fn send_shutdown(&self) {
        let frame = ControlFrame::Shutdown {
            origin: self.shard as u32,
        }
        .encode();
        let mut link = self.link.lock().expect("no poisoned link");
        let _ = link.write_all(frame.as_slice()).and_then(|()| link.flush());
    }

    fn blame_shard(&self, into: &[Option<Bytes>]) -> usize {
        into.iter().position(Option::is_none).unwrap_or(self.shard)
    }

    /// Collects one round: blocks until every sender's slot is filled
    /// *and* the hub's barrier acknowledgement for this round arrived,
    /// or the deadline passes.
    ///
    /// Deadline expiry with the acknowledgement in hand returns `Ok`
    /// with the gaps left `None` — the hub provably relayed everything
    /// it got, so the engine's place phase reports the precise
    /// [`FrameError::MissingFrame`]. Expiry without the acknowledgement
    /// is a typed [`TransportCause::Timeout`].
    ///
    /// # Errors
    ///
    /// A [`TransportError`] on timeout, disconnect (after the one-shot
    /// reconnect), desync, or when a peer's `Error` frame arrives (the
    /// structured original stays available via
    /// [`HubClient::remote_error`]). All failures are sticky.
    pub fn collect(&self, into: &mut [Option<Bytes>]) -> Result<(), TransportError> {
        let round = self.collect_round.load(Ordering::Relaxed) as usize;
        if let Some(error) = self.taken_fatal() {
            return Err(error);
        }
        let start = Instant::now();
        let deadline = start + self.timeout;
        let mut link = self.link.lock().expect("no poisoned link");
        {
            let mut pending = self.pending.lock().expect("no poisoned pending queue");
            let mut keep = VecDeque::new();
            while let Some(frame) = pending.pop_front() {
                if !file_slot(into, &frame) {
                    keep.push_back(frame);
                }
            }
            *pending = keep;
        }
        let mut got_ack = false;
        let result = loop {
            if got_ack && into.iter().all(Option::is_some) {
                break Ok(());
            }
            let Some(remaining) = deadline
                .checked_duration_since(Instant::now())
                .filter(|d| !d.is_zero())
            else {
                break if got_ack {
                    // Barrier seen: anything still missing was never
                    // shipped; place reports it as MissingFrame.
                    Ok(())
                } else {
                    Err(TransportError {
                        shard: self.blame_shard(into),
                        round,
                        cause: TransportCause::Timeout {
                            waited_ms: start.elapsed().as_millis() as u64,
                        },
                    })
                };
            };
            let _ = link.set_read_timeout(Some(remaining));
            match read_wire_frame(&mut link) {
                Ok(Wire::Data(frame)) => {
                    if !file_slot(into, &frame) {
                        // Already have this sender's frame this round:
                        // a fast peer running one round ahead.
                        self.pending
                            .lock()
                            .expect("no poisoned pending queue")
                            .push_back(frame);
                    }
                }
                Ok(Wire::Control(ControlFrame::RoundBarrier { round: acked })) => {
                    match acked.cmp(&(round as u64)) {
                        std::cmp::Ordering::Equal => got_ack = true,
                        // A stale ack can replay after a reconnect.
                        std::cmp::Ordering::Less => {}
                        std::cmp::Ordering::Greater => {
                            break Err(TransportError {
                                shard: self.shard,
                                round,
                                cause: TransportCause::Io {
                                    detail: format!(
                                        "barrier acknowledgement for round {acked} while collecting round {round}"
                                    ),
                                },
                            });
                        }
                    }
                }
                Ok(Wire::Control(ControlFrame::Error { origin, error })) => {
                    *self.remote.lock().expect("no poisoned remote slot") = Some(error.clone());
                    break Err(match error {
                        SimError::Transport(e) => e,
                        other => TransportError {
                            shard: origin as usize,
                            round,
                            cause: TransportCause::Remote {
                                message: other.to_string(),
                            },
                        },
                    });
                }
                Ok(Wire::Control(ControlFrame::Shutdown { origin })) => {
                    break Err(TransportError {
                        shard: if origin == HUB_ORIGIN {
                            self.blame_shard(into)
                        } else {
                            origin as usize
                        },
                        round,
                        cause: TransportCause::Disconnected,
                    });
                }
                Ok(Wire::Control(ControlFrame::Hello { .. })) => {
                    break Err(TransportError {
                        shard: self.shard,
                        round,
                        cause: TransportCause::Io {
                            detail: "unexpected hello mid-stream".into(),
                        },
                    });
                }
                Ok(Wire::Control(
                    ControlFrame::Heartbeat { .. }
                    | ControlFrame::Stats { .. }
                    | ControlFrame::Trace { .. }
                    | ControlFrame::Event { .. },
                )) => {
                    // Worker-to-hub frames; a hub never sends them.
                }
                Err(ReadEnd::Tick | ReadEnd::Stalled) => {
                    // Deadline recheck happens at the loop head.
                }
                Err(ReadEnd::Eof | ReadEnd::ClosedMidFrame) => {
                    if let Err(cause) = self.reconnect(&mut link, "hub closed the connection") {
                        break Err(TransportError {
                            shard: self.blame_shard(into),
                            round,
                            cause: match cause {
                                TransportCause::Io { .. } => TransportCause::Disconnected,
                                other => other,
                            },
                        });
                    }
                    // The hub will replay this round from scratch:
                    // restart the collect so re-delivered frames file
                    // cleanly instead of double-filing.
                    into.iter_mut().for_each(|slot| *slot = None);
                    got_ack = false;
                }
                Err(ReadEnd::Io(detail)) => {
                    if let Err(cause) = self.reconnect(&mut link, &detail) {
                        break Err(TransportError {
                            shard: self.blame_shard(into),
                            round,
                            cause,
                        });
                    }
                    into.iter_mut().for_each(|slot| *slot = None);
                    got_ack = false;
                }
                Err(ReadEnd::Desync(detail)) => {
                    break Err(TransportError {
                        shard: self.shard,
                        round,
                        cause: TransportCause::Io { detail },
                    });
                }
            }
        };
        self.collect_wait_ns
            .fetch_add(start.elapsed().as_nanos() as u64, Ordering::Relaxed);
        match result {
            Ok(()) => {
                self.collect_round.fetch_add(1, Ordering::Relaxed);
                Ok(())
            }
            Err(error) => {
                self.set_fatal(error.clone());
                Err(error)
            }
        }
    }
}

impl Drop for HubClient {
    fn drop(&mut self) {
        self.stop_heartbeats();
    }
}

/// Files a data frame into its sender's slot; `false` if the slot is
/// already taken (a frame from a future round) or the sender is out of
/// range.
fn file_slot(into: &mut [Option<Bytes>], frame: &Bytes) -> bool {
    let (sender, _dest) = data_addressing(frame);
    match into.get_mut(sender) {
        Some(slot @ None) => {
            *slot = Some(frame.clone());
            true
        }
        _ => false,
    }
}

// ---------------------------------------------------------------------
// SocketTransport
// ---------------------------------------------------------------------

/// [`Transport`] over real sockets: `shards` [`HubClient`] spokes around
/// an in-process [`Hub`]. Selected by `NETDECOMP_BACKEND=socket`;
/// produces bit-identical results to the loopback and channel backends.
#[derive(Debug)]
pub struct SocketTransport {
    clients: Vec<HubClient>,
    hub: Option<Hub>,
}

impl SocketTransport {
    /// Unix-domain fabric over socketpairs (no filesystem footprint).
    /// Timeout from [`super::frame_timeout`].
    ///
    /// # Panics
    ///
    /// If the OS refuses socketpair or thread resources at construction
    /// (runtime failures are all typed errors, never panics).
    #[must_use]
    pub fn unix_mesh(shards: usize) -> SocketTransport {
        Self::unix_mesh_with_timeout(shards, super::frame_timeout())
    }

    /// [`SocketTransport::unix_mesh`] with an explicit deadline, for
    /// tests that exercise timeout paths quickly.
    ///
    /// # Panics
    ///
    /// As [`SocketTransport::unix_mesh`].
    #[must_use]
    pub fn unix_mesh_with_timeout(shards: usize, timeout: Duration) -> SocketTransport {
        let shards = shards.max(1);
        let (hub, halves) = Hub::new_pairs(shards, timeout).expect("unix socketpair fabric");
        let clients = halves
            .into_iter()
            .enumerate()
            .map(|(shard, stream)| {
                HubClient::from_stream(stream, shard, shards, timeout)
                    .expect("in-process handshake")
            })
            .collect();
        SocketTransport {
            clients,
            hub: Some(hub),
        }
    }

    /// This shard's fabric endpoint, for drivers that talk to one shard
    /// directly (e.g. [`super::run_worker`]) or inspect a shard's
    /// [`HubClient::remote_error`] after a failed run.
    #[must_use]
    pub fn client(&self, shard: usize) -> &HubClient {
        &self.clients[shard]
    }

    /// TCP loopback fabric through a real listener — the same
    /// accept/handshake path worker processes use.
    ///
    /// # Panics
    ///
    /// If binding the loopback listener or connecting to it fails at
    /// construction.
    #[must_use]
    pub fn tcp_mesh(shards: usize) -> SocketTransport {
        Self::tcp_mesh_with_timeout(shards, super::frame_timeout())
    }

    /// [`SocketTransport::tcp_mesh`] with an explicit deadline.
    ///
    /// # Panics
    ///
    /// As [`SocketTransport::tcp_mesh`].
    #[must_use]
    pub fn tcp_mesh_with_timeout(shards: usize, timeout: Duration) -> SocketTransport {
        let shards = shards.max(1);
        let request = HubAddr::Tcp(SocketAddr::from(([127, 0, 0, 1], 0)));
        let (hub, addr) =
            Hub::listen(&request, shards, timeout, None).expect("loopback tcp fabric");
        let clients = (0..shards)
            .map(|shard| {
                HubClient::connect(&addr, shard, shards, 0, timeout)
                    .expect("loopback tcp handshake")
            })
            .collect();
        SocketTransport {
            clients,
            hub: Some(hub),
        }
    }
}

impl Transport for SocketTransport {
    fn send(&self, from: usize, to: usize, frame: Bytes) {
        self.clients[from].send(to, frame);
    }

    fn collect(&self, to: usize, into: &mut [Option<Bytes>]) -> Result<(), TransportError> {
        self.clients[to].collect(into)
    }

    fn health(&self) -> TransportHealth {
        let mut health = TransportHealth::default();
        for client in &self.clients {
            health.absorb(client.health());
        }
        if let Some(hub) = &self.hub {
            let (restarted, replayed, missed, _) = hub.recovery_counters();
            health.workers_restarted += restarted;
            health.rounds_replayed += replayed;
            health.heartbeats_missed += missed;
        }
        health
    }
}

impl Drop for SocketTransport {
    fn drop(&mut self) {
        for client in &self.clients {
            client.send_shutdown();
        }
        if let Some(mut hub) = self.hub.take() {
            hub.stop_and_join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::FrameBuilder;

    const FAST: Duration = Duration::from_millis(300);

    /// A minimal valid data frame from `sender` to `dest`, tagged with
    /// one payload byte so tests can tell frames apart.
    fn data_frame(sender: usize, dest: usize, tag: u8) -> Bytes {
        let mut b = FrameBuilder::new();
        b.begin(sender, dest);
        b.push(0, 0..1, &[tag]);
        b.finish()
    }

    fn collect_all(mesh: &SocketTransport, shards: usize) -> Vec<Vec<Option<Bytes>>> {
        (0..shards)
            .map(|to| {
                let mut slots = vec![None; shards];
                mesh.collect(to, &mut slots).unwrap();
                slots
            })
            .collect()
    }

    #[test]
    fn unix_mesh_routes_a_full_round() {
        let shards = 3;
        let mesh = SocketTransport::unix_mesh_with_timeout(shards, Duration::from_secs(5));
        for from in 0..shards {
            for to in 0..shards {
                mesh.send(from, to, data_frame(from, to, (from * shards + to) as u8));
            }
        }
        let got = collect_all(&mesh, shards);
        for (to, slots) in got.iter().enumerate() {
            for (from, slot) in slots.iter().enumerate() {
                let frame = slot.as_ref().expect("frame must arrive");
                assert_eq!(
                    frame.as_slice(),
                    data_frame(from, to, (from * shards + to) as u8).as_slice()
                );
            }
        }
        assert!(mesh.health().collect_wait_ns > 0);
        assert_eq!(mesh.health().frames_retried, 0);
    }

    #[test]
    fn tcp_mesh_routes_a_full_round() {
        let shards = 2;
        let mesh = SocketTransport::tcp_mesh_with_timeout(shards, Duration::from_secs(5));
        for from in 0..shards {
            for to in 0..shards {
                mesh.send(from, to, data_frame(from, to, 7));
            }
        }
        let got = collect_all(&mesh, shards);
        assert!(got.iter().flatten().all(Option::is_some));
    }

    #[test]
    fn a_round_ahead_peer_is_buffered_not_lost() {
        let shards = 2;
        let mesh = SocketTransport::unix_mesh_with_timeout(shards, Duration::from_secs(5));
        // Round 0: both shards ship.
        for from in 0..shards {
            for to in 0..shards {
                mesh.send(from, to, data_frame(from, to, 10 + from as u8));
            }
        }
        // Shard 0 collects round 0 and immediately ships round 1 while
        // shard 1 has not collected round 0 yet.
        let mut slots = vec![None; shards];
        mesh.collect(0, &mut slots).unwrap();
        for to in 0..shards {
            mesh.send(0, to, data_frame(0, to, 20));
        }
        // Shard 1 now collects round 0 — it must see round 0's frames,
        // with shard 0's round-1 frame parked, not misfiled.
        let mut slots = vec![None; shards];
        mesh.collect(1, &mut slots).unwrap();
        assert_eq!(
            slots[0].as_ref().unwrap().as_slice(),
            data_frame(0, 1, 10).as_slice()
        );
        assert_eq!(
            slots[1].as_ref().unwrap().as_slice(),
            data_frame(1, 1, 11).as_slice()
        );
        // Round 1 completes once shard 1 ships it.
        for to in 0..shards {
            mesh.send(1, to, data_frame(1, to, 21));
        }
        let got = collect_all(&mesh, shards);
        for (to, slots) in got.iter().enumerate() {
            assert_eq!(
                slots[0].as_ref().unwrap().as_slice(),
                data_frame(0, to, 20).as_slice()
            );
            assert_eq!(
                slots[1].as_ref().unwrap().as_slice(),
                data_frame(1, to, 21).as_slice()
            );
        }
    }

    #[test]
    fn missing_barrier_times_out_typed() {
        let shards = 2;
        let mesh = SocketTransport::unix_mesh_with_timeout(shards, FAST);
        // Shard 0 ships its whole round; shard 1 never does.
        for to in 0..shards {
            mesh.send(0, to, data_frame(0, to, 1));
        }
        let started = Instant::now();
        let mut slots = vec![None; shards];
        let error = mesh.collect(0, &mut slots).unwrap_err();
        assert!(
            matches!(error.cause, TransportCause::Timeout { .. }),
            "{error}"
        );
        assert_eq!(error.shard, 1, "the silent peer gets the blame");
        assert!(
            started.elapsed() < Duration::from_secs(5),
            "timeout must be prompt, took {:?}",
            started.elapsed()
        );
        // And the failure is sticky.
        let again = mesh.collect(0, &mut vec![None; shards]).unwrap_err();
        assert_eq!(again.shard, 1);
    }

    #[test]
    fn dead_peer_becomes_a_typed_disconnect_for_everyone() {
        let shards = 2;
        let (hub, mut halves) = Hub::new_pairs(shards, FAST).unwrap();
        let c1_stream = halves.pop().unwrap();
        let c0 = HubClient::from_stream(halves.pop().unwrap(), 0, shards, FAST).unwrap();
        let c1 = HubClient::from_stream(c1_stream, 1, shards, FAST).unwrap();
        drop(c1); // shard 1 "dies": its socket closes
        let started = Instant::now();
        let mut slots = vec![None; shards];
        let error = c0.collect(&mut slots).unwrap_err();
        assert!(
            matches!(error.cause, TransportCause::Disconnected)
                || matches!(error.cause, TransportCause::Timeout { .. }),
            "want disconnect/timeout, got {error}"
        );
        assert!(started.elapsed() < Duration::from_secs(10));
        drop(hub);
    }

    #[test]
    fn peer_error_reports_surface_structured() {
        let shards = 2;
        let mesh = SocketTransport::unix_mesh_with_timeout(shards, Duration::from_secs(5));
        let reported = SimError::RoundLimitExceeded { limit: 3 };
        mesh.clients[0].report_error(&reported);
        let mut slots = vec![None; shards];
        let error = mesh.clients[1].collect(&mut slots).unwrap_err();
        assert_eq!(error.shard, 0);
        assert!(
            matches!(error.cause, TransportCause::Remote { .. }),
            "{error}"
        );
        assert_eq!(mesh.clients[1].remote_error(), Some(reported));
    }

    #[test]
    fn handshake_rejects_wrong_digest() {
        let request = HubAddr::Unix(test_socket_path("digest"));
        let (hub, addr) = Hub::listen(&request, 1, FAST, Some(42)).unwrap();
        let error = HubClient::connect(&addr, 0, 1, 7, FAST).unwrap_err();
        assert!(
            matches!(error.cause, TransportCause::Handshake { .. }),
            "want handshake rejection, got {error}"
        );
        drop(hub);
    }

    #[test]
    fn handshake_rejects_foreign_shard_ids() {
        let request = HubAddr::Unix(test_socket_path("shardid"));
        let (hub, addr) = Hub::listen(&request, 2, FAST, None).unwrap();
        let error = HubClient::connect(&addr, 9, 2, 0, FAST).unwrap_err();
        assert!(
            matches!(error.cause, TransportCause::Handshake { .. }),
            "{error}"
        );
        drop(hub);
    }

    #[test]
    fn severed_link_reconnects_once_and_delivers() {
        let request = HubAddr::Unix(test_socket_path("reconnect"));
        let (hub, addr) = Hub::listen(&request, 1, Duration::from_secs(5), None).unwrap();
        let client = HubClient::connect(&addr, 0, 1, 0, Duration::from_secs(5)).unwrap();
        hub.sever(0);
        // Give the kernel a beat to surface the close on the client side.
        std::thread::sleep(Duration::from_millis(50));
        client.send(0, data_frame(0, 0, 9));
        let mut slots = vec![None; 1];
        client.collect(&mut slots).unwrap();
        assert_eq!(
            slots[0].as_ref().unwrap().as_slice(),
            data_frame(0, 0, 9).as_slice()
        );
        assert!(
            client.health().frames_retried > 0,
            "reconnect must be counted"
        );
        drop(hub);
    }

    #[test]
    fn a_severed_links_readmission_bumps_the_epoch_and_counts() {
        // Surviving-client reconnect: the write to the severed link
        // fails, the client re-handshakes, and the hub re-admits it as
        // a new epoch — visible in the recovery counters.
        let request = HubAddr::Unix(test_socket_path("epochcount"));
        let (hub, addr) = Hub::listen(&request, 1, Duration::from_secs(5), None).unwrap();
        let client = HubClient::connect(&addr, 0, 1, 0, Duration::from_secs(5)).unwrap();
        assert_eq!(
            hub.recovery_counters().0,
            0,
            "first admission is not a restart"
        );
        hub.sever(0);
        std::thread::sleep(Duration::from_millis(50));
        client.send(0, data_frame(0, 0, 9));
        let mut slots = vec![None; 1];
        client.collect(&mut slots).unwrap();
        assert_eq!(
            slots[0].as_ref().unwrap().as_slice(),
            data_frame(0, 0, 9).as_slice()
        );
        let (restarted, _, _, _) = hub.recovery_counters();
        assert_eq!(restarted, 1, "the re-admission must be counted");
        assert!(client.health().frames_retried >= 1);
        drop(hub);
    }

    #[test]
    fn a_restarted_worker_is_replayed_and_its_resends_echo_discarded() {
        // Process-level recovery, in miniature: run two rounds, "crash"
        // (drop the client), and bring up a replacement that — like a
        // deterministically re-run worker — resumes from round 0 and
        // re-ships everything. The hub must replay the committed rounds
        // at admission (written on the fresh stream strictly before
        // registration, so live traffic cannot overtake them), discard
        // the re-sent data as echoes, and then accept new rounds live.
        let request = HubAddr::Unix(test_socket_path("restartreplay"));
        let (hub, addr) = Hub::listen(&request, 1, Duration::from_secs(5), None).unwrap();
        let client = HubClient::connect(&addr, 0, 1, 0, Duration::from_secs(5)).unwrap();
        for round in 0..2u8 {
            client.send(0, data_frame(0, 0, round));
            let mut slots = vec![None; 1];
            client.collect(&mut slots).unwrap();
        }
        drop(client); // the worker process dies
        let replacement = HubClient::connect(&addr, 0, 1, 0, Duration::from_secs(5)).unwrap();
        for round in 0..3u8 {
            // Rounds 0 and 1 are re-runs: data echo-discarded, barrier
            // echo-acked, content served from the replay log. Round 2
            // is new and must go through live.
            replacement.send(0, data_frame(0, 0, round));
            let mut slots = vec![None; 1];
            replacement.collect(&mut slots).unwrap();
            assert_eq!(
                slots[0].as_ref().unwrap().as_slice(),
                data_frame(0, 0, round).as_slice(),
                "round {round} after the restart"
            );
        }
        let (restarted, replayed, _, _) = hub.recovery_counters();
        assert_eq!(restarted, 1, "one re-admission");
        assert_eq!(replayed, 2, "both committed rounds must be replayed");
        drop(hub);
    }

    #[test]
    fn heartbeats_refresh_the_hubs_liveness_view() {
        let request = HubAddr::Unix(test_socket_path("beats"));
        let (hub, addr) = Hub::listen(&request, 1, Duration::from_secs(5), None).unwrap();
        let client = HubClient::connect(&addr, 0, 1, 0, Duration::from_secs(5)).unwrap();
        assert!(hub.beat_ages()[0].is_none(), "no proof of life yet");
        client.start_heartbeats(Duration::from_millis(10));
        let deadline = Instant::now() + Duration::from_secs(2);
        while hub.beat_ages()[0].is_none() && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        let (age, round) = hub.beat_ages()[0].expect("heartbeat must register");
        assert!(age < Duration::from_secs(1));
        assert_eq!(round, 0, "no barrier passed yet");
        client.stop_heartbeats();
        drop(hub);
    }

    #[test]
    fn stats_frames_land_in_the_hubs_slots() {
        let request = HubAddr::Unix(test_socket_path("stats"));
        let (hub, addr) = Hub::listen(&request, 1, Duration::from_secs(5), None).unwrap();
        let client = HubClient::connect(&addr, 0, 1, 0, Duration::from_secs(5)).unwrap();
        let mut stats = RunStats::default();
        stats.absorb(crate::stats::RoundStats {
            round: 0,
            messages: 7,
            bytes: 56,
            max_edge_bytes: 8,
        });
        client.send_stats(3, 0xfeed_beef, &stats);
        let deadline = Instant::now() + Duration::from_secs(2);
        while hub.worker_stats()[0].is_none() && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        let got = hub.worker_stats()[0].clone().expect("stats must arrive");
        assert_eq!(got.rounds_run, 3);
        assert_eq!(got.result_digest, 0xfeed_beef);
        assert_eq!(got.stats.total_messages, 7);
        drop(hub);
    }

    #[test]
    fn a_lost_shard_declaration_is_a_typed_error_for_peers() {
        let request = HubAddr::Unix(test_socket_path("lost"));
        let (hub, addr) = Hub::listen(&request, 2, FAST, None).unwrap();
        let c0 = HubClient::connect(&addr, 0, 2, 0, FAST).unwrap();
        let _c1 = HubClient::connect(&addr, 1, 2, 0, FAST).unwrap();
        hub.declare_lost(1, "restart budget exhausted".into());
        let error = c0.collect(&mut vec![None; 2]).unwrap_err();
        assert_eq!(error.shard, 1, "the lost shard gets the blame");
        drop(hub);
    }

    #[test]
    fn hub_addr_round_trips_through_strings() {
        let unix = HubAddr::Unix(PathBuf::from("/tmp/x.sock"));
        assert_eq!(unix.to_string().parse::<HubAddr>().unwrap(), unix);
        let tcp = HubAddr::Tcp(SocketAddr::from(([127, 0, 0, 1], 4040)));
        assert_eq!(tcp.to_string().parse::<HubAddr>().unwrap(), tcp);
        assert!("garbage".parse::<HubAddr>().is_err());
        assert!("tcp:not-an-addr".parse::<HubAddr>().is_err());
    }

    #[test]
    fn an_undrained_relay_queue_breaches_the_cap_typed() {
        // A destination whose writer never drains (too slow, or its
        // worker never connected) accumulates relayed frames round
        // after round. The cap must turn that silent growth into a
        // typed fabric error naming the consumer — never an unbounded
        // allocation. Driven against the relay state directly: rounds
        // are committed by calling the barrier path for both shards, as
        // the readers would, while nobody drains shard 1's queue.
        let mut options = HubOptions::new(2, FAST);
        options.queue_cap = 1024;
        let (shared, receivers) = HubShared::new(&options);
        let frame = data_frame(0, 1, 7);
        let mut breach = None;
        for round in 0..10_000u64 {
            match shared.relay_data(0, 1, frame.clone()) {
                Ok(()) => {
                    // Commit the round so the next ship is not deduped
                    // as an in-round duplicate or an echo.
                    shared.on_barrier(0, round).unwrap();
                    shared.on_barrier(1, round).unwrap();
                }
                Err(error) => {
                    breach = Some(error);
                    break;
                }
            }
        }
        match breach.expect("the cap must trip before 10k undrained rounds") {
            SimError::Transport(TransportError {
                shard,
                cause: TransportCause::Io { detail },
                ..
            }) => {
                assert_eq!(shard, 1, "the undrained destination gets the blame");
                assert!(detail.contains(ENV_HUB_QUEUE_CAP), "{detail}");
                assert!(detail.contains("shard 1"), "names the consumer: {detail}");
            }
            other => panic!("want a typed Io cap breach, got {other:?}"),
        }
        drop(receivers);
    }

    #[test]
    fn a_checkpoint_resume_is_granted_and_skips_replayed_history() {
        // The tentpole's O(interval) recovery, in miniature: three
        // committed rounds, a crash, and a replacement that — unlike the
        // from-scratch restart — presents a checkpoint at the committed
        // frontier. The hub must grant the round and replay *nothing*.
        let request = HubAddr::Unix(test_socket_path("resumeckpt"));
        let (hub, addr) = Hub::listen(&request, 1, Duration::from_secs(5), None).unwrap();
        let client = HubClient::connect(&addr, 0, 1, 0, Duration::from_secs(5)).unwrap();
        for round in 0..3u8 {
            client.send(0, data_frame(0, 0, round));
            client.collect(&mut vec![None; 1]).unwrap();
        }
        drop(client); // the worker process dies
        let (replacement, granted) =
            HubClient::connect_resuming(&addr, 0, 1, 0, Duration::from_secs(5), 3).unwrap();
        assert_eq!(granted, 3, "the hub honors the checkpoint round");
        replacement.send(0, data_frame(0, 0, 33));
        let mut slots = vec![None; 1];
        replacement.collect(&mut slots).unwrap();
        assert_eq!(
            slots[0].as_ref().unwrap().as_slice(),
            data_frame(0, 0, 33).as_slice(),
            "the first collected frame is round 3's, not replayed history"
        );
        let (_, replayed, _, _) = hub.recovery_counters();
        assert_eq!(replayed, 0, "nothing below the checkpoint round replays");
        drop(hub);
    }

    #[test]
    fn a_stale_resume_claim_falls_back_to_a_fresh_join() {
        // A fresh hub (whole-run restart) has committed nothing; a
        // worker clutching a checkpoint from the previous incarnation
        // claims round 5. The refusal must stay connection-local — the
        // client transparently downgrades to a round-0 join and the
        // fabric keeps running.
        let request = HubAddr::Unix(test_socket_path("staleresume"));
        let (hub, addr) = Hub::listen(&request, 1, Duration::from_secs(5), None).unwrap();
        let (client, granted) =
            HubClient::connect_resuming(&addr, 0, 1, 0, Duration::from_secs(5), 5).unwrap();
        assert_eq!(
            granted, 0,
            "the stale claim is refused, the join downgraded"
        );
        client.send(0, data_frame(0, 0, 7));
        let mut slots = vec![None; 1];
        client.collect(&mut slots).unwrap();
        assert_eq!(
            slots[0].as_ref().unwrap().as_slice(),
            data_frame(0, 0, 7).as_slice()
        );
        drop(hub);
    }

    #[test]
    fn worker_events_are_buffered_and_restores_counted() {
        use crate::transport::control::{EVENT_CHECKPOINT_LOAD, EVENT_CHECKPOINT_REJECT};
        let request = HubAddr::Unix(test_socket_path("events"));
        let (hub, addr) = Hub::listen(&request, 1, Duration::from_secs(5), None).unwrap();
        let client = HubClient::connect(&addr, 0, 1, 0, Duration::from_secs(5)).unwrap();
        client.send_event(0, EVENT_CHECKPOINT_REJECT, "torn file".into());
        client.send_event(3, EVENT_CHECKPOINT_LOAD, "resumed at round 3".into());
        let deadline = Instant::now() + Duration::from_secs(2);
        let mut events = Vec::new();
        while events.len() < 2 && Instant::now() < deadline {
            events.extend(hub.take_worker_events());
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(events.len(), 2, "both events must buffer");
        assert_eq!(events[0].code, EVENT_CHECKPOINT_REJECT);
        assert_eq!(events[0].detail, "torn file");
        assert_eq!(events[1].round, 3);
        let (_, _, _, restores) = hub.recovery_counters();
        assert_eq!(restores, 1, "only the load event counts as a restore");
        drop(hub);
    }

    fn test_socket_path(tag: &str) -> PathBuf {
        static SEQ: AtomicUsize = AtomicUsize::new(0);
        let n = SEQ.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!(
            "netdecomp-test-{}-{tag}-{n}.sock",
            std::process::id()
        ))
    }
}

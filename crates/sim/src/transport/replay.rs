//! Bounded per-shard replay logs: the hub's memory of what it already
//! delivered, so a restarted worker can be fast-forwarded.
//!
//! The hub keeps one [`ReplayLog`] per destination shard. Every data
//! frame relayed to that shard and every barrier acknowledgement
//! broadcast to it is appended, tagged with the fabric round it belongs
//! to, in the exact order it entered the shard's writer queue — which is
//! the order the client observed it, because the writer drains the queue
//! FIFO. Replaying a suffix of the log over a fresh connection therefore
//! reproduces the byte stream the previous connection would have carried
//! from that round on.
//!
//! The log is bounded to a sliding window of rounds
//! (`NETDECOMP_REPLAY_WINDOW`, see
//! [`crate::transport::replay_window`]): once the fabric's barrier
//! commits round `r`, entries for rounds below `r + 1 - window` are
//! evicted. A reconnect asking to resume inside the evicted region is
//! refused with a typed handshake error (the supervisor's cue to restart
//! the whole run from round 0, which is deterministic and therefore
//! still bit-identical).

use bytes::Bytes;
use std::collections::VecDeque;

/// One destination shard's bounded, round-tagged delivery log.
#[derive(Debug)]
pub(crate) struct ReplayLog {
    /// How many committed rounds of history to retain.
    window: u64,
    /// `(round, wire bytes)` in original enqueue order; rounds are
    /// non-decreasing.
    entries: VecDeque<(u64, Bytes)>,
    /// Smallest round whose entries are still complete in the log. A
    /// resume below this floor cannot be honored.
    floor: u64,
    /// Payload bytes currently retained (for observability/debugging).
    bytes: usize,
}

/// Outcome of a resume request against one shard's log.
#[derive(Debug)]
pub(crate) enum Snapshot {
    /// The entries to replay (possibly empty) and the number of
    /// distinct rounds they span.
    Entries { frames: Vec<Bytes>, rounds: u64 },
    /// The requested round fell below the retention floor; the caller
    /// reports the floor in its refusal.
    Evicted {
        /// Oldest round the log can still replay.
        floor: u64,
    },
}

impl ReplayLog {
    /// An empty log retaining `window` committed rounds of history.
    /// `window == 0` is clamped to 1: the in-flight round must always
    /// be replayable or no reconnect could ever succeed.
    pub(crate) fn new(window: u64) -> Self {
        ReplayLog {
            window: window.max(1),
            entries: VecDeque::new(),
            floor: 0,
            bytes: 0,
        }
    }

    /// Appends one delivered wire frame (data or barrier ack) belonging
    /// to `round`. Rounds must be appended in non-decreasing order —
    /// guaranteed by the relay lock serializing enqueues per
    /// destination.
    pub(crate) fn record(&mut self, round: u64, frame: Bytes) {
        debug_assert!(
            self.entries.back().is_none_or(|(r, _)| *r <= round),
            "replay log rounds must be non-decreasing"
        );
        self.bytes += frame.len();
        self.entries.push_back((round, frame));
    }

    /// Drops entries that fell out of the window after the fabric
    /// committed every round below `next_round`.
    pub(crate) fn evict_committed(&mut self, next_round: u64) {
        let keep_from = next_round.saturating_sub(self.window);
        if keep_from <= self.floor {
            return;
        }
        self.floor = keep_from;
        while let Some((round, _)) = self.entries.front() {
            if *round >= keep_from {
                break;
            }
            self.bytes -= self.entries[0].1.len();
            self.entries.pop_front();
        }
    }

    /// The replay stream for a client resuming at `resume_round`: every
    /// retained entry with `round >= resume_round`, in original order.
    pub(crate) fn snapshot_from(&self, resume_round: u64) -> Snapshot {
        if resume_round < self.floor {
            return Snapshot::Evicted { floor: self.floor };
        }
        let mut frames = Vec::new();
        let mut rounds = 0;
        let mut last: Option<u64> = None;
        for (round, frame) in &self.entries {
            if *round < resume_round {
                continue;
            }
            if last != Some(*round) {
                rounds += 1;
                last = Some(*round);
            }
            frames.push(frame.clone());
        }
        Snapshot::Entries { frames, rounds }
    }

    /// Oldest round still replayable.
    #[cfg(test)]
    pub(crate) fn floor(&self) -> u64 {
        self.floor
    }

    /// Retained payload bytes.
    #[cfg(test)]
    pub(crate) fn retained_bytes(&self) -> usize {
        self.bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame(tag: u8) -> Bytes {
        Bytes::from(vec![tag; 4])
    }

    fn must_entries(snap: Snapshot) -> (Vec<Bytes>, u64) {
        match snap {
            Snapshot::Entries { frames, rounds } => (frames, rounds),
            Snapshot::Evicted { floor } => panic!("unexpected eviction, floor {floor}"),
        }
    }

    #[test]
    fn snapshot_preserves_order_and_counts_rounds() {
        let mut log = ReplayLog::new(8);
        log.record(0, frame(1));
        log.record(0, frame(2));
        log.record(1, frame(3));
        log.record(2, frame(4));
        let (frames, rounds) = must_entries(log.snapshot_from(0));
        assert_eq!(frames, vec![frame(1), frame(2), frame(3), frame(4)]);
        assert_eq!(rounds, 3);
        let (frames, rounds) = must_entries(log.snapshot_from(1));
        assert_eq!(frames, vec![frame(3), frame(4)]);
        assert_eq!(rounds, 2);
        let (frames, rounds) = must_entries(log.snapshot_from(5));
        assert!(frames.is_empty());
        assert_eq!(rounds, 0);
    }

    #[test]
    fn eviction_slides_the_window_and_frees_bytes() {
        let mut log = ReplayLog::new(2);
        for round in 0..5u64 {
            log.record(round, frame(round as u8));
        }
        assert_eq!(log.retained_bytes(), 20);
        // Rounds 0..5 committed; keep the last 2 (rounds 3 and 4).
        log.evict_committed(5);
        assert_eq!(log.floor(), 3);
        assert_eq!(log.retained_bytes(), 8);
        let (frames, rounds) = must_entries(log.snapshot_from(3));
        assert_eq!(frames, vec![frame(3), frame(4)]);
        assert_eq!(rounds, 2);
        match log.snapshot_from(2) {
            Snapshot::Evicted { floor } => assert_eq!(floor, 3),
            Snapshot::Entries { .. } => panic!("round 2 should be evicted"),
        }
    }

    #[test]
    fn eviction_never_moves_the_floor_backwards() {
        let mut log = ReplayLog::new(4);
        for round in 0..10u64 {
            log.record(round, frame(round as u8));
        }
        log.evict_committed(10);
        assert_eq!(log.floor(), 6);
        log.evict_committed(3); // stale, must be a no-op
        assert_eq!(log.floor(), 6);
    }

    /// The exact eviction-boundary edges a resume can land on: at the
    /// retained floor (full replay), one below it (typed refusal, never
    /// a silent partial replay), and at `floor + window` (past every
    /// retained entry — a valid *empty* resume, not an eviction).
    #[test]
    fn resume_boundaries_pin_the_off_by_one_edges() {
        let window = 3;
        let mut log = ReplayLog::new(window);
        for round in 0..10u64 {
            log.record(round, frame(round as u8));
        }
        log.evict_committed(10);
        let floor = log.floor();
        assert_eq!(floor, 10 - window, "floor = next_round - window");
        let (frames, rounds) = must_entries(log.snapshot_from(floor));
        assert_eq!(frames, vec![frame(7), frame(8), frame(9)]);
        assert_eq!(rounds, window, "the floor resume replays the whole window");
        match log.snapshot_from(floor - 1) {
            Snapshot::Evicted { floor: named } => assert_eq!(named, floor),
            Snapshot::Entries { .. } => panic!("floor - 1 must be refused, not partially served"),
        }
        let (frames, rounds) = must_entries(log.snapshot_from(floor + window));
        assert!(frames.is_empty(), "past the newest entry nothing replays");
        assert_eq!(rounds, 0);
    }

    #[test]
    fn zero_window_is_clamped_to_one() {
        let mut log = ReplayLog::new(0);
        log.record(0, frame(9));
        log.evict_committed(1);
        let (frames, _) = must_entries(log.snapshot_from(0));
        assert_eq!(frames.len(), 1, "the in-flight round must survive");
    }
}

//! Flight-recorder tracing and a dependency-free metrics plane.
//!
//! Three layers, each usable alone:
//!
//! - [`TraceRing`] — a preallocated per-shard ring buffer of
//!   [`RoundTrace`] records: per-phase wall-clock nanos
//!   (compute / account / ship / place / barrier wait), frame bytes,
//!   checksum nanos, and the restart generation, for the last *K* rounds
//!   (`NETDECOMP_TRACE_WINDOW`, default 64). Recording is zero-alloc in
//!   steady state — every record is an in-place overwrite of a
//!   preallocated slot — so the engine's steady-state allocation
//!   guarantee holds with tracing enabled, and tracing never touches
//!   delivery logic, so results stay bit-identical
//!   ([`crate::Determinism::Verify`] passes with `NETDECOMP_TRACE=1` on
//!   every backend).
//! - [`MetricsRegistry`] — dependency-free counters, gauges, and
//!   log-bucket latency [`Histogram`]s, fed from [`crate::RunStats`],
//!   [`crate::DeliveryWork`], and [`crate::TransportHealth`]. All
//!   accumulation saturates.
//! - [`FlightRecorder`] — the postmortem dump: the last-K rounds of
//!   every reachable ring plus a timeline of supervisor annotations
//!   ([`TraceEvent`]: restarts with their backoff decision, heartbeat
//!   ages, chaos kills, stall kills, replay counts), serialized as
//!   JSONL.
//!
//! # Environment knobs
//!
//! - `NETDECOMP_TRACE=1` — enable per-round tracing everywhere (engine
//!   shards, workers, the hub's merged timeline).
//! - `NETDECOMP_TRACE_WINDOW=<rounds>` — ring capacity per shard
//!   (default 64).
//! - `NETDECOMP_TRACE_OUT=<path>` — where the flight-recorder JSONL
//!   dump is written (setting it also enables tracing); the `netdecomp`
//!   binary's `--trace-out` flag sets this for itself and every worker
//!   it spawns.
//!
//! # JSONL schema
//!
//! One JSON object per line, discriminated by `"type"`:
//!
//! ```text
//! {"type":"round","shard":1,"round":7,"compute_ns":1200,"account_ns":310,
//!  "ship_ns":450,"place_ns":980,"barrier_wait_ns":150,"frame_bytes":4096,
//!  "checksum_ns":210,"restarts_seen":0}
//! {"type":"event","at_ms":1532,"shard":1,"round":7,"kind":"restart",
//!  "detail":"attempt=1 backoff_ms=61 beat_age_ms=118 rounds_replayed=0"}
//! {"type":"counter","name":"total_messages","value":1184}
//! {"type":"gauge","name":"max_edge_bytes","value":8}
//! {"type":"histogram","name":"round_bytes","count":12,"sum":9216,
//!  "buckets":[[10,8],[11,4]]}
//! ```
//!
//! `shard` is `null` on events not attributable to one shard (whole-run
//! restarts, run completion). Histogram buckets are
//! `[bit_length, count]` pairs: bucket `b` counts observed values `v`
//! with `64 - v.leading_zeros() == b`, i.e. `2^(b-1) <= v < 2^b`
//! (bucket 0 counts zeros); empty buckets are omitted.

use std::collections::BTreeMap;
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::time::Instant;

use crate::frame::TransportHealth;
use crate::stats::{DeliveryWork, RunStats};

/// Whether tracing is requested through the environment:
/// `NETDECOMP_TRACE` set truthy (anything but empty, `0`, or `off`), or
/// `NETDECOMP_TRACE_OUT` naming a dump path.
#[must_use]
pub fn trace_enabled() -> bool {
    let flagged = std::env::var("NETDECOMP_TRACE").is_ok_and(|v| {
        let v = v.trim();
        !v.is_empty() && v != "0" && !v.eq_ignore_ascii_case("off")
    });
    flagged || trace_out().is_some()
}

/// Ring capacity in rounds (`NETDECOMP_TRACE_WINDOW`, default 64,
/// minimum 1).
#[must_use]
pub fn trace_window() -> usize {
    std::env::var("NETDECOMP_TRACE_WINDOW")
        .ok()
        .and_then(|raw| raw.trim().parse().ok())
        .filter(|&w| w > 0)
        .unwrap_or(64)
}

/// The flight-recorder dump path (`NETDECOMP_TRACE_OUT`), if one is
/// set and non-empty.
#[must_use]
pub fn trace_out() -> Option<PathBuf> {
    std::env::var("NETDECOMP_TRACE_OUT")
        .ok()
        .filter(|raw| !raw.trim().is_empty())
        .map(PathBuf::from)
}

/// The restart generation a supervised worker was launched as
/// (`NETDECOMP_WORKER_ATTEMPT`, set by the supervisor's spawn closure;
/// 0 when unset — a first launch or an unsupervised run).
#[must_use]
pub fn worker_attempt() -> u64 {
    std::env::var(crate::transport::launcher::ENV_ATTEMPT)
        .ok()
        .and_then(|raw| raw.trim().parse().ok())
        .unwrap_or(0)
}

/// One round's attribution record: where the wall-clock went, phase by
/// phase, plus the frame-seam volume counters for the same round.
///
/// All times are wall-clock nanoseconds measured around the phase
/// calls; like [`DeliveryWork::checksum_ns`] they are never compared
/// across backends for equality — only recorded. All accumulation
/// saturates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RoundTrace {
    /// The round this record describes.
    pub round: u64,
    /// Nanoseconds in the compute phase (protocol `start`/`round`).
    pub compute_ns: u64,
    /// Nanoseconds in the account phase (validate + charge + route).
    pub account_ns: u64,
    /// Nanoseconds in the ship phase (encode + hand to the transport);
    /// zero under shared-memory backends.
    pub ship_ns: u64,
    /// Nanoseconds in the place phase (collect + decode + scatter).
    pub place_ns: u64,
    /// Nanoseconds blocked at phase barriers (zero for inline engines,
    /// which have no barriers).
    pub barrier_wait_ns: u64,
    /// Encoded frame bytes this shard received this round (zero under
    /// shared-memory backends).
    pub frame_bytes: u64,
    /// Nanoseconds validating incoming frames this round (zero under
    /// shared-memory backends).
    pub checksum_ns: u64,
    /// Restart generation of the recording process: 0 on a first
    /// launch, the supervisor's attempt count on a relaunched worker.
    pub restarts_seen: u64,
}

impl RoundTrace {
    /// Total attributed phase time (saturating).
    #[must_use]
    pub fn busy_ns(&self) -> u64 {
        self.compute_ns
            .saturating_add(self.account_ns)
            .saturating_add(self.ship_ns)
            .saturating_add(self.place_ns)
            .saturating_add(self.barrier_wait_ns)
    }

    /// Appends this record as one `{"type":"round",...}` JSONL line.
    fn write_json(&self, shard: usize, out: &mut String) {
        use std::fmt::Write as _;
        let _ = writeln!(
            out,
            "{{\"type\":\"round\",\"shard\":{shard},\"round\":{},\
             \"compute_ns\":{},\"account_ns\":{},\"ship_ns\":{},\
             \"place_ns\":{},\"barrier_wait_ns\":{},\"frame_bytes\":{},\
             \"checksum_ns\":{},\"restarts_seen\":{}}}",
            self.round,
            self.compute_ns,
            self.account_ns,
            self.ship_ns,
            self.place_ns,
            self.barrier_wait_ns,
            self.frame_bytes,
            self.checksum_ns,
            self.restarts_seen,
        );
    }
}

/// A preallocated ring buffer holding the last *K* [`RoundTrace`]
/// records of one shard.
///
/// Construction decides everything: [`TraceRing::new`] with a nonzero
/// window preallocates the whole ring up front; a zero window (or
/// [`TraceRing::from_env`] with tracing off) builds a disabled ring
/// whose recording methods are no-ops. Either way, steady-state
/// recording never allocates: a committed round overwrites the oldest
/// slot in place.
#[derive(Debug, Clone, Default)]
pub struct TraceRing {
    /// The ring slots (capacity fixed at construction; empty +
    /// zero-capacity when tracing is disabled).
    records: Vec<RoundTrace>,
    /// Next slot to overwrite once the ring is full.
    head: usize,
    /// The round currently being accumulated, committed by
    /// [`TraceRing::commit`].
    pending: RoundTrace,
}

impl TraceRing {
    /// A ring holding `window` rounds; `window == 0` builds a disabled
    /// (never-allocating, never-recording) ring.
    #[must_use]
    pub fn new(window: usize) -> TraceRing {
        TraceRing {
            records: Vec::with_capacity(window),
            head: 0,
            pending: RoundTrace::default(),
        }
    }

    /// A ring configured from the environment: enabled with
    /// [`trace_window`] slots when [`trace_enabled`], disabled
    /// otherwise.
    #[must_use]
    pub fn from_env() -> TraceRing {
        if trace_enabled() {
            TraceRing::new(trace_window())
        } else {
            TraceRing::new(0)
        }
    }

    /// Whether this ring records anything.
    #[must_use]
    pub fn enabled(&self) -> bool {
        self.records.capacity() > 0
    }

    /// Committed records held (at most the window).
    #[must_use]
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// `true` when no round has been committed yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Starts timing a phase: `Some(now)` when enabled, `None` (no
    /// clock read at all) when disabled. Pair with the `note_*`
    /// methods.
    #[must_use]
    pub fn begin(&self) -> Option<Instant> {
        self.enabled().then(Instant::now)
    }

    fn elapsed_ns(since: Option<Instant>) -> u64 {
        since.map_or(0, |t| {
            u64::try_from(t.elapsed().as_nanos()).unwrap_or(u64::MAX)
        })
    }

    /// Adds the time since `since` to the pending round's compute phase.
    pub fn note_compute(&mut self, since: Option<Instant>) {
        self.pending.compute_ns = self
            .pending
            .compute_ns
            .saturating_add(Self::elapsed_ns(since));
    }

    /// Adds the time since `since` to the pending round's account phase.
    pub fn note_account(&mut self, since: Option<Instant>) {
        self.pending.account_ns = self
            .pending
            .account_ns
            .saturating_add(Self::elapsed_ns(since));
    }

    /// Adds the time since `since` to the pending round's ship phase.
    pub fn note_ship(&mut self, since: Option<Instant>) {
        self.pending.ship_ns = self.pending.ship_ns.saturating_add(Self::elapsed_ns(since));
    }

    /// Adds the time since `since` to the pending round's place phase.
    pub fn note_place(&mut self, since: Option<Instant>) {
        self.pending.place_ns = self
            .pending
            .place_ns
            .saturating_add(Self::elapsed_ns(since));
    }

    /// Adds already-measured nanoseconds to the pending round's barrier
    /// wait (one barrier wait covers every shard a worker thread owns,
    /// so the caller measures once and attributes to each).
    pub fn note_barrier_ns(&mut self, ns: u64) {
        self.pending.barrier_wait_ns = self.pending.barrier_wait_ns.saturating_add(ns);
    }

    /// Commits the pending round into the ring (overwriting the oldest
    /// record once full — never allocating) and resets the pending
    /// accumulator. `frame_bytes` / `checksum_ns` are the round's frame
    /// seam counters; `restarts_seen` the recording process's restart
    /// generation. No-op when disabled.
    pub fn commit(&mut self, round: u64, frame_bytes: u64, checksum_ns: u64, restarts_seen: u64) {
        if !self.enabled() {
            return;
        }
        self.pending.round = round;
        self.pending.frame_bytes = frame_bytes;
        self.pending.checksum_ns = checksum_ns;
        self.pending.restarts_seen = restarts_seen;
        if self.records.len() < self.records.capacity() {
            self.records.push(self.pending);
        } else {
            self.records[self.head] = self.pending;
            self.head = (self.head + 1) % self.records.len();
        }
        self.pending = RoundTrace::default();
    }

    /// The most recently committed record, if any.
    #[must_use]
    pub fn last(&self) -> Option<&RoundTrace> {
        if self.records.is_empty() {
            return None;
        }
        let newest = if self.records.len() < self.records.capacity() || self.head == 0 {
            self.records.len() - 1
        } else {
            self.head - 1
        };
        self.records.get(newest)
    }

    /// The committed records in chronological (oldest-first) order.
    pub fn iter(&self) -> impl Iterator<Item = &RoundTrace> {
        let (tail, head) = if self.records.len() < self.records.capacity() {
            (&self.records[..], &[][..])
        } else {
            let (head, tail) = self.records.split_at(self.head);
            (tail, head)
        };
        tail.iter().chain(head.iter())
    }

    /// An owned chronological snapshot (allocates — a cold-path call
    /// for dumps, never made from the round loop).
    #[must_use]
    pub fn snapshot(&self) -> Vec<RoundTrace> {
        self.iter().copied().collect()
    }
}

/// A log-bucket latency/size histogram: bucket `b` counts observed
/// values whose bit length is `b` (`2^(b-1) <= v < 2^b`; bucket 0
/// counts zeros). 64 fixed buckets cover the whole `u64` range with no
/// configuration and no allocation; counts and the running sum
/// saturate.
#[derive(Debug, Clone, Copy)]
pub struct Histogram {
    buckets: [u64; 65],
    count: u64,
    sum: u64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            buckets: [0; 65],
            count: 0,
            sum: 0,
        }
    }
}

impl Histogram {
    /// Records one observation.
    pub fn record(&mut self, value: u64) {
        let bucket = (64 - value.leading_zeros()) as usize;
        self.buckets[bucket] = self.buckets[bucket].saturating_add(1);
        self.count = self.count.saturating_add(1);
        self.sum = self.sum.saturating_add(value);
    }

    /// Observations recorded.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of observed values (saturating).
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// `(bit_length, count)` for every non-empty bucket, ascending.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (usize, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(b, &c)| (b, c))
    }
}

/// A dependency-free metrics registry: named counters, gauges, and
/// log-bucket histograms, with feeders for the engine's accounting
/// structs. Names are `&'static str` so registration never allocates
/// key storage per update.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, u64>,
    histograms: BTreeMap<&'static str, Histogram>,
}

impl MetricsRegistry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Adds `delta` to counter `name` (saturating).
    pub fn counter_add(&mut self, name: &'static str, delta: u64) {
        let slot = self.counters.entry(name).or_insert(0);
        *slot = slot.saturating_add(delta);
    }

    /// Sets gauge `name` to `value` (last write wins).
    pub fn gauge_set(&mut self, name: &'static str, value: u64) {
        self.gauges.insert(name, value);
    }

    /// Records `value` into histogram `name`.
    pub fn observe(&mut self, name: &'static str, value: u64) {
        self.histograms.entry(name).or_default().record(value);
    }

    /// The current value of counter `name` (0 when never touched).
    #[must_use]
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// The current value of gauge `name`, if ever set.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Option<u64> {
        self.gauges.get(name).copied()
    }

    /// The histogram registered under `name`, if any.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Feeds a run's communication accounting: message/byte totals as
    /// counters, the edge high-water mark as a gauge, and the per-round
    /// message and byte distributions as histograms.
    pub fn observe_run_stats(&mut self, stats: &RunStats) {
        self.counter_add("rounds", stats.rounds as u64);
        self.counter_add("total_messages", stats.total_messages as u64);
        self.counter_add("total_bytes", stats.total_bytes as u64);
        self.gauge_set("max_edge_bytes", stats.max_edge_bytes as u64);
        for round in &stats.per_round {
            self.observe("round_messages", round.messages as u64);
            self.observe("round_bytes", round.bytes as u64);
        }
    }

    /// Feeds the mechanical delivery-work counters.
    pub fn observe_delivery_work(&mut self, work: &DeliveryWork) {
        self.counter_add("refs_scanned", work.refs_scanned as u64);
        self.counter_add("copies_delivered", work.copies_delivered as u64);
        self.counter_add("payload_registrations", work.payload_registrations as u64);
        self.counter_add("inbox_slot_bytes", work.inbox_slot_bytes as u64);
        self.counter_add("frame_bytes", work.frame_bytes as u64);
        self.counter_add("checksum_ns", work.checksum_ns);
        self.counter_add("overlap_ships", work.overlap_ships as u64);
        self.counter_add("collect_wait_ns", work.collect_wait_ns);
    }

    /// Feeds a transport's cumulative health counters.
    pub fn observe_transport_health(&mut self, health: &TransportHealth) {
        self.counter_add("frames_retried", health.frames_retried as u64);
        self.counter_add(
            "frames_dropped_injected",
            health.frames_dropped_injected as u64,
        );
        self.counter_add("collect_wait_ns", health.collect_wait_ns);
        self.counter_add("workers_restarted", health.workers_restarted as u64);
        self.counter_add("rounds_replayed", health.rounds_replayed as u64);
        self.counter_add("heartbeats_missed", health.heartbeats_missed as u64);
    }

    /// Renders every metric as JSONL (`counter` / `gauge` / `histogram`
    /// lines — see the module docs for the schema).
    fn write_jsonl(&self, out: &mut String) {
        use std::fmt::Write as _;
        for (name, value) in &self.counters {
            let _ = write!(out, "{{\"type\":\"counter\",\"name\":");
            write_json_string(out, name);
            let _ = writeln!(out, ",\"value\":{value}}}");
        }
        for (name, value) in &self.gauges {
            let _ = write!(out, "{{\"type\":\"gauge\",\"name\":");
            write_json_string(out, name);
            let _ = writeln!(out, ",\"value\":{value}}}");
        }
        for (name, h) in &self.histograms {
            let _ = write!(out, "{{\"type\":\"histogram\",\"name\":");
            write_json_string(out, name);
            let _ = write!(
                out,
                ",\"count\":{},\"sum\":{},\"buckets\":[",
                h.count(),
                h.sum()
            );
            let mut first = true;
            for (bucket, count) in h.nonzero_buckets() {
                if !first {
                    out.push(',');
                }
                first = false;
                let _ = write!(out, "[{bucket},{count}]");
            }
            let _ = writeln!(out, "]}}");
        }
    }
}

/// One supervisor (or driver) annotation on the flight-recorder
/// timeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Milliseconds since the recorder was created.
    pub at_ms: u64,
    /// The shard the event is about, if attributable to one.
    pub shard: Option<usize>,
    /// The round the fabric (or the shard) had reached.
    pub round: u64,
    /// Event class: `restart`, `lost`, `stall_kill`, `chaos_kill`,
    /// `run_restart`, `halt`, ...
    pub kind: &'static str,
    /// Free-form detail (backoff decision, heartbeat age, replay
    /// counts, error rendering).
    pub detail: String,
}

/// The postmortem collector: per-shard ring snapshots plus a timeline
/// of [`TraceEvent`] annotations, dumped as JSONL.
///
/// Cold-path by design — it allocates freely; nothing here is called
/// from the round loop. A dump is ordered: every shard's round records
/// (shard-major, chronological), then events in insertion order, then
/// the metrics registry if one was attached.
#[derive(Debug)]
pub struct FlightRecorder {
    epoch: Instant,
    shards: BTreeMap<usize, Vec<RoundTrace>>,
    events: Vec<TraceEvent>,
    metrics: Option<MetricsRegistry>,
}

impl Default for FlightRecorder {
    fn default() -> FlightRecorder {
        FlightRecorder::new()
    }
}

impl FlightRecorder {
    /// An empty recorder; event timestamps are measured from now.
    #[must_use]
    pub fn new() -> FlightRecorder {
        FlightRecorder {
            epoch: Instant::now(),
            shards: BTreeMap::new(),
            events: Vec::new(),
            metrics: None,
        }
    }

    /// Replaces the recorded ring for `shard` with `records`
    /// (chronological). Replacement (not append) keeps re-streamed
    /// rounds from a restarted worker from duplicating unboundedly —
    /// the newest snapshot per shard is the postmortem-relevant one.
    pub fn absorb_ring(&mut self, shard: usize, records: Vec<RoundTrace>) {
        if records.is_empty() {
            return;
        }
        self.shards.insert(shard, records);
    }

    /// Appends a timeline annotation, timestamped now.
    pub fn event(&mut self, shard: Option<usize>, round: u64, kind: &'static str, detail: String) {
        self.events.push(TraceEvent {
            at_ms: u64::try_from(self.epoch.elapsed().as_millis()).unwrap_or(u64::MAX),
            shard,
            round,
            kind,
            detail,
        });
    }

    /// Attaches (replacing) the metrics registry to include in dumps.
    pub fn set_metrics(&mut self, metrics: MetricsRegistry) {
        self.metrics = Some(metrics);
    }

    /// The annotations recorded so far, in insertion order.
    #[must_use]
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Round records recorded for `shard`, chronological.
    #[must_use]
    pub fn shard_rounds(&self, shard: usize) -> &[RoundTrace] {
        self.shards.get(&shard).map_or(&[], Vec::as_slice)
    }

    /// Renders the whole dump as a JSONL string (see the module docs
    /// for the schema).
    #[must_use]
    pub fn render_jsonl(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for (&shard, records) in &self.shards {
            for record in records {
                record.write_json(shard, &mut out);
            }
        }
        for event in &self.events {
            let _ = write!(
                out,
                "{{\"type\":\"event\",\"at_ms\":{},\"shard\":",
                event.at_ms
            );
            match event.shard {
                Some(shard) => {
                    let _ = write!(out, "{shard}");
                }
                None => out.push_str("null"),
            }
            let _ = write!(out, ",\"round\":{},\"kind\":", event.round);
            write_json_string(&mut out, event.kind);
            out.push_str(",\"detail\":");
            write_json_string(&mut out, &event.detail);
            out.push_str("}\n");
        }
        if let Some(metrics) = &self.metrics {
            metrics.write_jsonl(&mut out);
        }
        out
    }

    /// Writes the JSONL dump to `out`.
    ///
    /// # Errors
    ///
    /// Propagates the writer's I/O errors.
    pub fn write_jsonl(&self, out: &mut impl Write) -> io::Result<()> {
        out.write_all(self.render_jsonl().as_bytes())
    }

    /// Writes the JSONL dump to a file at `path` (created or
    /// truncated).
    ///
    /// # Errors
    ///
    /// Propagates file creation and write errors.
    pub fn dump_to(&self, path: &Path) -> io::Result<()> {
        let mut file = std::fs::File::create(path)?;
        self.write_jsonl(&mut file)?;
        file.flush()
    }
}

/// Appends `s` as a JSON string literal (quoted, minimally escaped).
fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use std::fmt::Write as _;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a_disabled_ring_records_nothing_and_holds_no_storage() {
        let mut ring = TraceRing::new(0);
        assert!(!ring.enabled());
        assert!(ring.begin().is_none());
        ring.note_compute(None);
        ring.commit(3, 10, 20, 0);
        assert!(ring.is_empty());
        assert_eq!(ring.records.capacity(), 0);
    }

    #[test]
    fn the_ring_wraps_keeping_the_last_k_rounds_chronological() {
        let mut ring = TraceRing::new(4);
        for round in 0..10u64 {
            ring.commit(round, round * 100, 0, 0);
        }
        let rounds: Vec<u64> = ring.iter().map(|r| r.round).collect();
        assert_eq!(rounds, vec![6, 7, 8, 9]);
        assert_eq!(ring.last().unwrap().round, 9);
        assert_eq!(ring.last().unwrap().frame_bytes, 900);
        // The ring never grew past its preallocated window.
        assert_eq!(ring.records.capacity(), 4);
    }

    #[test]
    fn phase_notes_accumulate_into_the_pending_round() {
        let mut ring = TraceRing::new(2);
        let t = ring.begin();
        assert!(t.is_some());
        ring.note_compute(t);
        ring.note_barrier_ns(500);
        ring.note_barrier_ns(250);
        ring.commit(7, 0, 0, 2);
        let last = *ring.last().unwrap();
        assert_eq!(last.round, 7);
        assert_eq!(last.barrier_wait_ns, 750);
        assert_eq!(last.restarts_seen, 2);
        assert!(last.busy_ns() >= 750);
        // The pending accumulator was reset by the commit.
        ring.commit(8, 0, 0, 0);
        assert_eq!(ring.last().unwrap().barrier_wait_ns, 0);
    }

    #[test]
    fn histogram_buckets_by_bit_length_and_saturates() {
        let mut h = Histogram::default();
        h.record(0);
        h.record(1);
        h.record(2);
        h.record(3);
        h.record(1024);
        let buckets: Vec<(usize, u64)> = h.nonzero_buckets().collect();
        assert_eq!(buckets, vec![(0, 1), (1, 1), (2, 2), (11, 1)]);
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 1030);
        let mut s = Histogram::default();
        s.record(u64::MAX);
        s.record(u64::MAX);
        assert_eq!(s.sum(), u64::MAX);
        assert_eq!(s.nonzero_buckets().next(), Some((64, 2)));
    }

    #[test]
    fn the_registry_feeds_from_engine_accounting() {
        let mut m = MetricsRegistry::new();
        let mut stats = RunStats::default();
        stats.absorb(crate::RoundStats {
            round: 0,
            messages: 4,
            bytes: 64,
            max_edge_bytes: 16,
        });
        m.observe_run_stats(&stats);
        m.observe_delivery_work(&DeliveryWork {
            refs_scanned: 9,
            ..DeliveryWork::default()
        });
        m.observe_transport_health(&TransportHealth {
            rounds_replayed: 3,
            ..TransportHealth::default()
        });
        assert_eq!(m.counter("total_messages"), 4);
        assert_eq!(m.counter("refs_scanned"), 9);
        assert_eq!(m.counter("rounds_replayed"), 3);
        assert_eq!(m.gauge("max_edge_bytes"), Some(16));
        assert_eq!(m.histogram("round_bytes").unwrap().count(), 1);
    }

    #[test]
    fn the_recorder_dumps_rounds_events_and_metrics_as_jsonl() {
        let mut recorder = FlightRecorder::new();
        let mut ring = TraceRing::new(3);
        ring.commit(5, 128, 77, 1);
        recorder.absorb_ring(2, ring.snapshot());
        recorder.event(Some(2), 5, "restart", "attempt=1 \"quoted\"".into());
        recorder.event(None, 0, "halt", "ok".into());
        let mut metrics = MetricsRegistry::new();
        metrics.counter_add("total_messages", 11);
        recorder.set_metrics(metrics);
        let dump = recorder.render_jsonl();
        let lines: Vec<&str> = dump.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("\"type\":\"round\""), "{dump}");
        assert!(lines[0].contains("\"shard\":2"));
        assert!(lines[0].contains("\"round\":5"));
        assert!(lines[0].contains("\"frame_bytes\":128"));
        assert!(lines[0].contains("\"restarts_seen\":1"));
        assert!(lines[1].contains("\"kind\":\"restart\""));
        assert!(lines[1].contains("\\\"quoted\\\""));
        assert!(lines[2].contains("\"shard\":null"));
        assert!(lines[3].contains("\"type\":\"counter\""));
        assert!(lines[3].contains("\"value\":11"));
        // Every shard's records are reachable by index too.
        assert_eq!(recorder.shard_rounds(2).len(), 1);
        assert!(recorder.shard_rounds(0).is_empty());
    }

    #[test]
    fn json_strings_escape_control_characters() {
        let mut out = String::new();
        write_json_string(&mut out, "a\"b\\c\nd\u{1}");
        assert_eq!(out, "\"a\\\"b\\\\c\\nd\\u0001\"");
    }
}

//! Round- and run-level accounting of communication.

/// Per-edge per-round byte budget, the defining constraint of CONGEST.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CongestLimit {
    /// No limit — the LOCAL model.
    #[default]
    Unlimited,
    /// Hard cap in bytes per directed edge per round; exceeding it is a
    /// [`crate::SimError::CongestViolation`].
    PerEdgeBytes(usize),
}

impl CongestLimit {
    /// The conventional CONGEST budget used across this workspace:
    /// `O(1)` words of `O(log n)` bits — concretely two 8-byte words.
    pub const STANDARD_WORDS: CongestLimit = CongestLimit::PerEdgeBytes(16);
}

/// Work counters from the most recent delivery (place) phase, summed
/// over all shards by [`crate::Simulator::delivery_work`].
///
/// These measure the *mechanical* cost of routing, not the protocol's
/// communication (that is [`RoundStats`]): with the sender-side routing
/// index, `refs_scanned` is bounded by `messages + copies` at any shard
/// count — each unicast or multicast target is one ref, each broadcast
/// at most `min(degree, shards)` segment refs — where the pre-routing
/// engine rescanned every outbox header from every shard
/// (`O(shards × messages)`). The engine benches report these so the
/// claim is visible in checked-in artifacts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DeliveryWork {
    /// Route references examined by receiving shards during the count
    /// pass (the per-message "header work").
    pub refs_scanned: usize,
    /// Message copies deposited into inboxes (one per recipient reached).
    pub copies_delivered: usize,
    /// Payloads registered in receiving shards' slabs this round — one
    /// per unique `(sender, message)` payload per destination shard, the
    /// only place delivery touches a payload handle. With slab-backed
    /// inboxes this tracks `refs_scanned` (per *message*), not
    /// `copies_delivered` (per *copy*): a broadcast's payload is
    /// registered once per destination shard and shared by every copy.
    pub payload_registrations: usize,
    /// Bytes of compact inbox-slot storage written by the scatter pass
    /// this round (`copies × size_of::<InboxSlot>()` — the entire
    /// per-copy memory traffic now that payload handles are per-message).
    pub inbox_slot_bytes: usize,
    /// Encoded bucket-frame bytes received this round, summed over
    /// shards — the volume a process-per-shard transport would put on the
    /// wire. Zero under the shared-memory backends; under
    /// [`crate::Engine::Framed`] it is the measured frame overhead
    /// (headers + ref and payload tables) plus one copy of every routed
    /// payload, reported by the engine benches as `frame_bytes_per_round`.
    pub frame_bytes: usize,
    /// Nanoseconds receiving shards spent validating incoming frames this
    /// round (header parse + the fused checksum/structure walk — the cost
    /// the v2 word-parallel digest attacks), summed over shards. Zero
    /// under the shared-memory backends; reported by the engine benches
    /// as `checksum_ns_per_round`. Wall-clock time, so never compared
    /// across backends for equality — only the structural counters are.
    pub checksum_ns: u64,
    /// Frames shipped from inside the fused compute/account/ship phase of
    /// the overlapped framed schedule (cumulative over the run). Zero when
    /// the overlap is disabled (`NETDECOMP_FRAME_OVERLAP=0` or
    /// [`crate::Simulator::with_overlap`]) and under shared-memory
    /// backends, `shards²` per round when it is on: every frame then
    /// ships before the round's single barrier instead of from a
    /// dedicated post-account ship phase.
    pub overlap_ships: usize,
    /// Transport-level retries (cumulative over the run): reconnect
    /// attempts and frame re-sends performed by backends that own a real
    /// link, e.g. the socket backend's one-shot
    /// reconnect-with-handshake. Zero on the shared-memory backends.
    /// Reported by the engine benches as `frames_retried`.
    pub frames_retried: usize,
    /// Frames deliberately discarded or withheld by a
    /// [`crate::transport::FaultInjectingTransport`] wrapper (cumulative
    /// over the run): drop and delay faults both count here, since both
    /// withhold a frame from the round that expected it. Always zero
    /// outside fault-injection runs — a nonzero value in a production
    /// log means a fault harness is still wired in.
    pub frames_dropped_injected: usize,
    /// Nanoseconds shards spent blocked inside
    /// [`crate::frame::Transport::collect`] waiting for peer frames
    /// (cumulative over the run). Zero on the loopback backend (frames
    /// are already in shared slots); on the channel and socket backends
    /// it is the measured synchronization + wire latency, reported by
    /// the engine benches as `collect_wait_ns`. Wall-clock time, so
    /// never compared across backends for equality.
    pub collect_wait_ns: u64,
    /// Worker re-admissions on the socket fabric (cumulative over the
    /// run): restarted worker processes plus surviving-client link
    /// reconnects. Zero on the shared-memory backends and on failure-free
    /// socket runs.
    pub workers_restarted: usize,
    /// Rounds the socket hub fast-forwarded to reconnecting shards from
    /// its per-destination replay logs (cumulative over the run).
    pub rounds_replayed: usize,
    /// Heartbeats a supervisor judged overdue before intervening
    /// (cumulative over the run). Nonzero only under supervision.
    pub heartbeats_missed: usize,
}

impl DeliveryWork {
    /// Adds another shard's (or run's) counters into this one. Every
    /// field saturates instead of overflowing, so a long soak run pins
    /// at the numeric maximum rather than wrapping into a silently
    /// wrong small number — the same contract as [`RunStats::absorb`]
    /// and [`crate::TransportHealth::absorb`].
    pub fn absorb(&mut self, other: &DeliveryWork) {
        self.refs_scanned = self.refs_scanned.saturating_add(other.refs_scanned);
        self.copies_delivered = self.copies_delivered.saturating_add(other.copies_delivered);
        self.payload_registrations = self
            .payload_registrations
            .saturating_add(other.payload_registrations);
        self.inbox_slot_bytes = self.inbox_slot_bytes.saturating_add(other.inbox_slot_bytes);
        self.frame_bytes = self.frame_bytes.saturating_add(other.frame_bytes);
        self.checksum_ns = self.checksum_ns.saturating_add(other.checksum_ns);
        self.overlap_ships = self.overlap_ships.saturating_add(other.overlap_ships);
        self.frames_retried = self.frames_retried.saturating_add(other.frames_retried);
        self.frames_dropped_injected = self
            .frames_dropped_injected
            .saturating_add(other.frames_dropped_injected);
        self.collect_wait_ns = self.collect_wait_ns.saturating_add(other.collect_wait_ns);
        self.workers_restarted = self
            .workers_restarted
            .saturating_add(other.workers_restarted);
        self.rounds_replayed = self.rounds_replayed.saturating_add(other.rounds_replayed);
        self.heartbeats_missed = self
            .heartbeats_missed
            .saturating_add(other.heartbeats_missed);
    }
}

/// Communication accounting for a single round.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RoundStats {
    /// Round index (0-based; round 0 is the `start` round).
    pub round: usize,
    /// Messages delivered this round.
    pub messages: usize,
    /// Total payload bytes delivered this round.
    pub bytes: usize,
    /// Largest payload in bytes crossing any single directed edge this round.
    pub max_edge_bytes: usize,
}

/// Cumulative accounting for a whole run.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RunStats {
    /// Number of rounds executed (including the `start` round).
    pub rounds: usize,
    /// Total messages delivered.
    pub total_messages: usize,
    /// Total payload bytes delivered.
    pub total_bytes: usize,
    /// Max over rounds of [`RoundStats::max_edge_bytes`].
    pub max_edge_bytes: usize,
    /// Per-round breakdown.
    pub per_round: Vec<RoundStats>,
}

impl RunStats {
    /// Folds one round's stats into the totals.
    ///
    /// Message and byte totals saturate instead of overflowing: a
    /// multi-billion-round accumulation pins at `usize::MAX` rather than
    /// wrapping into a silently wrong small number.
    pub fn absorb(&mut self, round: RoundStats) {
        self.rounds = self.rounds.saturating_add(1);
        self.total_messages = self.total_messages.saturating_add(round.messages);
        self.total_bytes = self.total_bytes.saturating_add(round.bytes);
        self.max_edge_bytes = self.max_edge_bytes.max(round.max_edge_bytes);
        self.per_round.push(round);
    }

    /// Merges another run's stats (e.g. a later phase) into this one.
    /// Totals saturate, as in [`RunStats::absorb`].
    pub fn merge(&mut self, other: &RunStats) {
        self.rounds = self.rounds.saturating_add(other.rounds);
        self.total_messages = self.total_messages.saturating_add(other.total_messages);
        self.total_bytes = self.total_bytes.saturating_add(other.total_bytes);
        self.max_edge_bytes = self.max_edge_bytes.max(other.max_edge_bytes);
        self.per_round.extend(other.per_round.iter().copied());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absorb_accumulates() {
        let mut run = RunStats::default();
        run.absorb(RoundStats {
            round: 0,
            messages: 3,
            bytes: 30,
            max_edge_bytes: 10,
        });
        run.absorb(RoundStats {
            round: 1,
            messages: 1,
            bytes: 4,
            max_edge_bytes: 4,
        });
        assert_eq!(run.rounds, 2);
        assert_eq!(run.total_messages, 4);
        assert_eq!(run.total_bytes, 34);
        assert_eq!(run.max_edge_bytes, 10);
        assert_eq!(run.per_round.len(), 2);
    }

    #[test]
    fn merge_combines_runs() {
        let mut a = RunStats::default();
        a.absorb(RoundStats {
            round: 0,
            messages: 1,
            bytes: 8,
            max_edge_bytes: 8,
        });
        let mut b = RunStats::default();
        b.absorb(RoundStats {
            round: 0,
            messages: 2,
            bytes: 40,
            max_edge_bytes: 20,
        });
        a.merge(&b);
        assert_eq!(a.rounds, 2);
        assert_eq!(a.total_bytes, 48);
        assert_eq!(a.max_edge_bytes, 20);
    }

    #[test]
    fn absorb_and_merge_saturate_instead_of_overflowing() {
        let near_max = RoundStats {
            round: 0,
            messages: usize::MAX - 1,
            bytes: usize::MAX - 1,
            max_edge_bytes: 1,
        };
        let mut run = RunStats::default();
        run.absorb(near_max);
        run.absorb(near_max);
        assert_eq!(run.total_messages, usize::MAX);
        assert_eq!(run.total_bytes, usize::MAX);
        let mut other = RunStats::default();
        other.absorb(near_max);
        run.merge(&other);
        assert_eq!(run.total_messages, usize::MAX);
        assert_eq!(run.rounds, 3);
    }

    #[test]
    fn delivery_work_absorb_saturates_every_field() {
        let near_max = DeliveryWork {
            refs_scanned: usize::MAX - 1,
            copies_delivered: usize::MAX - 1,
            payload_registrations: usize::MAX - 1,
            inbox_slot_bytes: usize::MAX - 1,
            frame_bytes: usize::MAX - 1,
            checksum_ns: u64::MAX - 1,
            overlap_ships: usize::MAX - 1,
            frames_retried: usize::MAX - 1,
            frames_dropped_injected: usize::MAX - 1,
            collect_wait_ns: u64::MAX - 1,
            workers_restarted: usize::MAX - 1,
            rounds_replayed: usize::MAX - 1,
            heartbeats_missed: usize::MAX - 1,
        };
        let mut sum = near_max;
        sum.absorb(&near_max);
        assert_eq!(sum.refs_scanned, usize::MAX);
        assert_eq!(sum.copies_delivered, usize::MAX);
        assert_eq!(sum.payload_registrations, usize::MAX);
        assert_eq!(sum.inbox_slot_bytes, usize::MAX);
        assert_eq!(sum.frame_bytes, usize::MAX);
        assert_eq!(sum.checksum_ns, u64::MAX);
        assert_eq!(sum.overlap_ships, usize::MAX);
        assert_eq!(sum.frames_retried, usize::MAX);
        assert_eq!(sum.frames_dropped_injected, usize::MAX);
        assert_eq!(sum.collect_wait_ns, u64::MAX);
        assert_eq!(sum.workers_restarted, usize::MAX);
        assert_eq!(sum.rounds_replayed, usize::MAX);
        assert_eq!(sum.heartbeats_missed, usize::MAX);
        let mut small = DeliveryWork::default();
        small.absorb(&DeliveryWork {
            refs_scanned: 2,
            copies_delivered: 3,
            ..DeliveryWork::default()
        });
        assert_eq!(small.refs_scanned, 2);
        assert_eq!(small.copies_delivered, 3);
    }

    #[test]
    fn default_limit_is_unlimited() {
        assert_eq!(CongestLimit::default(), CongestLimit::Unlimited);
        assert_eq!(CongestLimit::STANDARD_WORDS, CongestLimit::PerEdgeBytes(16));
    }
}

//! Typed message exchange over the byte-level engine.
//!
//! A [`Codec`] pairs a message type with its fixed wire encoding; the
//! [`Typed`] adapter lets a protocol speak in terms of decoded messages
//! while the engine keeps shipping [`bytes::Bytes`]. Each outgoing message
//! is encoded exactly once — a broadcast hands every recipient a
//! reference-counted view of the same encoding — and each incoming payload
//! is decoded exactly once per recipient, straight from the delivering
//! shard's slab-backed [`Inbox`] view (a borrowed slice; no payload-handle
//! clone, no reference-count traffic on the read path).

use bytes::Bytes;
use netdecomp_graph::VertexId;

use crate::{Ctx, Inbox, Outbox, Protocol};

/// A bidirectional mapping between a message type and its wire bytes.
///
/// Implementations are zero-sized tag types. Encoding must be injective;
/// arbitrary byte strings may decode to `None` (malformed). Most codecs
/// round-trip (`decode(encode(m)) == Some(m)`), though a codec may fold a
/// deterministic hop transform into the wire format (e.g. pre-incrementing
/// a distance for the receiver).
pub trait Codec {
    /// The in-memory message type.
    type Msg;

    /// Encodes one message. Called once per send, including broadcasts.
    fn encode(msg: &Self::Msg) -> Bytes;

    /// Decodes a payload, or `None` if malformed/truncated.
    ///
    /// Takes a borrowed byte slice (pass a [`Bytes`] through deref): the
    /// typed read path resolves payloads out of the delivery slab without
    /// cloning a handle per recipient, and decoding must not either.
    fn decode(payload: &[u8]) -> Option<Self::Msg>;
}

/// A protocol exchanging typed messages through a [`Codec`].
///
/// Wrap it in [`Typed`] to obtain a byte-level [`Protocol`] the
/// [`crate::Simulator`] can run.
pub trait TypedProtocol {
    /// The codec defining this protocol's wire format.
    type Codec: Codec;

    /// Round 0, before any delivery.
    fn start(&mut self, ctx: &Ctx<'_>, out: &mut TypedOutbox<'_, Self::Codec>);

    /// Every round ≥ 1, with this round's decoded messages in delivery
    /// order. Malformed payloads are dropped before this is called (a
    /// debug build asserts they do not occur).
    fn round(
        &mut self,
        ctx: &Ctx<'_>,
        incoming: &[(VertexId, <Self::Codec as Codec>::Msg)],
        out: &mut TypedOutbox<'_, Self::Codec>,
    );

    /// Local termination, as in [`Protocol::is_halted`].
    fn is_halted(&self) -> bool {
        false
    }
}

/// Send buffer encoding typed messages through a [`Codec`].
#[derive(Debug)]
pub struct TypedOutbox<'a, C: Codec> {
    raw: &'a mut Outbox,
    _codec: std::marker::PhantomData<C>,
}

impl<C: Codec> TypedOutbox<'_, C> {
    /// Encodes `msg` once and queues it to a single neighbor.
    pub fn unicast(&mut self, to: VertexId, msg: &C::Msg) {
        self.raw.unicast(to, C::encode(msg));
    }

    /// Encodes `msg` once and queues one copy per listed neighbor; all
    /// copies share the one encoding.
    pub fn multicast(&mut self, to: Vec<VertexId>, msg: &C::Msg) {
        self.raw.multicast(to, C::encode(msg));
    }

    /// Encodes `msg` once and queues it along every incident edge; all
    /// recipients share the one encoding.
    pub fn broadcast(&mut self, msg: &C::Msg) {
        self.raw.broadcast(C::encode(msg));
    }
}

/// Adapter running a [`TypedProtocol`] as a byte-level [`Protocol`].
///
/// Carries a per-node scratch buffer for decoded messages, reused across
/// rounds so the compute phase stays allocation-free in steady state.
/// `Clone`/`PartialEq` look only at `inner` — the scratch is transient
/// (filled and consumed within one `round` call).
pub struct Typed<T: TypedProtocol> {
    /// The wrapped typed protocol (accessible for result extraction).
    pub inner: T,
    decoded: Vec<(VertexId, <T::Codec as Codec>::Msg)>,
}

impl<T: TypedProtocol> Typed<T> {
    /// Wraps a typed protocol.
    pub fn new(inner: T) -> Self {
        Typed {
            inner,
            decoded: Vec::new(),
        }
    }
}

impl<T: TypedProtocol + std::fmt::Debug> std::fmt::Debug for Typed<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Typed").field("inner", &self.inner).finish()
    }
}

impl<T: TypedProtocol + Clone> Clone for Typed<T> {
    fn clone(&self) -> Self {
        Typed::new(self.inner.clone())
    }
}

impl<T: TypedProtocol + PartialEq> PartialEq for Typed<T> {
    fn eq(&self, other: &Self) -> bool {
        self.inner == other.inner
    }
}

impl<T: TypedProtocol + Eq> Eq for Typed<T> {}

impl<T: TypedProtocol> Protocol for Typed<T> {
    fn start(&mut self, ctx: &Ctx<'_>, out: &mut Outbox) {
        let mut typed = TypedOutbox {
            raw: out,
            _codec: std::marker::PhantomData,
        };
        self.inner.start(ctx, &mut typed);
    }

    fn round(&mut self, ctx: &Ctx<'_>, incoming: Inbox<'_>, out: &mut Outbox) {
        self.decoded.clear();
        self.decoded.extend(incoming.iter().filter_map(|m| {
            let msg = T::Codec::decode(m.payload());
            debug_assert!(msg.is_some(), "malformed payload from {}", m.from());
            msg.map(|msg| (m.from(), msg))
        }));
        let mut typed = TypedOutbox {
            raw: out,
            _codec: std::marker::PhantomData,
        };
        self.inner.round(ctx, &self.decoded, &mut typed);
    }

    fn is_halted(&self) -> bool {
        self.inner.is_halted()
    }
}

/// Blanket checkpoint plumbing: a typed protocol that can snapshot its
/// own state makes the whole [`Typed`] wrapper snapshot-capable for
/// free. The decode scratch buffer is per-round transient (cleared at
/// the top of every [`Protocol::round`]), so the inner state is the
/// wrapper's entire checkpointable state.
impl<T: TypedProtocol + crate::Snapshot> crate::Snapshot for Typed<T> {
    fn save_state(&self) -> Bytes {
        self.inner.save_state()
    }

    fn load_state(&mut self, bytes: &[u8]) -> bool {
        self.inner.load_state(bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::{WireReader, WireWriter};
    use crate::Simulator;
    use netdecomp_graph::generators;

    /// Counter message: (origin, hops).
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    struct Hop {
        origin: u32,
        hops: u16,
    }

    struct HopCodec;

    impl Codec for HopCodec {
        type Msg = Hop;

        fn encode(msg: &Hop) -> Bytes {
            WireWriter::new().u32(msg.origin).u16(msg.hops).finish()
        }

        fn decode(payload: &[u8]) -> Option<Hop> {
            let mut r = WireReader::new(payload);
            let origin = r.u32()?;
            let hops = r.u16()?;
            r.is_exhausted().then_some(Hop { origin, hops })
        }
    }

    #[derive(Debug, Clone, PartialEq, Eq)]
    struct Relay {
        best: Option<Hop>,
    }

    impl TypedProtocol for Relay {
        type Codec = HopCodec;

        fn start(&mut self, ctx: &Ctx<'_>, out: &mut TypedOutbox<'_, HopCodec>) {
            if ctx.id == 0 {
                let msg = Hop { origin: 0, hops: 0 };
                self.best = Some(msg);
                out.broadcast(&msg);
            }
        }

        fn round(
            &mut self,
            _ctx: &Ctx<'_>,
            incoming: &[(usize, Hop)],
            out: &mut TypedOutbox<'_, HopCodec>,
        ) {
            if self.best.is_none() {
                if let Some((_, first)) = incoming.first() {
                    let mine = Hop {
                        origin: first.origin,
                        hops: first.hops + 1,
                    };
                    self.best = Some(mine);
                    out.broadcast(&mine);
                }
            }
        }

        fn is_halted(&self) -> bool {
            self.best.is_some()
        }
    }

    #[test]
    fn typed_relay_counts_hops() {
        let g = generators::path(5);
        let mut sim = Simulator::new(&g, |_, _| Typed::new(Relay { best: None }));
        sim.run_to_quiescence(10).unwrap();
        for (v, node) in sim.nodes().iter().enumerate() {
            assert_eq!(node.inner.best.unwrap().hops as usize, v);
        }
    }

    #[test]
    fn codec_round_trips() {
        let m = Hop {
            origin: 77,
            hops: 3,
        };
        assert_eq!(HopCodec::decode(&HopCodec::encode(&m)), Some(m));
        assert_eq!(HopCodec::decode(&Bytes::from_static(b"xx")), None);
    }
}

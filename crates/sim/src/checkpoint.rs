//! Checksummed on-disk checkpoints: deterministic crash recovery in
//! O(checkpoint interval), not O(run length).
//!
//! A checkpoint freezes one shard's complete round-boundary state — the
//! per-vertex protocol states (through the [`crate::Snapshot`] seam),
//! the pending inbox the next compute phase will consume, the sparse
//! per-edge CONGEST counters, and the accumulated run statistics — so a
//! relaunched worker can rejoin the fabric at the checkpoint round
//! instead of round 0. A round boundary is already a consistent cut
//! (every delivery of the previous round has been placed, nothing of
//! the next round has run), so no cross-shard coordination is needed
//! beyond writing at the same interval everywhere.
//!
//! # On-disk format
//!
//! One file per `(shard, round)`, named `ckpt-s{shard}-r{round:08}.ndk`,
//! all integers little-endian:
//!
//! ```text
//! offset  len  field
//!      0    4  magic `NDKP`
//!      4    1  format version (currently 1)
//!      5    3  reserved (zero)
//!      8    4  shard u32
//!     12    4  fabric shard count u32
//!     16    8  checkpoint round u64
//!     24    8  graph digest u64
//!     32    8  payload length u64
//!     40    n  payload (opaque to this header)
//!   40+n    4  digest u32 — the 4-lane [`LaneDigest`] over every
//!               preceding byte, zero-padded to a word boundary
//! ```
//!
//! The digest trails the payload, so a torn write (crash mid-`write`)
//! fails validation exactly like a flipped bit: the loader *skips* the
//! file with a typed reason and falls back to the next-older checkpoint
//! — or to nothing, which the caller treats as "start from round 0". A
//! checkpoint is never trusted, only verified.
//!
//! Writes are atomic: the file is assembled under a `.tmp` name in the
//! same directory and renamed into place, so a reader never observes a
//! half-written file under the checkpoint name. After each successful
//! write the shard's older checkpoints are pruned down to the newest
//! [`RETAIN_CHECKPOINTS`], keeping disk usage flat over arbitrarily
//! long runs while always leaving one fallback generation.

use std::fs;
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};

use crate::frame::LaneDigest;
use crate::shard::DeliveryShard;
use crate::{RoundStats, RunStats, Snapshot};

/// File magic: "NetDecomp KeePoint".
const MAGIC: [u8; 4] = *b"NDKP";

/// Current checkpoint format version.
const VERSION: u8 = 1;

/// Fixed header length (everything before the payload).
const HEADER_LEN: usize = 40;

/// Checkpoints kept per shard after a successful write: the newest,
/// plus one older generation to fall back to when the newest turns out
/// torn or corrupt.
pub const RETAIN_CHECKPOINTS: usize = 2;

/// One shard's round-boundary state, as carried by a checkpoint file.
///
/// The payload is opaque at this layer — the worker loop packs protocol
/// states, the pending inbox, and run statistics into it; this module
/// only guarantees the bytes come back intact (or not at all).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Checkpoint {
    /// The shard this state belongs to.
    pub shard: usize,
    /// The fabric's shard count when the checkpoint was taken.
    pub shards: usize,
    /// The round the state is a boundary of: every round `< round` has
    /// fully run, nothing of `round` has.
    pub round: u64,
    /// Digest of the graph the run executes over.
    pub graph_digest: u64,
    /// The opaque serialized state.
    pub payload: Vec<u8>,
}

/// Why the loader refused one checkpoint file — surfaced as a
/// `checkpoint_reject` flight-recorder event, never silently dropped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RejectedCheckpoint {
    /// The file that failed validation.
    pub path: PathBuf,
    /// The (static, greppable) validation step that failed.
    pub reason: &'static str,
}

/// The canonical file name of shard `shard`'s checkpoint at `round`.
#[must_use]
pub fn checkpoint_path(dir: &Path, shard: usize, round: u64) -> PathBuf {
    dir.join(format!("ckpt-s{shard}-r{round:08}.ndk"))
}

/// Serializes `ckpt` into the on-disk format (header + payload +
/// trailing digest).
#[must_use]
pub fn encode_checkpoint(ckpt: &Checkpoint) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + ckpt.payload.len() + 4);
    out.extend_from_slice(&MAGIC);
    out.push(VERSION);
    out.extend_from_slice(&[0; 3]);
    out.extend_from_slice(&(ckpt.shard as u32).to_le_bytes());
    out.extend_from_slice(&(ckpt.shards as u32).to_le_bytes());
    out.extend_from_slice(&ckpt.round.to_le_bytes());
    out.extend_from_slice(&ckpt.graph_digest.to_le_bytes());
    out.extend_from_slice(&(ckpt.payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&ckpt.payload);
    let mut digest = LaneDigest::new();
    digest.update_padded(&out);
    out.extend_from_slice(&digest.finish().to_le_bytes());
    out
}

/// Validates `data` as a checkpoint for `shard` of a `shards`-wide run
/// over the graph with `graph_digest`, taken at a round `<= max_round`.
///
/// # Errors
///
/// Returns the first validation step that failed, in check order:
/// structural (truncation, magic, version, digest) before semantic
/// (wrong shard / fabric shape / graph / round).
pub fn decode_checkpoint(
    data: &[u8],
    shard: usize,
    shards: usize,
    graph_digest: u64,
    max_round: u64,
) -> Result<Checkpoint, &'static str> {
    if data.len() < HEADER_LEN + 4 {
        return Err("truncated header");
    }
    if data[..4] != MAGIC {
        return Err("bad magic");
    }
    if data[4] != VERSION {
        return Err("unsupported version");
    }
    let le32 = |at: usize| u32::from_le_bytes(data[at..at + 4].try_into().expect("4 bytes"));
    let le64 = |at: usize| u64::from_le_bytes(data[at..at + 8].try_into().expect("8 bytes"));
    let payload_len = le64(32);
    let Some(expected) = (payload_len as usize)
        .checked_add(HEADER_LEN + 4)
        .filter(|&total| total == data.len())
    else {
        return Err("truncated payload");
    };
    let mut digest = LaneDigest::new();
    digest.update_padded(&data[..expected - 4]);
    if digest.finish() != le32(expected - 4) {
        return Err("digest mismatch");
    }
    if le32(8) as usize != shard {
        return Err("wrong shard");
    }
    if le32(12) as usize != shards {
        return Err("wrong fabric shape");
    }
    if le64(24) != graph_digest {
        return Err("wrong graph");
    }
    let round = le64(16);
    if round > max_round {
        return Err("round beyond run");
    }
    Ok(Checkpoint {
        shard,
        shards,
        round,
        graph_digest,
        payload: data[HEADER_LEN..expected - 4].to_vec(),
    })
}

/// Atomically writes `ckpt` into `dir` (temp file + rename, best-effort
/// fsync) and prunes the shard's older checkpoints down to the newest
/// [`RETAIN_CHECKPOINTS`]. Returns the final path.
///
/// # Errors
///
/// Propagates directory-creation, write, and rename failures; pruning
/// failures are swallowed (stale files only cost disk, never
/// correctness — the loader validates whatever it finds).
pub fn write_checkpoint(dir: &Path, ckpt: &Checkpoint) -> io::Result<PathBuf> {
    fs::create_dir_all(dir)?;
    let path = checkpoint_path(dir, ckpt.shard, ckpt.round);
    let tmp = path.with_extension("ndk.tmp");
    let encoded = encode_checkpoint(ckpt);
    {
        let mut file = fs::File::create(&tmp)?;
        file.write_all(&encoded)?;
        let _ = file.sync_all();
    }
    fs::rename(&tmp, &path)?;
    for (_, old) in shard_files(dir, ckpt.shard)
        .into_iter()
        .skip(RETAIN_CHECKPOINTS)
    {
        let _ = fs::remove_file(old);
    }
    Ok(path)
}

/// The shard's checkpoint files in `dir`, newest round first (by the
/// round embedded in the file name — the header round is re-validated
/// by the loader, the name only orders the scan).
fn shard_files(dir: &Path, shard: usize) -> Vec<(u64, PathBuf)> {
    let prefix = format!("ckpt-s{shard}-r");
    let mut files: Vec<(u64, PathBuf)> = fs::read_dir(dir)
        .into_iter()
        .flatten()
        .flatten()
        .filter_map(|entry| {
            let name = entry.file_name().into_string().ok()?;
            let round: u64 = name
                .strip_prefix(&prefix)?
                .strip_suffix(".ndk")?
                .parse()
                .ok()?;
            Some((round, entry.path()))
        })
        .collect();
    files.sort_by(|a, b| b.cmp(a));
    files
}

/// Loads the newest checkpoint in `dir` that validates for this shard,
/// fabric shape, graph, and run length, skipping (never trusting) every
/// torn or corrupt file on the way down. Returns the winner — `None`
/// means "no usable checkpoint, start from round 0" — plus one
/// [`RejectedCheckpoint`] per file that failed, for the flight record.
#[must_use]
pub fn load_newest_checkpoint(
    dir: &Path,
    shard: usize,
    shards: usize,
    graph_digest: u64,
    max_round: u64,
) -> (Option<Checkpoint>, Vec<RejectedCheckpoint>) {
    let mut rejected = Vec::new();
    for (_, path) in shard_files(dir, shard) {
        let data = match fs::read(&path) {
            Ok(data) => data,
            Err(_) => {
                rejected.push(RejectedCheckpoint {
                    path,
                    reason: "unreadable file",
                });
                continue;
            }
        };
        match decode_checkpoint(&data, shard, shards, graph_digest, max_round) {
            Ok(ckpt) => return (Some(ckpt), rejected),
            Err(reason) => rejected.push(RejectedCheckpoint { path, reason }),
        }
    }
    (None, rejected)
}

// ---------------------------------------------------------------------
// Payload codec: the worker-loop state packed inside a checkpoint.
// ---------------------------------------------------------------------

/// Appends `v` little-endian.
pub(crate) fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a length-prefixed byte run.
pub(crate) fn put_bytes(out: &mut Vec<u8>, bytes: &[u8]) {
    put_u64(out, bytes.len() as u64);
    out.extend_from_slice(bytes);
}

/// A bounds-checked little-endian reader over untrusted bytes: every
/// accessor returns `None` instead of panicking past the end.
#[derive(Debug)]
pub(crate) struct ByteReader<'a> {
    data: &'a [u8],
}

impl<'a> ByteReader<'a> {
    pub(crate) fn new(data: &'a [u8]) -> Self {
        ByteReader { data }
    }

    pub(crate) fn u64(&mut self) -> Option<u64> {
        let (head, rest) = self.data.split_first_chunk::<8>()?;
        self.data = rest;
        Some(u64::from_le_bytes(*head))
    }

    /// A length-prefixed byte run (the [`put_bytes`] inverse).
    pub(crate) fn bytes(&mut self) -> Option<&'a [u8]> {
        let len = usize::try_from(self.u64()?).ok()?;
        if len > self.data.len() {
            return None;
        }
        let (head, rest) = self.data.split_at(len);
        self.data = rest;
        Some(head)
    }

    /// Bytes not yet consumed.
    pub(crate) fn remaining(&self) -> usize {
        self.data.len()
    }

    pub(crate) fn is_exhausted(&self) -> bool {
        self.data.is_empty()
    }
}

fn encode_run_stats(out: &mut Vec<u8>, stats: &RunStats) {
    put_u64(out, stats.rounds as u64);
    put_u64(out, stats.total_messages as u64);
    put_u64(out, stats.total_bytes as u64);
    put_u64(out, stats.max_edge_bytes as u64);
    put_u64(out, stats.per_round.len() as u64);
    for r in &stats.per_round {
        put_u64(out, r.round as u64);
        put_u64(out, r.messages as u64);
        put_u64(out, r.bytes as u64);
        put_u64(out, r.max_edge_bytes as u64);
    }
}

fn decode_run_stats(r: &mut ByteReader<'_>) -> Option<RunStats> {
    let to_usize = |v: u64| usize::try_from(v).ok();
    let mut stats = RunStats {
        rounds: to_usize(r.u64()?)?,
        total_messages: to_usize(r.u64()?)?,
        total_bytes: to_usize(r.u64()?)?,
        max_edge_bytes: to_usize(r.u64()?)?,
        per_round: Vec::new(),
    };
    let entries = to_usize(r.u64()?)?;
    // Each entry consumes 32 bytes; an absurd count can't be genuine.
    if entries > r.remaining() / 32 {
        return None;
    }
    stats.per_round.reserve(entries);
    for _ in 0..entries {
        stats.per_round.push(RoundStats {
            round: to_usize(r.u64()?)?,
            messages: to_usize(r.u64()?)?,
            bytes: to_usize(r.u64()?)?,
            max_edge_bytes: to_usize(r.u64()?)?,
        });
    }
    Some(stats)
}

/// Packs one shard's round-boundary state — every node's
/// [`Snapshot::save_state`], the pending inbox + CONGEST counters, and
/// the accumulated run statistics — into a checkpoint payload.
pub(crate) fn encode_worker_payload<P: Snapshot>(
    nodes: &[P],
    shard: &DeliveryShard,
    stats: &RunStats,
) -> Vec<u8> {
    let mut out = Vec::new();
    put_u64(&mut out, nodes.len() as u64);
    for node in nodes {
        put_bytes(&mut out, &node.save_state());
    }
    shard.save_delivery(&mut out);
    encode_run_stats(&mut out, stats);
    out
}

/// The [`encode_worker_payload`] inverse: overlays a checkpoint payload
/// onto freshly built nodes and their delivery shard, and replaces
/// `stats` with the checkpointed accumulation. Returns `false` (state
/// unspecified but memory-safe) on any malformed section — the caller
/// falls back to running from round 0.
pub(crate) fn decode_worker_payload<P: Snapshot>(
    payload: &[u8],
    nodes: &mut [P],
    shard: &mut DeliveryShard,
    stats: &mut RunStats,
) -> bool {
    let mut r = ByteReader::new(payload);
    let Some(count) = r.u64() else {
        return false;
    };
    if count as usize != nodes.len() {
        return false;
    }
    for node in nodes.iter_mut() {
        let Some(state) = r.bytes() else {
            return false;
        };
        if !node.load_state(state) {
            return false;
        }
    }
    if !shard.restore_delivery(&mut r) {
        return false;
    }
    let Some(restored) = decode_run_stats(&mut r) else {
        return false;
    };
    *stats = restored;
    r.is_exhausted()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(round: u64) -> Checkpoint {
        Checkpoint {
            shard: 1,
            shards: 3,
            round,
            graph_digest: 0xfeed_beef,
            payload: (0..=200u8).collect(),
        }
    }

    #[test]
    fn a_checkpoint_round_trips_through_the_wire_format() {
        let ckpt = sample(7);
        let encoded = encode_checkpoint(&ckpt);
        let decoded = decode_checkpoint(&encoded, 1, 3, 0xfeed_beef, 100).unwrap();
        assert_eq!(decoded, ckpt);
    }

    #[test]
    fn every_semantic_mismatch_is_a_named_rejection() {
        let encoded = encode_checkpoint(&sample(7));
        let cases = [
            (
                decode_checkpoint(&encoded, 2, 3, 0xfeed_beef, 100),
                "wrong shard",
            ),
            (
                decode_checkpoint(&encoded, 1, 4, 0xfeed_beef, 100),
                "wrong fabric shape",
            ),
            (
                decode_checkpoint(&encoded, 1, 3, 0xdead, 100),
                "wrong graph",
            ),
            (
                decode_checkpoint(&encoded, 1, 3, 0xfeed_beef, 6),
                "round beyond run",
            ),
        ];
        for (result, reason) in cases {
            assert_eq!(result.unwrap_err(), reason);
        }
    }

    #[test]
    fn corruption_and_truncation_never_survive_validation() {
        let encoded = encode_checkpoint(&sample(7));
        // Any single flipped bit anywhere in the file fails the digest
        // (or an earlier structural check) — sampled across the file.
        for at in (0..encoded.len()).step_by(7) {
            let mut bad = encoded.clone();
            bad[at] ^= 0x10;
            assert!(
                decode_checkpoint(&bad, 1, 3, 0xfeed_beef, 100).is_err(),
                "flip at {at} must be rejected"
            );
        }
        // A torn write (any prefix) is structurally rejected.
        for cut in [0, 3, HEADER_LEN - 1, HEADER_LEN + 4, encoded.len() - 1] {
            assert!(
                decode_checkpoint(&encoded[..cut], 1, 3, 0xfeed_beef, 100).is_err(),
                "cut at {cut} must be rejected"
            );
        }
    }

    #[test]
    fn the_loader_skips_torn_files_and_falls_back_to_the_previous_round() {
        let dir = std::env::temp_dir().join(format!("ndk-ckpt-fallback-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        write_checkpoint(&dir, &sample(4)).unwrap();
        write_checkpoint(&dir, &sample(8)).unwrap();
        // Tear the newest file the way a crash mid-write would.
        let newest = checkpoint_path(&dir, 1, 8);
        let full = fs::read(&newest).unwrap();
        fs::write(&newest, &full[..full.len() / 2]).unwrap();
        let (found, rejected) = load_newest_checkpoint(&dir, 1, 3, 0xfeed_beef, 100);
        assert_eq!(found.unwrap().round, 4, "must fall back to the older round");
        assert_eq!(rejected.len(), 1);
        assert_eq!(rejected[0].path, newest);
        assert_eq!(rejected[0].reason, "truncated payload");
        // With the fallback corrupted too, the loader reports round 0.
        let older = checkpoint_path(&dir, 1, 4);
        let mut bytes = fs::read(&older).unwrap();
        let at = bytes.len() - 2;
        bytes[at] ^= 0xff;
        fs::write(&older, &bytes).unwrap();
        let (found, rejected) = load_newest_checkpoint(&dir, 1, 3, 0xfeed_beef, 100);
        assert!(found.is_none());
        assert_eq!(rejected.len(), 2);
        assert_eq!(rejected[1].reason, "digest mismatch");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn writes_are_renamed_into_place_and_pruned_to_the_retention_limit() {
        let dir = std::env::temp_dir().join(format!("ndk-ckpt-retain-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        for round in [3, 6, 9, 12] {
            let path = write_checkpoint(&dir, &sample(round)).unwrap();
            assert_eq!(path, checkpoint_path(&dir, 1, round));
            assert!(path.exists());
        }
        let names: Vec<u64> = shard_files(&dir, 1).into_iter().map(|(r, _)| r).collect();
        assert_eq!(names, vec![12, 9], "only the newest two generations remain");
        // No temp file leaks past a successful write.
        assert!(fs::read_dir(&dir)
            .unwrap()
            .flatten()
            .all(|e| e.file_name().to_string_lossy().ends_with(".ndk")));
        // Another shard's files are invisible to this shard's scan.
        write_checkpoint(
            &dir,
            &Checkpoint {
                shard: 0,
                ..sample(5)
            },
        )
        .unwrap();
        assert_eq!(shard_files(&dir, 1).len(), 2);
        let (found, rejected) = load_newest_checkpoint(&dir, 1, 3, 0xfeed_beef, 100);
        assert_eq!(found.unwrap().round, 12);
        assert!(rejected.is_empty());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn the_byte_reader_refuses_overruns() {
        let mut out = Vec::new();
        put_u64(&mut out, 3);
        put_bytes(&mut out, b"abc");
        let mut r = ByteReader::new(&out);
        assert_eq!(r.u64(), Some(3));
        assert_eq!(r.bytes(), Some(&b"abc"[..]));
        assert!(r.is_exhausted());
        assert_eq!(r.u64(), None);
        // A length prefix past the end is refused, not sliced.
        let mut lying = Vec::new();
        put_u64(&mut lying, 1000);
        lying.extend_from_slice(b"short");
        assert_eq!(ByteReader::new(&lying).bytes(), None);
    }
}

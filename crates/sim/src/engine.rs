//! The synchronous round engine.

use netdecomp_graph::{Graph, VertexId};

use crate::{CongestLimit, Incoming, Outgoing, Recipient, RoundStats, RunStats, SimError};

/// Read-only view a node gets of its place in the network.
///
/// A node knows its own id, its degree, and the ids of its neighbors —
/// nothing else about the topology, matching the initial knowledge of the
/// distributed model.
#[derive(Debug)]
pub struct Ctx<'a> {
    /// This node's vertex id.
    pub id: VertexId,
    /// Total number of nodes `n` (the model assumes `n`, or an upper bound
    /// on it, is global knowledge).
    pub n: usize,
    graph: &'a Graph,
}

impl Ctx<'_> {
    /// The ids of this node's neighbors.
    #[must_use]
    pub fn neighbors(&self) -> &[VertexId] {
        self.graph.neighbors(self.id)
    }

    /// This node's degree.
    #[must_use]
    pub fn degree(&self) -> usize {
        self.graph.degree(self.id)
    }
}

/// A per-node state machine executed by the [`Simulator`].
///
/// The engine drives each node through `start` (round 0, before any message
/// is delivered) and then `round` once per subsequent round with the messages
/// sent to it in the previous round.
pub trait Protocol {
    /// Called once at round 0; returns the node's initial messages.
    fn start(&mut self, ctx: &Ctx<'_>) -> Vec<Outgoing>;

    /// Called every round ≥ 1 with the messages delivered this round.
    fn round(&mut self, ctx: &Ctx<'_>, incoming: &[Incoming]) -> Vec<Outgoing>;

    /// `true` once this node has locally terminated. A halted node still
    /// receives messages (and may un-halt by returning messages again).
    fn is_halted(&self) -> bool {
        false
    }
}

/// Synchronous simulator executing one [`Protocol`] instance per vertex.
///
/// See the crate-level documentation for a complete example.
#[derive(Debug)]
pub struct Simulator<'g, P> {
    graph: &'g Graph,
    nodes: Vec<P>,
    /// Messages queued for delivery at the next round, per recipient.
    inboxes: Vec<Vec<Incoming>>,
    limit: CongestLimit,
    stats: RunStats,
    round: usize,
    started: bool,
}

impl<'g, P: Protocol> Simulator<'g, P> {
    /// Creates a simulator over `graph`, instantiating each node's protocol
    /// with `make_node`.
    pub fn new<F>(graph: &'g Graph, mut make_node: F) -> Self
    where
        F: FnMut(VertexId, &Ctx<'_>) -> P,
    {
        let n = graph.vertex_count();
        let nodes = (0..n)
            .map(|id| {
                let ctx = Ctx { id, n, graph };
                make_node(id, &ctx)
            })
            .collect();
        Simulator {
            graph,
            nodes,
            inboxes: vec![Vec::new(); n],
            limit: CongestLimit::Unlimited,
            stats: RunStats::default(),
            round: 0,
            started: false,
        }
    }

    /// Sets the per-edge byte budget (CONGEST enforcement). Builder-style.
    #[must_use]
    pub fn with_limit(mut self, limit: CongestLimit) -> Self {
        self.limit = limit;
        self
    }

    /// The underlying graph.
    #[must_use]
    pub fn graph(&self) -> &Graph {
        self.graph
    }

    /// Immutable access to all node states (index = vertex id).
    #[must_use]
    pub fn nodes(&self) -> &[P] {
        &self.nodes
    }

    /// Mutable access to all node states, for drivers that reconfigure nodes
    /// between protocol phases.
    pub fn nodes_mut(&mut self) -> &mut [P] {
        &mut self.nodes
    }

    /// Statistics accumulated so far.
    #[must_use]
    pub fn stats(&self) -> &RunStats {
        &self.stats
    }

    /// Number of rounds executed so far.
    #[must_use]
    pub fn rounds_executed(&self) -> usize {
        self.round
    }

    /// `true` when all nodes are halted and no message is in flight.
    #[must_use]
    pub fn is_quiescent(&self) -> bool {
        self.nodes.iter().all(Protocol::is_halted)
            && self.inboxes.iter().all(Vec::is_empty)
    }

    /// Executes one synchronous round: deliver queued messages, let every
    /// node compute, queue its outgoing messages for the next round.
    ///
    /// # Errors
    ///
    /// [`SimError::NotNeighbor`] if a node unicasts to a non-neighbor;
    /// [`SimError::CongestViolation`] if an edge's byte budget is exceeded.
    pub fn step(&mut self) -> Result<RoundStats, SimError> {
        let n = self.graph.vertex_count();
        let mut outboxes: Vec<Vec<Outgoing>> = Vec::with_capacity(n);
        // Deliver and compute.
        for id in 0..n {
            let ctx = Ctx {
                id,
                n,
                graph: self.graph,
            };
            let out = if self.started {
                let incoming = std::mem::take(&mut self.inboxes[id]);
                self.nodes[id].round(&ctx, &incoming)
            } else {
                self.nodes[id].start(&ctx)
            };
            outboxes.push(out);
        }
        self.started = true;

        // Queue for next round, accounting per directed edge.
        let mut round_stats = RoundStats {
            round: self.round,
            ..RoundStats::default()
        };
        for (from, out) in outboxes.into_iter().enumerate() {
            // Per-edge byte accounting for this sender this round.
            let mut per_target: std::collections::HashMap<VertexId, usize> =
                std::collections::HashMap::new();
            for msg in out {
                match msg.to {
                    Recipient::Neighbor(to) => {
                        if !self.graph.has_edge(from, to) {
                            return Err(SimError::NotNeighbor { from, to });
                        }
                        self.deliver(from, to, &msg.payload, &mut round_stats, &mut per_target)?;
                    }
                    Recipient::AllNeighbors => {
                        for i in 0..self.graph.degree(from) {
                            let to = self.graph.neighbors(from)[i];
                            self.deliver(
                                from,
                                to,
                                &msg.payload,
                                &mut round_stats,
                                &mut per_target,
                            )?;
                        }
                    }
                }
            }
        }
        self.round += 1;
        self.stats.absorb(round_stats);
        Ok(round_stats)
    }

    fn deliver(
        &mut self,
        from: VertexId,
        to: VertexId,
        payload: &bytes::Bytes,
        round_stats: &mut RoundStats,
        per_target: &mut std::collections::HashMap<VertexId, usize>,
    ) -> Result<(), SimError> {
        let edge_bytes = per_target.entry(to).or_insert(0);
        *edge_bytes += payload.len();
        if let CongestLimit::PerEdgeBytes(limit) = self.limit {
            if *edge_bytes > limit {
                return Err(SimError::CongestViolation {
                    from,
                    to,
                    bytes: *edge_bytes,
                    limit,
                    round: self.round,
                });
            }
        }
        round_stats.messages += 1;
        round_stats.bytes += payload.len();
        round_stats.max_edge_bytes = round_stats.max_edge_bytes.max(*edge_bytes);
        self.inboxes[to].push(Incoming {
            from,
            payload: payload.clone(),
        });
        Ok(())
    }

    /// Runs exactly `rounds` rounds.
    ///
    /// # Errors
    ///
    /// Propagates the first [`SimError`] from [`Simulator::step`].
    pub fn run_rounds(&mut self, rounds: usize) -> Result<RunStats, SimError> {
        let mut run = RunStats::default();
        for _ in 0..rounds {
            run.absorb(self.step()?);
        }
        Ok(run)
    }

    /// Runs until every node halts and no message is in flight, up to
    /// `max_rounds`.
    ///
    /// # Errors
    ///
    /// [`SimError::RoundLimitExceeded`] if quiescence is not reached within
    /// the budget; otherwise propagates [`Simulator::step`] errors.
    pub fn run_to_quiescence(&mut self, max_rounds: usize) -> Result<RunStats, SimError> {
        let mut run = RunStats::default();
        for _ in 0..max_rounds {
            run.absorb(self.step()?);
            if self.is_quiescent() {
                return Ok(run);
            }
        }
        if self.is_quiescent() {
            Ok(run)
        } else {
            Err(SimError::RoundLimitExceeded { limit: max_rounds })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use netdecomp_graph::generators;

    /// Every node floods a token once; distance of first receipt is recorded.
    struct FloodDist {
        dist: Option<usize>,
        rounds_seen: usize,
    }

    impl Protocol for FloodDist {
        fn start(&mut self, ctx: &Ctx<'_>) -> Vec<Outgoing> {
            if ctx.id == 0 {
                self.dist = Some(0);
                vec![Outgoing::broadcast(Bytes::from_static(b"t"))]
            } else {
                Vec::new()
            }
        }

        fn round(&mut self, _ctx: &Ctx<'_>, incoming: &[Incoming]) -> Vec<Outgoing> {
            self.rounds_seen += 1;
            if self.dist.is_none() && !incoming.is_empty() {
                self.dist = Some(self.rounds_seen);
                return vec![Outgoing::broadcast(Bytes::from_static(b"t"))];
            }
            Vec::new()
        }

        fn is_halted(&self) -> bool {
            self.dist.is_some()
        }
    }

    fn flood(g: &netdecomp_graph::Graph) -> Vec<Option<usize>> {
        let mut sim = Simulator::new(g, |_, _| FloodDist {
            dist: None,
            rounds_seen: 0,
        });
        // Flooding cannot take more rounds than n.
        let _ = sim.run_to_quiescence(g.vertex_count() + 2);
        sim.nodes().iter().map(|n| n.dist).collect()
    }

    #[test]
    fn flooding_computes_bfs_distances() {
        for g in [
            generators::path(8),
            generators::cycle(9),
            generators::grid2d(4, 5),
            generators::star(6),
        ] {
            let from_flood = flood(&g);
            let from_bfs = netdecomp_graph::bfs::distances(&g, 0);
            assert_eq!(from_flood, from_bfs);
        }
    }

    #[test]
    fn disconnected_nodes_stay_unreached_and_run_hits_limit() {
        let g = netdecomp_graph::Graph::from_edges(3, &[(0, 1)]).unwrap();
        let mut sim = Simulator::new(&g, |_, _| FloodDist {
            dist: None,
            rounds_seen: 0,
        });
        // Node 2 never halts -> quiescence unreachable.
        let err = sim.run_to_quiescence(5).unwrap_err();
        assert_eq!(err, SimError::RoundLimitExceeded { limit: 5 });
        assert_eq!(sim.nodes()[2].dist, None);
    }

    #[test]
    fn stats_count_messages_and_bytes() {
        let g = generators::path(3);
        let mut sim = Simulator::new(&g, |_, _| FloodDist {
            dist: None,
            rounds_seen: 0,
        });
        let run = sim.run_to_quiescence(10).unwrap();
        // Round 0: node 0 broadcasts to 1 neighbor. Round 1: node 1
        // broadcasts to 2 neighbors. Round 2: node 2 broadcasts to 1.
        assert_eq!(run.total_messages, 1 + 2 + 1);
        assert_eq!(run.total_bytes, 4);
        assert_eq!(run.max_edge_bytes, 1);
    }

    struct Shout {
        payload: usize,
    }

    impl Protocol for Shout {
        fn start(&mut self, _ctx: &Ctx<'_>) -> Vec<Outgoing> {
            vec![Outgoing::broadcast(Bytes::from(vec![0u8; self.payload]))]
        }
        fn round(&mut self, _ctx: &Ctx<'_>, _incoming: &[Incoming]) -> Vec<Outgoing> {
            Vec::new()
        }
        fn is_halted(&self) -> bool {
            true
        }
    }

    #[test]
    fn congest_limit_enforced() {
        let g = generators::path(2);
        let mut sim =
            Simulator::new(&g, |_, _| Shout { payload: 17 }).with_limit(CongestLimit::PerEdgeBytes(16));
        let err = sim.step().unwrap_err();
        assert!(matches!(err, SimError::CongestViolation { bytes: 17, limit: 16, .. }));
    }

    #[test]
    fn congest_limit_allows_exact_budget() {
        let g = generators::path(2);
        let mut sim =
            Simulator::new(&g, |_, _| Shout { payload: 16 }).with_limit(CongestLimit::PerEdgeBytes(16));
        assert!(sim.step().is_ok());
    }

    struct BadAddress;

    impl Protocol for BadAddress {
        fn start(&mut self, ctx: &Ctx<'_>) -> Vec<Outgoing> {
            if ctx.id == 0 {
                vec![Outgoing::unicast(2, Bytes::new())] // 2 is not a neighbor of 0
            } else {
                Vec::new()
            }
        }
        fn round(&mut self, _ctx: &Ctx<'_>, _incoming: &[Incoming]) -> Vec<Outgoing> {
            Vec::new()
        }
    }

    #[test]
    fn unicast_to_non_neighbor_is_rejected() {
        let g = generators::path(3); // 0-1-2
        let mut sim = Simulator::new(&g, |_, _| BadAddress);
        assert_eq!(
            sim.step().unwrap_err(),
            SimError::NotNeighbor { from: 0, to: 2 }
        );
    }

    #[test]
    fn two_unicasts_on_one_edge_share_budget() {
        struct TwoMessages;
        impl Protocol for TwoMessages {
            fn start(&mut self, ctx: &Ctx<'_>) -> Vec<Outgoing> {
                if ctx.id == 0 {
                    vec![
                        Outgoing::unicast(1, Bytes::from(vec![0u8; 10])),
                        Outgoing::unicast(1, Bytes::from(vec![0u8; 10])),
                    ]
                } else {
                    Vec::new()
                }
            }
            fn round(&mut self, _: &Ctx<'_>, _: &[Incoming]) -> Vec<Outgoing> {
                Vec::new()
            }
            fn is_halted(&self) -> bool {
                true
            }
        }
        let g = generators::path(2);
        let mut sim =
            Simulator::new(&g, |_, _| TwoMessages).with_limit(CongestLimit::PerEdgeBytes(16));
        let err = sim.step().unwrap_err();
        assert!(matches!(err, SimError::CongestViolation { bytes: 20, .. }));
    }

    #[test]
    fn run_rounds_executes_exact_count() {
        let g = generators::cycle(5);
        let mut sim = Simulator::new(&g, |_, _| FloodDist {
            dist: None,
            rounds_seen: 0,
        });
        let run = sim.run_rounds(3).unwrap();
        assert_eq!(run.rounds, 3);
        assert_eq!(sim.rounds_executed(), 3);
    }

    #[test]
    fn ctx_exposes_neighbors() {
        let g = generators::star(4);
        let sim = Simulator::new(&g, |id, ctx| {
            if id == 0 {
                assert_eq!(ctx.degree(), 3);
                assert_eq!(ctx.neighbors(), &[1, 2, 3]);
            } else {
                assert_eq!(ctx.degree(), 1);
            }
            assert_eq!(ctx.n, 4);
            Shout { payload: 0 }
        });
        assert_eq!(sim.graph().vertex_count(), 4);
        assert!(!sim.is_quiescent() || sim.nodes().len() == 4);
    }
}

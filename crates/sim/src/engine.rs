//! The synchronous round engine: parallel compute, sequential merge.
//!
//! Each [`Simulator::step`] runs two phases:
//!
//! 1. **Compute** — every node consumes its delivered messages and fills
//!    its preallocated [`Outbox`]. Nodes are independent within a round,
//!    so with [`Engine::Parallel`] this phase runs `par_iter_mut` over the
//!    node array; each node touches only its own state and outbox slot.
//! 2. **Deliver (sequential merge)** — outboxes are merged in sender-id
//!    order into one flat, CSR-aligned inbox buffer, with CONGEST byte
//!    accounting kept in a flat `Vec<usize>` indexed by the graph's
//!    directed-edge slots ([`netdecomp_graph::Graph::edge_slot`]). Payloads
//!    are reference-counted [`bytes::Bytes`], so a broadcast is encoded
//!    once and never copied per recipient.
//!
//! Because the merge order is fixed (sender id, then send order, then
//! adjacency order for broadcasts), the engine is deterministic regardless
//! of how the compute phase is scheduled; [`Determinism::Verify`] checks
//! this per round against a sequential reference execution.

use netdecomp_graph::{Graph, VertexId};
use rayon::prelude::*;

use crate::{CongestLimit, Incoming, Outbox, Recipient, RoundStats, RunStats, SimError};

/// Read-only view a node gets of its place in the network.
///
/// A node knows its own id, its degree, and the ids of its neighbors —
/// nothing else about the topology, matching the initial knowledge of the
/// distributed model.
#[derive(Debug)]
pub struct Ctx<'a> {
    /// This node's vertex id.
    pub id: VertexId,
    /// Total number of nodes `n` (the model assumes `n`, or an upper bound
    /// on it, is global knowledge).
    pub n: usize,
    graph: &'a Graph,
}

impl Ctx<'_> {
    /// The ids of this node's neighbors.
    #[must_use]
    pub fn neighbors(&self) -> &[VertexId] {
        self.graph.neighbors(self.id)
    }

    /// This node's degree.
    #[must_use]
    pub fn degree(&self) -> usize {
        self.graph.degree(self.id)
    }
}

/// A per-node state machine executed by the [`Simulator`].
///
/// The engine drives each node through `start` (round 0, before any message
/// is delivered) and then `round` once per subsequent round with the messages
/// sent to it in the previous round. Outgoing messages go into the node's
/// preallocated [`Outbox`].
///
/// Implementations must be deterministic functions of `(state, incoming)`:
/// the compute phase may run nodes on any thread in any order within a
/// round. [`Determinism::Verify`] can check this at runtime.
pub trait Protocol {
    /// Called once at round 0; queues the node's initial messages.
    fn start(&mut self, ctx: &Ctx<'_>, out: &mut Outbox);

    /// Called every round ≥ 1 with the messages delivered this round.
    /// Messages arrive ordered by sender id (ties: sender's send order).
    fn round(&mut self, ctx: &Ctx<'_>, incoming: &[Incoming], out: &mut Outbox);

    /// `true` once this node has locally terminated. A halted node still
    /// receives messages (and may un-halt by returning messages again).
    fn is_halted(&self) -> bool {
        false
    }
}

/// How the compute phase is scheduled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Engine {
    /// One node at a time, in id order, on the calling thread.
    #[default]
    Sequential,
    /// Nodes split across threads (`0` = use all available). Delivery is
    /// still a sequential merge, so results are bit-identical to
    /// [`Engine::Sequential`] for any deterministic protocol.
    Parallel {
        /// Worker thread count; `0` picks the machine's parallelism.
        threads: usize,
    },
}

/// Whether to double-check parallel compute against a sequential reference.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Determinism {
    /// Trust the protocol to be deterministic (no overhead).
    #[default]
    Trust,
    /// Re-run each round's compute phase sequentially on cloned nodes and
    /// require bit-identical outboxes ([`SimError::Nondeterminism`]
    /// otherwise). Roughly doubles compute cost; meant for tests.
    Verify,
}

/// Synchronous simulator executing one [`Protocol`] instance per vertex.
///
/// See the crate-level documentation for a complete example.
#[derive(Debug)]
pub struct Simulator<'g, P> {
    graph: &'g Graph,
    nodes: Vec<P>,
    /// One preallocated outbox per node, reused across rounds.
    outboxes: Vec<Outbox>,
    /// Messages pending delivery, grouped by recipient (CSR layout with
    /// [`Simulator::inbox_offsets`]).
    inbox_data: Vec<Incoming>,
    /// `n + 1` offsets into [`Simulator::inbox_data`].
    inbox_offsets: Vec<usize>,
    /// Per-directed-edge bytes sent this round, indexed by edge slot.
    edge_bytes: Vec<usize>,
    /// Edge slots dirtied this round (sparse reset of `edge_bytes`).
    touched: Vec<usize>,
    /// Scratch: per-recipient counts, then scatter cursors.
    scratch: Vec<usize>,
    limit: CongestLimit,
    engine: Engine,
    /// Worker pool backing [`Engine::Parallel`], built once in
    /// [`Simulator::with_engine`] rather than per round.
    pool: Option<rayon::ThreadPool>,
    stats: RunStats,
    round: usize,
    started: bool,
}

/// Runs the compute phase for one round over split-out simulator fields
/// (also used by verified stepping to drive a cloned reference, which
/// passes `pool: None` for the sequential path).
fn compute_phase<P: Protocol + Send>(
    graph: &Graph,
    started: bool,
    inbox_data: &[Incoming],
    inbox_offsets: &[usize],
    nodes: &mut [P],
    outboxes: &mut [Outbox],
    pool: Option<&rayon::ThreadPool>,
) {
    let n = graph.vertex_count();
    let run_node = |id: usize, node: &mut P, out: &mut Outbox| {
        out.clear();
        let ctx = Ctx { id, n, graph };
        if started {
            let incoming = &inbox_data[inbox_offsets[id]..inbox_offsets[id + 1]];
            node.round(&ctx, incoming, out);
        } else {
            node.start(&ctx, out);
        }
    };
    match pool {
        None => {
            for (id, (node, out)) in nodes.iter_mut().zip(outboxes.iter_mut()).enumerate() {
                run_node(id, node, out);
            }
        }
        Some(pool) => pool.install(|| {
            nodes
                .par_iter_mut()
                .zip(outboxes.par_iter_mut())
                .enumerate()
                .for_each(|(id, (node, out))| run_node(id, node, out));
        }),
    }
}

/// Accounts one delivered message on a directed-edge slot.
#[allow(clippy::too_many_arguments)]
fn account(
    edge_bytes: &mut [usize],
    touched: &mut Vec<usize>,
    limit: CongestLimit,
    round: usize,
    slot: usize,
    from: VertexId,
    to: VertexId,
    len: usize,
    stats: &mut RoundStats,
) -> Result<(), SimError> {
    let bytes = &mut edge_bytes[slot];
    if *bytes == 0 {
        touched.push(slot);
    }
    *bytes += len;
    if let CongestLimit::PerEdgeBytes(limit) = limit {
        if *bytes > limit {
            return Err(SimError::CongestViolation {
                from,
                to,
                bytes: *bytes,
                limit,
                round,
            });
        }
    }
    stats.messages += 1;
    stats.bytes += len;
    stats.max_edge_bytes = stats.max_edge_bytes.max(*bytes);
    Ok(())
}

impl<'g, P: Protocol> Simulator<'g, P> {
    /// Creates a simulator over `graph`, instantiating each node's protocol
    /// with `make_node`.
    pub fn new<F>(graph: &'g Graph, mut make_node: F) -> Self
    where
        F: FnMut(VertexId, &Ctx<'_>) -> P,
    {
        let n = graph.vertex_count();
        let nodes = (0..n)
            .map(|id| {
                let ctx = Ctx { id, n, graph };
                make_node(id, &ctx)
            })
            .collect();
        Simulator {
            graph,
            nodes,
            outboxes: vec![Outbox::new(); n],
            inbox_data: Vec::new(),
            inbox_offsets: vec![0; n + 1],
            edge_bytes: vec![0; graph.directed_edge_count()],
            touched: Vec::new(),
            scratch: vec![0; n],
            limit: CongestLimit::Unlimited,
            engine: Engine::Sequential,
            pool: None,
            stats: RunStats::default(),
            round: 0,
            started: false,
        }
    }

    /// Sets the per-edge byte budget (CONGEST enforcement). Builder-style.
    #[must_use]
    pub fn with_limit(mut self, limit: CongestLimit) -> Self {
        self.limit = limit;
        self
    }

    /// Selects the compute-phase scheduler. Builder-style.
    ///
    /// [`Engine::Parallel`] builds its worker-pool handle here, once, so
    /// per-step dispatch is just `pool.install`. Note the *vendored* rayon
    /// shim backing this workspace has no persistent workers — it spawns
    /// scoped threads inside each `for_each` — so per-round thread-spawn
    /// cost remains until a real pool lands (see ROADMAP "Open items");
    /// with the real rayon crate this hoisting makes stepping spawn-free.
    #[must_use]
    pub fn with_engine(mut self, engine: Engine) -> Self {
        self.engine = engine;
        self.pool = match engine {
            Engine::Sequential => None,
            Engine::Parallel { threads } => Some(
                rayon::ThreadPoolBuilder::new()
                    .num_threads(threads)
                    .build()
                    .expect("pool construction is infallible"),
            ),
        };
        self
    }

    /// The configured compute-phase scheduler.
    #[must_use]
    pub fn engine(&self) -> Engine {
        self.engine
    }

    /// The underlying graph.
    #[must_use]
    pub fn graph(&self) -> &Graph {
        self.graph
    }

    /// Immutable access to all node states (index = vertex id).
    #[must_use]
    pub fn nodes(&self) -> &[P] {
        &self.nodes
    }

    /// Mutable access to all node states, for drivers that reconfigure nodes
    /// between protocol phases.
    pub fn nodes_mut(&mut self) -> &mut [P] {
        &mut self.nodes
    }

    /// Statistics accumulated so far.
    #[must_use]
    pub fn stats(&self) -> &RunStats {
        &self.stats
    }

    /// Number of rounds executed so far.
    #[must_use]
    pub fn rounds_executed(&self) -> usize {
        self.round
    }

    /// `true` when all nodes are halted and no message is in flight.
    #[must_use]
    pub fn is_quiescent(&self) -> bool {
        self.nodes.iter().all(Protocol::is_halted) && self.inbox_data.is_empty()
    }

    /// Worker threads the configured [`Engine`] resolves to right now.
    fn thread_count(&self) -> usize {
        match self.engine {
            Engine::Sequential => 1,
            Engine::Parallel { threads: 0 } => rayon::current_num_threads(),
            Engine::Parallel { threads } => threads,
        }
    }

    /// Merges all outboxes into the flat inbox buffer for the next round,
    /// enforcing CONGEST budgets on the way.
    ///
    /// Two passes in sender-id order: (1) validate addressing, account
    /// per-edge bytes, count messages per recipient; (2) prefix-sum the
    /// counts into CSR offsets and scatter. Per-recipient message order is
    /// therefore (sender id, send order) — independent of compute-phase
    /// scheduling.
    fn deliver(&mut self) -> Result<RoundStats, SimError> {
        let n = self.graph.vertex_count();
        let mut round_stats = RoundStats {
            round: self.round,
            ..RoundStats::default()
        };

        // Sparse reset of the per-edge byte counters from last round.
        for &slot in &self.touched {
            self.edge_bytes[slot] = 0;
        }
        self.touched.clear();

        // Pass 1: validate + account + count.
        self.scratch.fill(0);
        for from in 0..n {
            for msg in self.outboxes[from].messages() {
                let len = msg.payload.len();
                match msg.to {
                    Recipient::Neighbor(to) => {
                        let slot = self
                            .graph
                            .edge_slot(from, to)
                            .ok_or(SimError::NotNeighbor { from, to })?;
                        account(
                            &mut self.edge_bytes,
                            &mut self.touched,
                            self.limit,
                            self.round,
                            slot,
                            from,
                            to,
                            len,
                            &mut round_stats,
                        )?;
                        self.scratch[to] += 1;
                    }
                    Recipient::AllNeighbors => {
                        for slot in self.graph.neighbor_slots(from) {
                            let to = self.graph.slot_target(slot);
                            account(
                                &mut self.edge_bytes,
                                &mut self.touched,
                                self.limit,
                                self.round,
                                slot,
                                from,
                                to,
                                len,
                                &mut round_stats,
                            )?;
                            self.scratch[to] += 1;
                        }
                    }
                }
            }
        }

        // Prefix sums: scratch (counts) -> inbox_offsets.
        self.inbox_offsets[0] = 0;
        for v in 0..n {
            self.inbox_offsets[v + 1] = self.inbox_offsets[v] + self.scratch[v];
        }
        let total = self.inbox_offsets[n];
        self.inbox_data.clear();
        self.inbox_data.resize(total, Incoming::default());

        // Pass 2: scatter, reusing scratch as per-recipient cursors.
        self.scratch.copy_from_slice(&self.inbox_offsets[..n]);
        for from in 0..n {
            for msg in self.outboxes[from].messages() {
                match msg.to {
                    Recipient::Neighbor(to) => {
                        let cursor = &mut self.scratch[to];
                        self.inbox_data[*cursor] = Incoming {
                            from,
                            payload: msg.payload.clone(),
                        };
                        *cursor += 1;
                    }
                    Recipient::AllNeighbors => {
                        for slot in self.graph.neighbor_slots(from) {
                            let to = self.graph.slot_target(slot);
                            let cursor = &mut self.scratch[to];
                            self.inbox_data[*cursor] = Incoming {
                                from,
                                payload: msg.payload.clone(),
                            };
                            *cursor += 1;
                        }
                    }
                }
            }
        }

        Ok(round_stats)
    }

    /// Commits one computed-and-delivered round.
    fn commit(&mut self, round_stats: RoundStats) -> RoundStats {
        self.round += 1;
        self.stats.absorb(round_stats);
        round_stats
    }
}

impl<P: Protocol + Send> Simulator<'_, P> {
    /// Executes one synchronous round: let every node compute (in parallel
    /// under [`Engine::Parallel`]), then merge and queue its outgoing
    /// messages for the next round.
    ///
    /// # Errors
    ///
    /// [`SimError::NotNeighbor`] if a node unicasts to a non-neighbor;
    /// [`SimError::CongestViolation`] if an edge's byte budget is exceeded.
    pub fn step(&mut self) -> Result<RoundStats, SimError> {
        compute_phase(
            self.graph,
            self.started,
            &self.inbox_data,
            &self.inbox_offsets,
            &mut self.nodes,
            &mut self.outboxes,
            self.pool.as_ref(),
        );
        self.started = true;
        let round_stats = self.deliver()?;
        Ok(self.commit(round_stats))
    }

    /// Runs exactly `rounds` rounds.
    ///
    /// # Errors
    ///
    /// Propagates the first [`SimError`] from [`Simulator::step`].
    pub fn run_rounds(&mut self, rounds: usize) -> Result<RunStats, SimError> {
        self.run_rounds_loop(rounds, |s| s.step())
    }

    /// Runs until every node halts and no message is in flight, up to
    /// `max_rounds`.
    ///
    /// # Errors
    ///
    /// [`SimError::RoundLimitExceeded`] if quiescence is not reached within
    /// the budget; otherwise propagates [`Simulator::step`] errors.
    pub fn run_to_quiescence(&mut self, max_rounds: usize) -> Result<RunStats, SimError> {
        self.run_quiescence_loop(max_rounds, |s| s.step())
    }

    /// Shared body of the fixed-round runners.
    fn run_rounds_loop(
        &mut self,
        rounds: usize,
        mut step: impl FnMut(&mut Self) -> Result<RoundStats, SimError>,
    ) -> Result<RunStats, SimError> {
        let mut run = RunStats::default();
        for _ in 0..rounds {
            run.absorb(step(self)?);
        }
        Ok(run)
    }

    /// Shared body of the run-to-quiescence runners.
    fn run_quiescence_loop(
        &mut self,
        max_rounds: usize,
        mut step: impl FnMut(&mut Self) -> Result<RoundStats, SimError>,
    ) -> Result<RunStats, SimError> {
        let mut run = RunStats::default();
        for _ in 0..max_rounds {
            run.absorb(step(self)?);
            if self.is_quiescent() {
                return Ok(run);
            }
        }
        // A zero budget asks for no work: succeed iff already quiescent.
        if max_rounds == 0 && self.is_quiescent() {
            return Ok(run);
        }
        Err(SimError::RoundLimitExceeded { limit: max_rounds })
    }
}

impl<P: Protocol + Send + Clone> Simulator<'_, P> {
    /// Like [`Simulator::step`], but under [`Engine::Parallel`] also runs
    /// the round's compute phase sequentially on cloned nodes and requires
    /// the two executions to produce bit-identical outboxes.
    ///
    /// # Errors
    ///
    /// [`SimError::Nondeterminism`] on divergence, plus everything
    /// [`Simulator::step`] can return.
    pub fn step_verified(&mut self) -> Result<RoundStats, SimError> {
        if self.thread_count() <= 1 {
            return self.step();
        }
        let mut reference_nodes = self.nodes.clone();
        let mut reference_outboxes = vec![Outbox::new(); self.nodes.len()];
        compute_phase(
            self.graph,
            self.started,
            &self.inbox_data,
            &self.inbox_offsets,
            &mut reference_nodes,
            &mut reference_outboxes,
            None,
        );
        compute_phase(
            self.graph,
            self.started,
            &self.inbox_data,
            &self.inbox_offsets,
            &mut self.nodes,
            &mut self.outboxes,
            self.pool.as_ref(),
        );
        self.started = true;
        if let Some(vertex) =
            (0..self.outboxes.len()).find(|&v| self.outboxes[v] != reference_outboxes[v])
        {
            return Err(SimError::Nondeterminism {
                round: self.round,
                vertex,
            });
        }
        let round_stats = self.deliver()?;
        Ok(self.commit(round_stats))
    }

    /// Runs exactly `rounds` rounds under the given [`Determinism`] mode.
    ///
    /// # Errors
    ///
    /// As [`Simulator::step_verified`].
    pub fn run_rounds_with(
        &mut self,
        rounds: usize,
        determinism: Determinism,
    ) -> Result<RunStats, SimError> {
        match determinism {
            Determinism::Trust => self.run_rounds(rounds),
            Determinism::Verify => self.run_rounds_loop(rounds, |s| s.step_verified()),
        }
    }

    /// Runs to quiescence under the given [`Determinism`] mode.
    ///
    /// # Errors
    ///
    /// As [`Simulator::run_to_quiescence`] and
    /// [`Simulator::step_verified`].
    pub fn run_to_quiescence_with(
        &mut self,
        max_rounds: usize,
        determinism: Determinism,
    ) -> Result<RunStats, SimError> {
        match determinism {
            Determinism::Trust => self.run_to_quiescence(max_rounds),
            Determinism::Verify => self.run_quiescence_loop(max_rounds, |s| s.step_verified()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use netdecomp_graph::generators;

    /// Every node floods a token once; distance of first receipt is recorded.
    #[derive(Debug, Clone, PartialEq, Eq)]
    struct FloodDist {
        dist: Option<usize>,
        rounds_seen: usize,
    }

    impl FloodDist {
        fn fresh() -> Self {
            FloodDist {
                dist: None,
                rounds_seen: 0,
            }
        }
    }

    impl Protocol for FloodDist {
        fn start(&mut self, ctx: &Ctx<'_>, out: &mut Outbox) {
            if ctx.id == 0 {
                self.dist = Some(0);
                out.broadcast(Bytes::from_static(b"t"));
            }
        }

        fn round(&mut self, _ctx: &Ctx<'_>, incoming: &[Incoming], out: &mut Outbox) {
            self.rounds_seen += 1;
            if self.dist.is_none() && !incoming.is_empty() {
                self.dist = Some(self.rounds_seen);
                out.broadcast(Bytes::from_static(b"t"));
            }
        }

        fn is_halted(&self) -> bool {
            self.dist.is_some()
        }
    }

    fn flood(g: &netdecomp_graph::Graph, engine: Engine) -> Vec<Option<usize>> {
        let mut sim = Simulator::new(g, |_, _| FloodDist::fresh()).with_engine(engine);
        // Flooding cannot take more rounds than n.
        let _ = sim.run_to_quiescence(g.vertex_count() + 2);
        sim.nodes().iter().map(|n| n.dist).collect()
    }

    #[test]
    fn flooding_computes_bfs_distances() {
        for g in [
            generators::path(8),
            generators::cycle(9),
            generators::grid2d(4, 5),
            generators::star(6),
        ] {
            let from_bfs = netdecomp_graph::bfs::distances(&g, 0);
            assert_eq!(flood(&g, Engine::Sequential), from_bfs);
            assert_eq!(flood(&g, Engine::Parallel { threads: 4 }), from_bfs);
        }
    }

    #[test]
    fn parallel_engine_matches_sequential_bit_for_bit() {
        let g = generators::grid2d(7, 9);
        let mut seq = Simulator::new(&g, |_, _| FloodDist::fresh());
        let mut par = Simulator::new(&g, |_, _| FloodDist::fresh())
            .with_engine(Engine::Parallel { threads: 3 });
        let a = seq.run_rounds(20).unwrap();
        let b = par.run_rounds(20).unwrap();
        assert_eq!(a, b);
        assert_eq!(seq.nodes(), par.nodes());
        assert_eq!(seq.stats(), par.stats());
    }

    #[test]
    fn verified_stepping_accepts_deterministic_protocols() {
        let g = generators::grid2d(5, 5);
        let mut sim = Simulator::new(&g, |_, _| FloodDist::fresh())
            .with_engine(Engine::Parallel { threads: 4 });
        let run = sim.run_to_quiescence_with(40, Determinism::Verify).unwrap();
        assert!(run.rounds > 0);
        assert!(sim.nodes().iter().all(|n| n.dist.is_some()));
    }

    #[test]
    fn disconnected_nodes_stay_unreached_and_run_hits_limit() {
        let g = netdecomp_graph::Graph::from_edges(3, &[(0, 1)]).unwrap();
        let mut sim = Simulator::new(&g, |_, _| FloodDist::fresh());
        // Node 2 never halts -> quiescence unreachable.
        let err = sim.run_to_quiescence(5).unwrap_err();
        assert_eq!(err, SimError::RoundLimitExceeded { limit: 5 });
        assert_eq!(sim.nodes()[2].dist, None);
    }

    #[test]
    fn stats_count_messages_and_bytes() {
        let g = generators::path(3);
        let mut sim = Simulator::new(&g, |_, _| FloodDist::fresh());
        let run = sim.run_to_quiescence(10).unwrap();
        // Round 0: node 0 broadcasts to 1 neighbor. Round 1: node 1
        // broadcasts to 2 neighbors. Round 2: node 2 broadcasts to 1.
        assert_eq!(run.total_messages, 1 + 2 + 1);
        assert_eq!(run.total_bytes, 4);
        assert_eq!(run.max_edge_bytes, 1);
    }

    #[derive(Debug, Clone)]
    struct Shout {
        payload: usize,
    }

    impl Protocol for Shout {
        fn start(&mut self, _ctx: &Ctx<'_>, out: &mut Outbox) {
            out.broadcast(Bytes::from(vec![0u8; self.payload]));
        }
        fn round(&mut self, _ctx: &Ctx<'_>, _incoming: &[Incoming], _out: &mut Outbox) {}
        fn is_halted(&self) -> bool {
            true
        }
    }

    #[test]
    fn congest_limit_enforced() {
        let g = generators::path(2);
        let mut sim = Simulator::new(&g, |_, _| Shout { payload: 17 })
            .with_limit(CongestLimit::PerEdgeBytes(16));
        let err = sim.step().unwrap_err();
        assert!(matches!(
            err,
            SimError::CongestViolation {
                bytes: 17,
                limit: 16,
                ..
            }
        ));
    }

    #[test]
    fn congest_limit_allows_exact_budget() {
        let g = generators::path(2);
        let mut sim = Simulator::new(&g, |_, _| Shout { payload: 16 })
            .with_limit(CongestLimit::PerEdgeBytes(16));
        assert!(sim.step().is_ok());
    }

    struct BadAddress;

    impl Protocol for BadAddress {
        fn start(&mut self, ctx: &Ctx<'_>, out: &mut Outbox) {
            if ctx.id == 0 {
                out.unicast(2, Bytes::new()); // 2 is not a neighbor of 0
            }
        }
        fn round(&mut self, _ctx: &Ctx<'_>, _incoming: &[Incoming], _out: &mut Outbox) {}
    }

    #[test]
    fn unicast_to_non_neighbor_is_rejected() {
        let g = generators::path(3); // 0-1-2
        let mut sim = Simulator::new(&g, |_, _| BadAddress);
        assert_eq!(
            sim.step().unwrap_err(),
            SimError::NotNeighbor { from: 0, to: 2 }
        );
    }

    #[test]
    fn two_unicasts_on_one_edge_share_budget() {
        struct TwoMessages;
        impl Protocol for TwoMessages {
            fn start(&mut self, ctx: &Ctx<'_>, out: &mut Outbox) {
                if ctx.id == 0 {
                    out.unicast(1, Bytes::from(vec![0u8; 10]));
                    out.unicast(1, Bytes::from(vec![0u8; 10]));
                }
            }
            fn round(&mut self, _: &Ctx<'_>, _: &[Incoming], _: &mut Outbox) {}
            fn is_halted(&self) -> bool {
                true
            }
        }
        let g = generators::path(2);
        let mut sim =
            Simulator::new(&g, |_, _| TwoMessages).with_limit(CongestLimit::PerEdgeBytes(16));
        let err = sim.step().unwrap_err();
        assert!(matches!(err, SimError::CongestViolation { bytes: 20, .. }));
    }

    #[test]
    fn incoming_is_ordered_by_sender_id() {
        /// Every node broadcasts its own id once; receivers record order.
        #[derive(Debug, Clone)]
        struct Gossip {
            heard: Vec<usize>,
        }
        impl Protocol for Gossip {
            fn start(&mut self, ctx: &Ctx<'_>, out: &mut Outbox) {
                out.broadcast(Bytes::from(vec![ctx.id as u8]));
            }
            fn round(&mut self, _ctx: &Ctx<'_>, incoming: &[Incoming], _out: &mut Outbox) {
                for m in incoming {
                    self.heard.push(m.from);
                }
            }
            fn is_halted(&self) -> bool {
                true
            }
        }
        let g = generators::star(6); // center 0 hears 1..=5
        let mut sim = Simulator::new(&g, |_, _| Gossip { heard: Vec::new() })
            .with_engine(Engine::Parallel { threads: 3 });
        sim.run_rounds(2).unwrap();
        assert_eq!(sim.nodes()[0].heard, vec![1, 2, 3, 4, 5]);
        for v in 1..6 {
            assert_eq!(sim.nodes()[v].heard, vec![0]);
        }
    }

    #[test]
    fn run_rounds_executes_exact_count() {
        let g = generators::cycle(5);
        let mut sim = Simulator::new(&g, |_, _| FloodDist::fresh());
        let run = sim.run_rounds(3).unwrap();
        assert_eq!(run.rounds, 3);
        assert_eq!(sim.rounds_executed(), 3);
    }

    #[test]
    fn zero_round_budget_only_succeeds_when_quiescent() {
        let g = generators::path(2);
        let mut sim = Simulator::new(&g, |_, _| FloodDist::fresh());
        // Fresh simulator: inbox empty but dist=None nodes are not halted.
        assert_eq!(
            sim.run_to_quiescence(0).unwrap_err(),
            SimError::RoundLimitExceeded { limit: 0 }
        );
        sim.run_to_quiescence(5).unwrap();
        // Now quiescent: a zero budget is satisfied without stepping.
        let run = sim.run_to_quiescence(0).unwrap();
        assert_eq!(run.rounds, 0);
    }

    #[test]
    fn ctx_exposes_neighbors() {
        let g = generators::star(4);
        let sim = Simulator::new(&g, |id, ctx| {
            if id == 0 {
                assert_eq!(ctx.degree(), 3);
                assert_eq!(ctx.neighbors(), &[1, 2, 3]);
            } else {
                assert_eq!(ctx.degree(), 1);
            }
            assert_eq!(ctx.n, 4);
            Shout { payload: 0 }
        });
        assert_eq!(sim.graph().vertex_count(), 4);
        assert!(!sim.is_quiescent() || sim.nodes().len() == 4);
    }

    #[test]
    fn engine_accessor_reports_configuration() {
        let g = generators::path(2);
        let sim =
            Simulator::new(&g, |_, _| BadAddress).with_engine(Engine::Parallel { threads: 2 });
        assert_eq!(sim.engine(), Engine::Parallel { threads: 2 });
    }
}
